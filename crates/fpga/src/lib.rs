//! Analytic model of the Xilinx PynQ-Z1 embedded FPGA (the paper's fourth
//! platform, Table IV).
//!
//! The paper deployed HLS-synthesized OpenCL kernels of CifarNet and
//! SqueezeNet on a PynQ-Z1 and compared board-level energy against the
//! Jetson TX1 (Figure 6). This crate substitutes an analytic dataflow
//! model built from the board's datasheet parameters: a fixed pool of
//! DSP48 multiply-accumulators clocked at the fabric frequency, a DDR3
//! channel for streaming weights, and BRAM-capacity-driven layer
//! partitioning — the paper explicitly attributes the PynQ's longer run
//! times to "slower code loading time and smaller on-chip memory", which
//! is exactly the reconfiguration overhead modelled here.
//!
//! # Example
//!
//! ```
//! use tango_fpga::PynqZ1;
//! use tango_nets::{build_network, NetworkKind, Preset};
//! use tango_sim::{Gpu, GpuConfig};
//!
//! # fn main() -> Result<(), tango_nets::NetError> {
//! let mut gpu = Gpu::new(GpuConfig::tx1());
//! let net = build_network(&mut gpu, NetworkKind::CifarNet, Preset::Bench, 1)?;
//! let board = PynqZ1::new();
//! let run = board.run_network(&net);
//! assert!(run.time_s > 0.0);
//! assert!(run.peak_power_w < 5.0, "embedded FPGA stays in single-digit watts");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tango_nets::{LayerType, Network};

/// Static description of the PynQ-Z1 board (the paper's Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PynqConfig {
    /// Programmable-logic clock in MHz (Vivado HLS default for Z7020
    /// designs).
    pub fabric_mhz: f64,
    /// DSP48 slices usable as fp32 MAC units (a Z7020 has 220; fp32 MACs
    /// consume several each).
    pub mac_units: u32,
    /// Block RAM capacity in bytes (Table IV: 630 KB).
    pub bram_bytes: u64,
    /// Effective DDR3 streaming bandwidth in bytes/second.
    pub ddr_bytes_per_s: f64,
    /// Overhead per layer partition: reprogramming the accelerator and
    /// re-staging weights (the paper's "code loading time").
    pub partition_overhead_s: f64,
    /// Board power when the fabric is active, in watts.
    pub active_power_w: f64,
    /// Board power when idle (ARM cores + DDR refresh), in watts.
    pub idle_power_w: f64,
}

impl PynqConfig {
    /// Datasheet-derived defaults for the PynQ-Z1 (Zynq Z7020).
    pub fn pynq_z1() -> Self {
        PynqConfig {
            fabric_mhz: 100.0,
            mac_units: 36, // 220 DSP48 at ~5-6 per fp32 MAC, post place-and-route
            bram_bytes: 630 * 1024,
            ddr_bytes_per_s: 1.05e9,
            partition_overhead_s: 0.8e-3,
            active_power_w: 2.6,
            idle_power_w: 1.7,
        }
    }
}

/// Outcome of running one network on the modelled board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaRunReport {
    /// End-to-end inference time in seconds.
    pub time_s: f64,
    /// Peak board power in watts (what a Wattsup meter at the plug reads).
    pub peak_power_w: f64,
    /// Energy = peak power x time, computed the way the paper computes it
    /// ("we calculated the energy consumption by multiplying the peak
    /// power consumption with the total execution time").
    pub energy_j: f64,
    /// Total layer partitions executed (layers whose working set exceeds
    /// BRAM are split and re-staged).
    pub partitions: u64,
}

/// One layer's time estimate split into its constituent terms, so
/// callers modelling batched execution can scale the compute term
/// without re-paying the weight stream or reconfiguration (weights stay
/// staged across a batch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTimeParts {
    /// MAC-bound compute time for one inference, in seconds.
    pub compute_s: f64,
    /// DDR weight-streaming time (paid once per staging), in seconds.
    pub stream_s: f64,
    /// BRAM partitions the layer's working set needs (>= 1).
    pub partitions: u64,
}

impl LayerTimeParts {
    /// Total layer time under `overhead_s` per partition: the dominant
    /// of compute and streaming, plus reconfiguration.
    pub fn total_s(&self, overhead_s: f64) -> f64 {
        self.compute_s.max(self.stream_s) + self.partitions as f64 * overhead_s
    }
}

/// The PynQ-Z1 analytic platform model.
#[derive(Debug, Clone, PartialEq)]
pub struct PynqZ1 {
    config: PynqConfig,
}

impl PynqZ1 {
    /// A board with datasheet defaults.
    pub fn new() -> Self {
        PynqZ1 {
            config: PynqConfig::pynq_z1(),
        }
    }

    /// A board with custom parameters (for sensitivity studies).
    pub fn with_config(config: PynqConfig) -> Self {
        PynqZ1 { config }
    }

    /// The board parameters.
    pub fn config(&self) -> &PynqConfig {
        &self.config
    }

    /// Estimates one layer: compute-bound MAC time vs. DDR-bound weight
    /// streaming time, plus per-partition reconfiguration overhead when
    /// the layer working set exceeds BRAM.
    pub fn layer_time_s(&self, macs: u64, weight_bytes: u64, output_elems: u64) -> (f64, u64) {
        let parts = self.layer_time_parts(macs, weight_bytes, output_elems);
        (parts.total_s(self.config.partition_overhead_s), parts.partitions)
    }

    /// The same estimate with its terms kept apart (see
    /// [`LayerTimeParts`]); `layer_time_s` is this plus the overhead sum.
    pub fn layer_time_parts(&self, macs: u64, weight_bytes: u64, output_elems: u64) -> LayerTimeParts {
        let c = &self.config;
        let mac_rate = c.mac_units as f64 * c.fabric_mhz * 1e6;
        let compute_s = macs as f64 / mac_rate;
        let stream_s = weight_bytes as f64 / c.ddr_bytes_per_s;
        // Working set: weights plus double-buffered output tile.
        let working_set = weight_bytes + output_elems * 4 * 2;
        let partitions = working_set.div_ceil(c.bram_bytes).max(1);
        LayerTimeParts {
            compute_s,
            stream_s,
            partitions,
        }
    }

    /// Runs a whole network description through the model.
    ///
    /// Softmax runs on the ARM cores in the paper's flow and is billed at
    /// the same elementwise rate.
    pub fn run_network(&self, net: &Network) -> FpgaRunReport {
        let mut time_s = 0.0;
        let mut partitions = 0;
        for layer in net.layers() {
            let w = layer.work();
            // ReLU fuses into the producing layer's output stage on the
            // fabric; it costs no extra pass.
            if layer.layer_type() == LayerType::Relu {
                continue;
            }
            let (t, p) = self.layer_time_s(w.macs, w.weight_bytes, w.output_elems);
            time_s += t;
            partitions += p;
        }
        FpgaRunReport {
            time_s,
            peak_power_w: self.config.active_power_w,
            energy_j: self.config.active_power_w * time_s,
            partitions,
        }
    }
}

impl Default for PynqZ1 {
    fn default() -> Self {
        PynqZ1::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_nets::{build_network, NetworkKind, Preset};
    use tango_sim::{Gpu, GpuConfig};

    #[test]
    fn compute_bound_layer_scales_with_macs() {
        let board = PynqZ1::new();
        let (t1, _) = board.layer_time_s(1_000_000, 100, 100);
        let (t2, _) = board.layer_time_s(2_000_000, 100, 100);
        // The difference is pure compute time (same streaming and
        // partition overhead), so it equals 1M MACs / MAC rate.
        let per_mac = 1.0 / (board.config().mac_units as f64 * board.config().fabric_mhz * 1e6);
        assert!(((t2 - t1) - 1_000_000.0 * per_mac).abs() < 1e-9);
    }

    #[test]
    fn streaming_bound_layer_scales_with_weights() {
        let board = PynqZ1::new();
        // FC-like: few MACs per weight byte -> DDR bound.
        let (t, _) = board.layer_time_s(1_000_000, 64 * 1024 * 1024, 1000);
        let ddr_time = (64 * 1024 * 1024) as f64 / board.config().ddr_bytes_per_s;
        assert!(t >= ddr_time);
    }

    #[test]
    fn oversized_layers_partition() {
        let board = PynqZ1::new();
        let (_, p_small) = board.layer_time_s(1000, 10 * 1024, 100);
        let (_, p_big) = board.layer_time_s(1000, 4 * 1024 * 1024, 100);
        assert_eq!(p_small, 1);
        assert!(p_big > 1, "4 MB of weights exceeds 630 KB BRAM");
    }

    #[test]
    fn cifarnet_runs_in_single_digit_milliseconds_to_seconds() {
        let mut gpu = Gpu::new(GpuConfig::tx1());
        let net = build_network(&mut gpu, NetworkKind::CifarNet, Preset::Bench, 1).unwrap();
        let run = PynqZ1::new().run_network(&net);
        assert!(run.time_s > 0.0 && run.time_s < 10.0, "{}", run.time_s);
        assert!((run.energy_j - run.peak_power_w * run.time_s).abs() < 1e-9);
    }

    #[test]
    fn squeezenet_partitions_more_than_cifarnet() {
        let mut gpu = Gpu::new(GpuConfig::tx1());
        let cifar = build_network(&mut gpu, NetworkKind::CifarNet, Preset::Bench, 1).unwrap();
        let squeeze = build_network(&mut gpu, NetworkKind::SqueezeNet, Preset::Bench, 1).unwrap();
        let board = PynqZ1::new();
        let a = board.run_network(&cifar);
        let b = board.run_network(&squeeze);
        assert!(b.partitions > a.partitions, "{} vs {}", b.partitions, a.partitions);
    }
}
