use crate::error::{Result, ServeError};

/// Time/size-bounded dynamic batching: a per-network queue flushes to a
/// device as soon as it holds [`max_batch`](Self::max_batch) requests,
/// or once its oldest request has waited
/// [`max_delay_cycles`](Self::max_delay_cycles) — whichever comes first.
/// `max_batch = 1` disables batching; `max_delay_cycles = 0` flushes
/// greedily whenever a device is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch a single dispatch may carry (≥ 1).
    pub max_batch: u32,
    /// Longest a request may sit at the head of its queue waiting for
    /// the batch to fill, in virtual cycles.
    pub max_delay_cycles: u64,
}

impl BatchPolicy {
    /// A policy that never batches and never delays.
    pub fn immediate() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_delay_cycles: 0,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] when `max_batch` is zero.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least 1".into()));
        }
        Ok(())
    }
}

/// Engine configuration: the device pool and admission bound the batcher
/// schedules against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Simulated devices in the pool (≥ 1).
    pub devices: usize,
    /// Per-network queue bound; an arrival to a full queue is shed.
    pub queue_bound: usize,
    /// The batching policy.
    pub policy: BatchPolicy,
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] when the pool is empty, the queue
    /// bound is zero, or the policy is invalid.
    pub fn validate(&self) -> Result<()> {
        if self.devices == 0 {
            return Err(ServeError::Config("device pool must hold at least 1 device".into()));
        }
        if self.queue_bound == 0 {
            return Err(ServeError::Config("queue_bound must be at least 1".into()));
        }
        self.policy.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_configs() {
        let good = ServeConfig {
            devices: 2,
            queue_bound: 8,
            policy: BatchPolicy {
                max_batch: 4,
                max_delay_cycles: 100,
            },
        };
        good.validate().unwrap();
        let mut bad = good;
        bad.devices = 0;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.queue_bound = 0;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.policy.max_batch = 0;
        assert!(bad.validate().is_err());
        assert_eq!(BatchPolicy::immediate().max_batch, 1);
    }
}
