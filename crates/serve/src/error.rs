use std::error::Error;
use std::fmt;
use tango::TangoError;
use tango_nets::NetworkKind;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying simulation (or network build) failed.
    Sim(TangoError),
    /// Admission control rejected the request: its queue was at the
    /// configured bound.
    Shed {
        /// The network whose queue was full.
        kind: NetworkKind,
        /// Queue occupancy at rejection (= the configured bound).
        queue_len: usize,
    },
    /// The service is shutting down and no longer admits requests.
    Shutdown,
    /// The service or engine was misconfigured.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sim(e) => write!(f, "simulation failed: {e}"),
            ServeError::Shed { kind, queue_len } => {
                write!(f, "request shed: {kind} queue full at {queue_len}")
            }
            ServeError::Shutdown => write!(f, "service is shutting down"),
            ServeError::Config(msg) => write!(f, "bad serve configuration: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TangoError> for ServeError {
    fn from(e: TangoError) -> Self {
        ServeError::Sim(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
