//! Latency summarization over virtual-cycle samples, plus the post-run
//! windowed metrics derivation ([`serve_metrics`]).

use crate::engine::{Outcome, ServeReport};
use std::collections::BTreeMap;
use tango_obs::metrics::{escape_label_value, MetricsRegistry};

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// sample such that at least `q`% of the population is ≤ it. Exact and
/// interpolation-free, so summaries are byte-stable across platforms.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `(0, 100]`.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!(q > 0.0 && q <= 100.0, "percentile rank {q} out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples must be sorted");
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The latency distribution of a set of completed requests, in virtual
/// cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst case.
    pub max: u64,
    /// Mean, rounded to the nearest cycle.
    pub mean: u64,
}

impl LatencySummary {
    /// Summarizes `latencies` (need not be sorted). Returns `None` for
    /// an empty sample.
    pub fn from_latencies(latencies: &[u64]) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        Some(LatencySummary {
            count: sorted.len(),
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            max: *sorted.last().expect("nonempty"),
            mean: (sum / sorted.len() as u128) as u64,
        })
    }
}

/// Derives a windowed [`MetricsRegistry`] (unit: virtual cycles) from a
/// finished [`ServeReport`] — a pure function of the report, so metrics
/// collection cannot perturb the engine and two identical reports yield
/// byte-identical registries regardless of worker count.
///
/// Per network kind it emits:
///
/// * `tango_serve_requests_total{kind=..}` / `tango_serve_shed_total`
///   — counters at the arrival cycle,
/// * `tango_serve_latency_cycles{kind=..}` — end-to-end latency
///   histogram observed at the completion cycle,
/// * `tango_serve_queue_wait_cycles{kind=..}` — queue-wait histogram
///   observed at the dispatch cycle,
/// * `tango_serve_batch_size{kind=..}` — one observation per dispatched
///   batch (batches reconstructed from `(device, dispatched,
///   completed)` groups),
/// * `tango_serve_queue_depth{kind=..}` — a gauge replay of queue
///   occupancy (enqueues before dequeues at equal cycles, matching
///   engine order; each window keeps its latest-then-largest sample).
pub fn serve_metrics(report: &ServeReport, window: u64) -> MetricsRegistry {
    let mut registry = MetricsRegistry::new("cycles", window);
    let series = |stem: &str, kind: &str| format!("{stem}{{kind=\"{}\"}}", escape_label_value(kind));
    // Queue replay events: (cycle, phase, kind, delta) where phase 0 =
    // enqueue, 1 = dequeue — engine admits arrivals before dispatching
    // at the same cycle. BTreeMap keys give the deterministic order.
    let mut depth_events: BTreeMap<(u64, u8, &str), i64> = BTreeMap::new();
    let mut batches: BTreeMap<(usize, u64, u64), (&str, u32)> = BTreeMap::new();
    for r in &report.records {
        let kind = r.kind.name();
        registry.counter_add(&series("tango_serve_requests_total", kind), r.arrival, 1);
        match r.outcome {
            Outcome::Shed { .. } => {
                registry.counter_add(&series("tango_serve_shed_total", kind), r.arrival, 1);
            }
            Outcome::Completed {
                dispatched,
                completed,
                batch,
                device,
            } => {
                registry.observe(&series("tango_serve_latency_cycles", kind), completed, completed - r.arrival);
                registry.observe(&series("tango_serve_queue_wait_cycles", kind), dispatched, dispatched - r.arrival);
                *depth_events.entry((r.arrival, 0, kind)).or_insert(0) += 1;
                *depth_events.entry((dispatched, 1, kind)).or_insert(0) -= 1;
                batches.insert((device, dispatched, completed), (kind, batch));
            }
        }
    }
    for ((_, dispatched, _), (kind, batch)) in &batches {
        registry.observe(&series("tango_serve_batch_size", kind), *dispatched, u64::from(*batch));
    }
    let mut depth: BTreeMap<&str, i64> = BTreeMap::new();
    for ((cycle, _, kind), delta) in &depth_events {
        let d = depth.entry(kind).or_insert(0);
        *d += delta;
        registry.gauge_set(&series("tango_serve_queue_depth", kind), *cycle, *d);
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_nets::NetworkKind;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 95.0), 95);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.001, 1.0, 25.0, 50.0, 75.0, 99.0, 99.999, 100.0] {
            assert_eq!(percentile(&[42], q), 42, "q={q}");
        }
        let summary = LatencySummary::from_latencies(&[42]).unwrap();
        assert_eq!(summary.count, 1);
        assert_eq!((summary.p50, summary.p95, summary.p99), (42, 42, 42));
        assert_eq!((summary.max, summary.mean), (42, 42));
    }

    #[test]
    fn q100_is_the_maximum_never_out_of_bounds() {
        // ceil(100/100 * n) == n lands exactly on the last index; the
        // clamp must not push past it.
        for n in [1usize, 2, 3, 10, 97] {
            let s: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
            assert_eq!(percentile(&s, 100.0), *s.last().unwrap(), "n={n}");
        }
    }

    #[test]
    fn tiny_q_selects_the_minimum() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.5), 1);
        assert_eq!(percentile(&s, 1.0), 1);
    }

    #[test]
    fn duplicate_heavy_distributions() {
        // 90 samples of 5, then 10 of 1000: the p50/p95 boundary falls
        // inside and just past the duplicate run.
        let mut s = vec![5u64; 90];
        s.extend(std::iter::repeat_n(1000, 10));
        assert_eq!(percentile(&s, 50.0), 5);
        assert_eq!(percentile(&s, 90.0), 5, "rank 90 is the last duplicate");
        assert_eq!(percentile(&s, 90.1), 1000, "rank 91 is the first outlier");
        assert_eq!(percentile(&s, 99.0), 1000);
        // All-identical samples: every percentile is that value.
        let flat = vec![7u64; 33];
        for q in [1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&flat, q), 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_rank_panics() {
        percentile(&[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn over_100_rank_panics() {
        percentile(&[1], 100.1);
    }

    #[test]
    fn serve_metrics_accounts_every_request_once() {
        use crate::cost::TableCostModel;
        use crate::policy::{BatchPolicy, ServeConfig};
        use crate::trace::ArrivalTrace;
        let gru = NetworkKind::Gru;
        let trace = ArrivalTrace::open_loop(&[gru, NetworkKind::CifarNet], 200, 600, 3, 19);
        let cost = TableCostModel::new()
            .with_kind(gru, 900, 100)
            .with_kind(NetworkKind::CifarNet, 2500, 300);
        let cfg = ServeConfig {
            devices: 2,
            queue_bound: 8,
            policy: BatchPolicy {
                max_batch: 4,
                max_delay_cycles: 800,
            },
        };
        let report = crate::engine::run_trace(&trace, &cfg, &cost).unwrap();
        let m = serve_metrics(&report, 10_000);
        let total = |stem: &str| -> u64 {
            [gru, NetworkKind::CifarNet]
                .iter()
                .filter_map(|k| m.counter_total(&format!("{stem}{{kind=\"{}\"}}", k.name())))
                .sum()
        };
        assert_eq!(total("tango_serve_requests_total"), 200);
        assert_eq!(total("tango_serve_shed_total"), report.shed() as u64);
        let latencies: u64 = [gru, NetworkKind::CifarNet]
            .iter()
            .filter_map(|k| m.histogram_total(&format!("tango_serve_latency_cycles{{kind=\"{}\"}}", k.name())))
            .map(|h| h.count())
            .sum();
        assert_eq!(latencies, report.completed() as u64);
        // Batch-size observations: one per dispatched batch.
        let batch_obs: u64 = [gru, NetworkKind::CifarNet]
            .iter()
            .filter_map(|k| m.histogram_total(&format!("tango_serve_batch_size{{kind=\"{}\"}}", k.name())))
            .map(|h| h.count())
            .sum();
        assert_eq!(batch_obs, report.batches);
        // The queue replay drains: the final depth gauge is 0.
        for k in [gru, NetworkKind::CifarNet] {
            let name = format!("tango_serve_queue_depth{{kind=\"{}\"}}", k.name());
            assert_eq!(m.gauge_last(&name), Some(0), "{name}");
        }
        // Same report, same bytes; and the exposition is valid.
        let again = serve_metrics(&report, 10_000);
        assert_eq!(m.render_text("t"), again.render_text("t"));
        tango_obs::metrics::validate_exposition(&m.prometheus_text()).unwrap();
    }

    #[test]
    fn serve_metrics_of_an_empty_report_is_empty() {
        let report = ServeReport {
            records: vec![],
            makespan: 0,
            batches: 0,
        };
        let m = serve_metrics(&report, 100);
        assert!(m.is_empty());
        tango_obs::metrics::validate_exposition(&m.prometheus_text()).unwrap();
    }

    #[test]
    fn summary_matches_hand_computation() {
        let summary = LatencySummary::from_latencies(&[40, 10, 30, 20]).unwrap();
        assert_eq!(summary.count, 4);
        assert_eq!(summary.p50, 20);
        assert_eq!(summary.p95, 40);
        assert_eq!(summary.p99, 40);
        assert_eq!(summary.max, 40);
        assert_eq!(summary.mean, 25);
        assert_eq!(LatencySummary::from_latencies(&[]), None);
    }
}
