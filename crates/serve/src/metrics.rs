//! Latency summarization over virtual-cycle samples.

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// sample such that at least `q`% of the population is ≤ it. Exact and
/// interpolation-free, so summaries are byte-stable across platforms.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `(0, 100]`.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!(q > 0.0 && q <= 100.0, "percentile rank {q} out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples must be sorted");
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The latency distribution of a set of completed requests, in virtual
/// cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst case.
    pub max: u64,
    /// Mean, rounded to the nearest cycle.
    pub mean: u64,
}

impl LatencySummary {
    /// Summarizes `latencies` (need not be sorted). Returns `None` for
    /// an empty sample.
    pub fn from_latencies(latencies: &[u64]) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        Some(LatencySummary {
            count: sorted.len(),
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            max: *sorted.last().expect("nonempty"),
            mean: (sum / sorted.len() as u128) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 95.0), 95);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.001, 1.0, 25.0, 50.0, 75.0, 99.0, 99.999, 100.0] {
            assert_eq!(percentile(&[42], q), 42, "q={q}");
        }
        let summary = LatencySummary::from_latencies(&[42]).unwrap();
        assert_eq!(summary.count, 1);
        assert_eq!((summary.p50, summary.p95, summary.p99), (42, 42, 42));
        assert_eq!((summary.max, summary.mean), (42, 42));
    }

    #[test]
    fn q100_is_the_maximum_never_out_of_bounds() {
        // ceil(100/100 * n) == n lands exactly on the last index; the
        // clamp must not push past it.
        for n in [1usize, 2, 3, 10, 97] {
            let s: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
            assert_eq!(percentile(&s, 100.0), *s.last().unwrap(), "n={n}");
        }
    }

    #[test]
    fn tiny_q_selects_the_minimum() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.5), 1);
        assert_eq!(percentile(&s, 1.0), 1);
    }

    #[test]
    fn duplicate_heavy_distributions() {
        // 90 samples of 5, then 10 of 1000: the p50/p95 boundary falls
        // inside and just past the duplicate run.
        let mut s = vec![5u64; 90];
        s.extend(std::iter::repeat_n(1000, 10));
        assert_eq!(percentile(&s, 50.0), 5);
        assert_eq!(percentile(&s, 90.0), 5, "rank 90 is the last duplicate");
        assert_eq!(percentile(&s, 90.1), 1000, "rank 91 is the first outlier");
        assert_eq!(percentile(&s, 99.0), 1000);
        // All-identical samples: every percentile is that value.
        let flat = vec![7u64; 33];
        for q in [1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&flat, q), 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_rank_panics() {
        percentile(&[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn over_100_rank_panics() {
        percentile(&[1], 100.1);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let summary = LatencySummary::from_latencies(&[40, 10, 30, 20]).unwrap();
        assert_eq!(summary.count, 4);
        assert_eq!(summary.p50, 20);
        assert_eq!(summary.p95, 40);
        assert_eq!(summary.p99, 40);
        assert_eq!(summary.max, 40);
        assert_eq!(summary.mean, 25);
        assert_eq!(LatencySummary::from_latencies(&[]), None);
    }
}
