//! Latency summarization over virtual-cycle samples.

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// sample such that at least `q`% of the population is ≤ it. Exact and
/// interpolation-free, so summaries are byte-stable across platforms.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `(0, 100]`.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!(q > 0.0 && q <= 100.0, "percentile rank {q} out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples must be sorted");
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The latency distribution of a set of completed requests, in virtual
/// cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst case.
    pub max: u64,
    /// Mean, rounded to the nearest cycle.
    pub mean: u64,
}

impl LatencySummary {
    /// Summarizes `latencies` (need not be sorted). Returns `None` for
    /// an empty sample.
    pub fn from_latencies(latencies: &[u64]) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        Some(LatencySummary {
            count: sorted.len(),
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            max: *sorted.last().expect("nonempty"),
            mean: (sum / sorted.len() as u128) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 95.0), 95);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let summary = LatencySummary::from_latencies(&[40, 10, 30, 20]).unwrap();
        assert_eq!(summary.count, 4);
        assert_eq!(summary.p50, 20);
        assert_eq!(summary.p95, 40);
        assert_eq!(summary.p99, 40);
        assert_eq!(summary.max, 40);
        assert_eq!(summary.mean, 25);
        assert_eq!(LatencySummary::from_latencies(&[]), None);
    }
}
