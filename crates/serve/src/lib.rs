//! Tango serve: a batched, multi-device inference service over
//! simulated GPUs.
//!
//! The paper characterizes networks one inference at a time; a
//! datacenter runs them behind queues. This crate turns the simulated
//! device pool into that shared resource, in two complementary forms:
//!
//! * [`engine::run_trace`] — a **virtual-time discrete-event engine**: a
//!   pre-generated [`ArrivalTrace`] flows through bounded per-network
//!   queues, a time/size-bounded dynamic batcher ([`BatchPolicy`]:
//!   flush at `max_batch` or `max_delay_cycles`), and a pool of
//!   [`CostModel`]-costed devices. Every queue wait, batch-assembly
//!   delay, and execution span is accounted in virtual cycles, so
//!   p50/p95/p99 and throughput ([`ServeReport`]) are byte-reproducible
//!   across runs, hosts, and worker counts.
//! * [`Service`] — a **live, thread-backed service**: worker threads
//!   each own a `tango_sim::Gpu` with the configured networks built on
//!   it, coalesce identical requests from concurrent clients into
//!   batched launches (`Network::infer_batch`), and apply the same
//!   bounded-queue admission control with explicit [`ServeError::Shed`]
//!   rejections.
//!
//! Batch *cost* comes from the simulator's CTA-level grid replication
//! (`SimOptions::batch`): small layer grids batch almost for free
//! (replica CTAs fill idle SMs), large ones scale linearly — exactly
//! the concave cost curve that makes dynamic batching a latency win at
//! high arrival rates. [`SimCostModel`] fetches those measurements
//! through the harness `RunStore`, so repeated identical batches are
//! cache hits, and its `precompute` fans the distinct `(kind, batch)`
//! simulations out across `TANGO_SERVE_WORKERS` threads — the only
//! parallel stage, which is why worker count can never change results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cost models mapping `(network, batch size)` to device cycles.
pub mod cost;
/// The virtual-time discrete-event serving engine.
pub mod engine;
mod error;
mod metrics;
mod policy;
/// Deterministic device pools with drain-aware grow/shrink.
pub mod pool;
mod service;
mod trace;

pub use cost::{BatchCost, CostModel, SimCostModel, TableCostModel};
pub use engine::{run_trace, Outcome, RequestRecord, ServeReport};
pub use error::{Result, ServeError};
pub use metrics::{percentile, serve_metrics, LatencySummary};
pub use policy::{BatchPolicy, ServeConfig};
pub use pool::DeviceSet;
pub use service::{InferenceReply, Service, ServiceConfig, Ticket};
pub use trace::{Arrival, ArrivalTrace};
