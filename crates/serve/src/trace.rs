use tango_nets::NetworkKind;
use tango_tensor::SplitMix64;

/// One inference request in an arrival trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual cycle at which the request reaches the service.
    pub at_cycle: u64,
    /// Which network it asks for.
    pub kind: NetworkKind,
    /// Seed identifying the request payload (`synthetic_input` seed).
    pub input_seed: u64,
}

/// A pre-generated, time-sorted stream of requests.
///
/// Traces are generated ahead of the run (open-loop: arrivals do not
/// react to service latency, the datacenter-side assumption) and fully
/// determined by their seed, so the same trace can be replayed against
/// any engine configuration or worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTrace {
    kinds: Vec<NetworkKind>,
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// An open-loop Poisson stream: `count` requests whose inter-arrival
    /// gaps are exponentially distributed with mean
    /// `mean_interarrival_cycles`, each uniformly assigned one of
    /// `kinds` and one of `distinct_inputs` payload seeds. Fully
    /// deterministic in `seed`.
    ///
    /// Small `distinct_inputs` values model a skewed request population
    /// (the case batching and store-caching exploit); large values model
    /// unique traffic.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty, `mean_interarrival_cycles` is zero,
    /// or `distinct_inputs` is zero.
    pub fn open_loop(
        kinds: &[NetworkKind],
        count: usize,
        mean_interarrival_cycles: u64,
        distinct_inputs: u64,
        seed: u64,
    ) -> Self {
        assert!(!kinds.is_empty(), "trace needs at least one network kind");
        assert!(mean_interarrival_cycles > 0, "mean inter-arrival must be positive");
        assert!(distinct_inputs > 0, "need at least one distinct input");
        let mut rng = SplitMix64::new(seed);
        let mut at_cycle = 0u64;
        let arrivals = (0..count)
            .map(|_| {
                // Inverse-CDF exponential sampling, clamped to ≥ 1 cycle
                // so arrivals keep strictly increasing pressure.
                let u = f64::from(rng.next_f32()).clamp(1e-9, 1.0 - 1e-9);
                let gap = (-u.ln() * mean_interarrival_cycles as f64).ceil().max(1.0) as u64;
                at_cycle += gap;
                Arrival {
                    at_cycle,
                    kind: kinds[rng.below(kinds.len() as u64) as usize],
                    input_seed: rng.below(distinct_inputs),
                }
            })
            .collect();
        ArrivalTrace {
            kinds: kinds.to_vec(),
            arrivals,
        }
    }

    /// A hand-written trace (for tests). Arrivals must be time-sorted.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is not sorted by `at_cycle`.
    pub fn from_arrivals(kinds: &[NetworkKind], arrivals: Vec<Arrival>) -> Self {
        assert!(
            arrivals.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle),
            "arrivals must be sorted by time"
        );
        ArrivalTrace {
            kinds: kinds.to_vec(),
            arrivals,
        }
    }

    /// The distinct network kinds this trace draws from.
    pub fn kinds(&self) -> &[NetworkKind] {
        &self.kinds
    }

    /// The requests, time-sorted.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_traces_are_deterministic_and_sorted() {
        let kinds = [NetworkKind::Gru, NetworkKind::CifarNet];
        let a = ArrivalTrace::open_loop(&kinds, 200, 1000, 4, 42);
        let b = ArrivalTrace::open_loop(&kinds, 200, 1000, 4, 42);
        assert_eq!(a, b, "same seed must reproduce the same trace");
        let c = ArrivalTrace::open_loop(&kinds, 200, 1000, 4, 43);
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.arrivals().windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        assert_eq!(a.len(), 200);
        assert!(a.arrivals().iter().all(|r| kinds.contains(&r.kind) && r.input_seed < 4));
    }

    #[test]
    fn mean_gap_tracks_the_requested_rate() {
        let trace = ArrivalTrace::open_loop(&[NetworkKind::Gru], 2000, 500, 1, 7);
        let span = trace.arrivals().last().unwrap().at_cycle as f64;
        let mean = span / 2000.0;
        assert!(
            (mean / 500.0 - 1.0).abs() < 0.15,
            "empirical mean gap {mean} should be near 500"
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_manual_traces_are_rejected() {
        let k = NetworkKind::Gru;
        ArrivalTrace::from_arrivals(
            &[k],
            vec![
                Arrival {
                    at_cycle: 10,
                    kind: k,
                    input_seed: 0,
                },
                Arrival {
                    at_cycle: 5,
                    kind: k,
                    input_seed: 0,
                },
            ],
        );
    }
}
