//! A deterministic set of devices with dynamic membership.
//!
//! [`DeviceSet`] is the multi-pool scheduling hook shared by the serve
//! engine (one fixed-size pool) and the fleet engine (many pools whose
//! sizes an autoscaler moves at runtime). It owns exactly the two
//! structures the serve engine always used — free devices ordered
//! lowest-id-first, busy devices ordered by completion time — and adds
//! *drain-aware resizing*: growing mints fresh device ids, shrinking
//! removes an idle device immediately or marks the highest-id busy
//! device to retire when its in-flight batch completes. In-flight work
//! is never cancelled, so a pool scaled to zero still completes
//! everything it dispatched.
//!
//! Timestamps are opaque `u64`s: the serve engine passes virtual
//! cycles, the fleet engine passes virtual nanoseconds. All iteration
//! orders are total, so identical call sequences produce identical
//! device assignments — byte-determinism lives or dies here.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// A pool of interchangeable devices: free ones handed out
/// lowest-id-first, busy ones retired in completion-time order, with
/// deterministic grow/shrink-with-drain semantics.
#[derive(Debug, Clone, Default)]
pub struct DeviceSet {
    /// Idle devices, dispatched lowest-id-first.
    free: BTreeSet<usize>,
    /// Busy devices by `(completion_time, id)`.
    busy: BinaryHeap<Reverse<(u64, usize)>>,
    /// Busy devices that leave the set when their batch completes.
    retiring: BTreeSet<usize>,
    /// Device ids ever minted (grow never reuses an id).
    minted: usize,
    /// Total busy device-time accumulated by dispatches.
    busy_time: u128,
}

impl DeviceSet {
    /// A set of `devices` idle devices with ids `0..devices`.
    pub fn new(devices: usize) -> Self {
        DeviceSet {
            free: (0..devices).collect(),
            busy: BinaryHeap::new(),
            retiring: BTreeSet::new(),
            minted: devices,
            busy_time: 0,
        }
    }

    /// Devices currently in the set (idle + busy, including busy
    /// devices that will retire on completion).
    pub fn active(&self) -> usize {
        self.free.len() + self.busy.len()
    }

    /// Devices the set will hold once every retiring device drains.
    pub fn target(&self) -> usize {
        self.active() - self.retiring.len()
    }

    /// Idle devices.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Busy devices (including retiring ones).
    pub fn busy(&self) -> usize {
        self.busy.len()
    }

    /// The id the next [`dispatch`](Self::dispatch) would hand out.
    pub fn peek_free(&self) -> Option<usize> {
        self.free.first().copied()
    }

    /// Claims the lowest-id idle device for a batch running over
    /// `[now, done_at]`. Returns `None` when every device is busy.
    ///
    /// # Panics
    ///
    /// Panics if `done_at < now` (a batch cannot complete before it
    /// starts).
    pub fn dispatch(&mut self, now: u64, done_at: u64) -> Option<usize> {
        assert!(done_at >= now, "batch completes before it starts");
        let id = self.free.pop_first()?;
        self.busy.push(Reverse((done_at, id)));
        self.busy_time += u128::from(done_at - now);
        Some(id)
    }

    /// Completion time of the earliest-finishing busy device.
    pub fn next_completion(&self) -> Option<u64> {
        self.busy.peek().map(|&Reverse((done_at, _))| done_at)
    }

    /// Returns every device whose batch finished by `now` to the free
    /// set — except retiring devices, which leave the set instead.
    /// Returns the number of devices retired.
    pub fn complete_until(&mut self, now: u64) -> usize {
        let mut retired = 0;
        while let Some(&Reverse((done_at, id))) = self.busy.peek() {
            if done_at > now {
                break;
            }
            self.busy.pop();
            if self.retiring.remove(&id) {
                retired += 1;
            } else {
                self.free.insert(id);
            }
        }
        retired
    }

    /// Adds `n` fresh devices (ids continue from the highest ever
    /// minted, so a re-grown pool never aliases a drained device's
    /// trace track).
    pub fn grow(&mut self, n: usize) {
        for _ in 0..n {
            self.free.insert(self.minted);
            self.minted += 1;
        }
    }

    /// Removes up to `n` devices: idle devices (highest id first) leave
    /// immediately; if none are idle, the highest-id busy device not
    /// already retiring is marked to leave on completion. Returns how
    /// many removals were actually scheduled (the set never drops below
    /// zero target).
    pub fn shrink(&mut self, n: usize) -> usize {
        let mut scheduled = 0;
        for _ in 0..n {
            if self.target() == 0 {
                break;
            }
            // An idle device leaves instantly, highest id first.
            if self.free.pop_last().is_some() {
                scheduled += 1;
                continue;
            }
            // All devices busy: retire the highest-id one not already
            // marked. Busy ids are in the heap; collect the candidate
            // deterministically.
            let candidate = self
                .busy
                .iter()
                .map(|&Reverse((_, id))| id)
                .filter(|id| !self.retiring.contains(id))
                .max();
            match candidate {
                Some(id) => {
                    self.retiring.insert(id);
                    scheduled += 1;
                }
                None => break,
            }
        }
        scheduled
    }

    /// Total device-time dispatched so far (the utilization numerator).
    pub fn busy_time(&self) -> u128 {
        self.busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_lowest_id_first_and_completion_ordered() {
        let mut set = DeviceSet::new(3);
        assert_eq!(set.dispatch(0, 100), Some(0));
        assert_eq!(set.dispatch(0, 50), Some(1));
        assert_eq!(set.dispatch(0, 75), Some(2));
        assert_eq!(set.dispatch(0, 10), None, "pool exhausted");
        assert_eq!(set.next_completion(), Some(50));
        set.complete_until(60);
        assert_eq!(set.peek_free(), Some(1));
        assert_eq!(set.busy(), 2);
        assert_eq!(set.busy_time(), 225);
    }

    #[test]
    fn grow_mints_fresh_ids() {
        let mut set = DeviceSet::new(2);
        assert_eq!(set.shrink(1), 1);
        assert_eq!(set.active(), 1);
        set.grow(2);
        // Ids 0 (kept), 2 and 3 (fresh) — id 1 is never reused.
        assert_eq!(set.dispatch(0, 1), Some(0));
        assert_eq!(set.dispatch(0, 1), Some(2));
        assert_eq!(set.dispatch(0, 1), Some(3));
    }

    #[test]
    fn shrink_prefers_idle_devices_then_drains_busy_ones() {
        let mut set = DeviceSet::new(2);
        assert_eq!(set.dispatch(0, 100), Some(0));
        // One idle (id 1), one busy: first shrink drops the idle one.
        assert_eq!(set.shrink(1), 1);
        assert_eq!(set.active(), 1);
        assert_eq!(set.target(), 1);
        // Second shrink has only the busy device: it drains.
        assert_eq!(set.shrink(1), 1);
        assert_eq!(set.target(), 0);
        assert_eq!(set.active(), 1, "in-flight work is never cancelled");
        set.complete_until(100);
        assert_eq!(set.active(), 0, "retiring device left on completion");
        // Nothing remains to shrink.
        assert_eq!(set.shrink(1), 0);
    }

    #[test]
    fn scaled_to_zero_pool_drains_all_in_flight_batches() {
        let mut set = DeviceSet::new(3);
        set.dispatch(0, 10).unwrap();
        set.dispatch(0, 20).unwrap();
        set.dispatch(0, 30).unwrap();
        assert_eq!(set.shrink(3), 3);
        assert_eq!(set.target(), 0);
        assert_eq!(set.active(), 3);
        let mut retired = 0;
        retired += set.complete_until(15);
        assert_eq!(set.active(), 2);
        retired += set.complete_until(30);
        assert_eq!(retired, 3);
        assert_eq!(set.active(), 0);
        assert_eq!(set.next_completion(), None);
        assert_eq!(set.dispatch(31, 40), None, "no devices remain");
    }

    #[test]
    fn identical_sequences_are_identical() {
        let run = || {
            let mut set = DeviceSet::new(4);
            let mut ids = Vec::new();
            for i in 0..4 {
                ids.push(set.dispatch(0, 10 + i).unwrap());
            }
            set.complete_until(11);
            set.shrink(2);
            set.grow(1);
            ids.push(set.dispatch(12, 30).unwrap());
            (ids, set.active(), set.target(), set.busy_time())
        };
        assert_eq!(run(), run());
    }
}
