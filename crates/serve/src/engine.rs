//! The virtual-time serving engine.
//!
//! A discrete-event simulation of the service: requests arrive from a
//! pre-generated [`ArrivalTrace`], wait in bounded per-network queues,
//! are flushed to a pool of devices by the time/size-bounded batcher,
//! and execute for the cycle count the [`CostModel`] assigns their
//! batch. Every timestamp is a virtual cycle, so latency percentiles
//! and throughput are exact, reproducible quantities — independent of
//! host load, thread scheduling, and worker count (the engine is a
//! serial loop; only cost-model *precomputation* parallelizes).
//!
//! Event ordering at a single cycle is fixed by construction: device
//! completions are applied first, then arrivals (in trace order), then
//! dispatches. Dispatch ties between ready queues break on (oldest head
//! request, kind order in the trace); devices are assigned
//! lowest-index-first. Any change in these rules is a behavior change,
//! not noise.

use crate::cost::CostModel;
use crate::error::Result;
use crate::metrics::LatencySummary;
use crate::policy::ServeConfig;
use crate::pool::DeviceSet;
use crate::trace::ArrivalTrace;
use std::collections::VecDeque;
use tango_nets::NetworkKind;

/// What happened to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Admitted, batched, executed.
    Completed {
        /// Cycle the batch left the queue for a device.
        dispatched: u64,
        /// Cycle execution finished (= completion of the whole batch).
        completed: u64,
        /// Requests in the batch it rode in.
        batch: u32,
        /// Device that ran the batch.
        device: usize,
    },
    /// Rejected at admission: the queue was at its bound.
    Shed {
        /// Queue occupancy at rejection.
        queue_len: usize,
    },
}

/// Full accounting for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// The network requested.
    pub kind: NetworkKind,
    /// Arrival cycle (from the trace).
    pub arrival: u64,
    /// Admission / completion outcome.
    pub outcome: Outcome,
}

impl RequestRecord {
    /// End-to-end latency (queue wait + batch assembly + execution), or
    /// `None` when the request was shed.
    pub fn latency(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Completed { completed, .. } => Some(completed - self.arrival),
            Outcome::Shed { .. } => None,
        }
    }

    /// Time spent queued before its batch was dispatched.
    pub fn queue_wait(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Completed { dispatched, .. } => Some(dispatched - self.arrival),
            Outcome::Shed { .. } => None,
        }
    }
}

/// The result of replaying a trace through the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-request accounting, in trace order.
    pub records: Vec<RequestRecord>,
    /// Cycle the last batch completed (0 for an empty trace).
    pub makespan: u64,
    /// Batches dispatched.
    pub batches: u64,
}

impl ServeReport {
    /// Requests that completed.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.latency().is_some()).count()
    }

    /// Requests shed at admission.
    pub fn shed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Latency summary over completed requests (`None` if none did).
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        let latencies: Vec<u64> = self.records.iter().filter_map(|r| r.latency()).collect();
        LatencySummary::from_latencies(&latencies)
    }

    /// Completed requests per million cycles of makespan.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.completed() as f64 * 1e6 / self.makespan as f64
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed() as f64 / self.batches as f64
    }
}

struct Queued {
    record_idx: usize,
    arrival: u64,
}

/// Trace-track base for per-kind queue events, clear of the device
/// tracks (devices use their pool index).
const QUEUE_TRACK_BASE: u32 = 1000;

/// Replays `trace` against a device pool under `config`, costing every
/// batch with `cost`. Serial and fully deterministic.
///
/// # Errors
///
/// Returns [`crate::ServeError::Config`] for an invalid `config` and
/// propagates cost-model (simulation) failures.
pub fn run_trace(trace: &ArrivalTrace, config: &ServeConfig, cost: &dyn CostModel) -> Result<ServeReport> {
    config.validate()?;
    let kinds = trace.kinds();
    let kind_index = |kind: NetworkKind| -> usize {
        kinds
            .iter()
            .position(|&k| k == kind)
            .expect("trace arrival kind not in trace.kinds()")
    };

    let arrivals = trace.arrivals();
    let mut records: Vec<RequestRecord> = arrivals
        .iter()
        .map(|a| RequestRecord {
            kind: a.kind,
            arrival: a.at_cycle,
            outcome: Outcome::Shed { queue_len: 0 }, // placeholder, always overwritten
        })
        .collect();

    let mut queues: Vec<VecDeque<Queued>> = kinds.iter().map(|_| VecDeque::new()).collect();
    // Busy devices retire by completion time; free ones dispatch
    // lowest-index-first — both orders live in the shared DeviceSet.
    let mut devices = DeviceSet::new(config.devices);
    let mut next_arrival = 0usize;
    let mut now = 0u64;
    let mut batches = 0u64;
    let mut makespan = 0u64;
    let mut shed_total = 0i64;
    let max_batch = config.policy.max_batch as usize;
    let max_delay = config.policy.max_delay_cycles;

    loop {
        // 1. Retire every batch whose device finished by `now`.
        devices.complete_until(now);

        // 2. Admit (or shed) every arrival due by `now`, in trace order.
        while next_arrival < arrivals.len() && arrivals[next_arrival].at_cycle <= now {
            let arrival = &arrivals[next_arrival];
            let k = kind_index(arrival.kind);
            let qtrack = QUEUE_TRACK_BASE + k as u32;
            let queue = &mut queues[k];
            records[next_arrival].outcome = if queue.len() >= config.queue_bound {
                shed_total += 1;
                tango_obs::engine_instant_at(now, qtrack, "serve.request", "shed");
                tango_obs::engine_counter_at(now, qtrack, "serve.queue", "shed_total", shed_total);
                Outcome::Shed { queue_len: queue.len() }
            } else {
                // Request lifecycle opens here (enqueue) and closes when
                // its batch completes; async spans because requests on
                // one queue overlap freely.
                tango_obs::engine_async_begin(
                    arrival.at_cycle,
                    qtrack,
                    "serve.request",
                    arrival.kind.name(),
                    next_arrival as u64,
                );
                queue.push_back(Queued {
                    record_idx: next_arrival,
                    arrival: arrival.at_cycle,
                });
                tango_obs::engine_counter_at(now, qtrack, "serve.queue", "depth", queue.len() as i64);
                // Marked completed when its batch retires; a request
                // still queued at trace end simply waits for a device
                // (the loop drains queues before exiting).
                Outcome::Shed { queue_len: usize::MAX }
            };
            next_arrival += 1;
        }

        // 3. Dispatch ready queues onto free devices. A queue is ready
        //    when it holds a full batch or its head has aged past the
        //    delay bound; ties prefer the oldest head, then kind order.
        while devices.peek_free().is_some() {
            let ready = queues
                .iter()
                .enumerate()
                .filter_map(|(k, q)| {
                    let head = q.front()?;
                    let full = q.len() >= max_batch;
                    let aged = now >= head.arrival.saturating_add(max_delay);
                    (full || aged).then_some((head.arrival, k))
                })
                .min();
            let Some((_, k)) = ready else { break };
            let queue = &mut queues[k];
            let batch_len = queue.len().min(max_batch);
            let exec = cost.batch_cycles(kinds[k], batch_len as u32)?;
            let completed = now + exec.max(1);
            let device = devices.dispatch(now, completed).expect("peeked free device");
            let qtrack = QUEUE_TRACK_BASE + k as u32;
            if tango_obs::is_enabled() {
                let label = format!("{}x{batch_len}", kinds[k].name());
                tango_obs::engine_span_at(now, completed, device as u32, "serve.batch", &label);
            }
            for _ in 0..batch_len {
                let item = queue.pop_front().expect("batch_len items queued");
                tango_obs::engine_async_end(completed, qtrack, "serve.request", kinds[k].name(), item.record_idx as u64);
                records[item.record_idx].outcome = Outcome::Completed {
                    dispatched: now,
                    completed,
                    batch: batch_len as u32,
                    device,
                };
            }
            tango_obs::engine_counter_at(now, qtrack, "serve.queue", "depth", queue.len() as i64);
            makespan = makespan.max(completed);
            batches += 1;
        }

        // 4. Advance the clock to the next event: an arrival, a device
        //    completion, or — when a device is idle — a queue-head aging
        //    past the delay bound.
        let mut next = u64::MAX;
        if next_arrival < arrivals.len() {
            next = next.min(arrivals[next_arrival].at_cycle);
        }
        if let Some(done_at) = devices.next_completion() {
            next = next.min(done_at);
        }
        if devices.idle() > 0 {
            for q in &queues {
                if let Some(head) = q.front() {
                    next = next.min(head.arrival.saturating_add(max_delay));
                }
            }
        }
        if next == u64::MAX {
            break;
        }
        debug_assert!(next > now, "the event loop must make progress");
        now = next;
    }

    debug_assert!(queues.iter().all(VecDeque::is_empty), "all admitted requests must retire");
    Ok(ServeReport {
        records,
        makespan,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::policy::BatchPolicy;
    use crate::trace::Arrival;

    const GRU: NetworkKind = NetworkKind::Gru;

    fn config(devices: usize, queue_bound: usize, max_batch: u32, max_delay: u64) -> ServeConfig {
        ServeConfig {
            devices,
            queue_bound,
            policy: BatchPolicy {
                max_batch,
                max_delay_cycles: max_delay,
            },
        }
    }

    fn burst(n: usize, at: u64) -> ArrivalTrace {
        ArrivalTrace::from_arrivals(
            &[GRU],
            (0..n)
                .map(|_| Arrival {
                    at_cycle: at,
                    kind: GRU,
                    input_seed: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn single_request_accounting_is_exact() {
        let trace = burst(1, 10);
        let cost = TableCostModel::new().with_kind(GRU, 900, 100);
        let report = run_trace(&trace, &config(1, 4, 1, 0), &cost).unwrap();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.batches, 1);
        let r = report.records[0];
        assert_eq!(r.queue_wait(), Some(0));
        assert_eq!(r.latency(), Some(1000));
        assert_eq!(report.makespan, 1010);
    }

    #[test]
    fn full_batches_flush_without_waiting_for_the_deadline() {
        // 4 simultaneous requests, max_batch 4, huge delay bound: the
        // batch is full at arrival, so it must dispatch immediately.
        let trace = burst(4, 5);
        let cost = TableCostModel::new().with_kind(GRU, 1000, 0);
        let report = run_trace(&trace, &config(1, 8, 4, 1_000_000), &cost).unwrap();
        assert_eq!(report.completed(), 4);
        assert_eq!(report.batches, 1);
        for r in &report.records {
            assert_eq!(r.queue_wait(), Some(0));
            assert_eq!(r.latency(), Some(1000));
        }
    }

    #[test]
    fn partial_batches_flush_at_the_delay_bound() {
        // One request, max_batch 4: nothing fills the batch, so it waits
        // exactly max_delay_cycles before dispatch.
        let trace = burst(1, 100);
        let cost = TableCostModel::new().with_kind(GRU, 500, 0);
        let report = run_trace(&trace, &config(1, 8, 4, 250), &cost).unwrap();
        let r = report.records[0];
        assert_eq!(r.queue_wait(), Some(250));
        assert_eq!(r.latency(), Some(750));
    }

    #[test]
    fn admission_control_sheds_past_the_bound() {
        // 10 simultaneous requests into a queue bounded at 4 with one
        // slow device: 4 admitted, 6 shed with the bound reported.
        let trace = burst(10, 0);
        let cost = TableCostModel::new().with_kind(GRU, 10_000, 0);
        let report = run_trace(&trace, &config(1, 4, 1, u64::MAX), &cost).unwrap();
        assert_eq!(report.completed(), 4);
        assert_eq!(report.shed(), 6);
        for r in report.records.iter().skip(4) {
            assert_eq!(r.outcome, Outcome::Shed { queue_len: 4 });
        }
    }

    #[test]
    fn no_sheds_at_low_load() {
        let trace = ArrivalTrace::open_loop(&[GRU], 300, 10_000, 4, 11);
        let cost = TableCostModel::new().with_kind(GRU, 2000, 100);
        let report = run_trace(&trace, &config(2, 16, 4, 1000), &cost).unwrap();
        assert_eq!(report.shed(), 0, "2 devices at 5x headroom must not shed");
        assert_eq!(report.completed(), 300);
    }

    #[test]
    fn batching_cuts_tail_latency_at_high_load() {
        // Arrivals at ~4x one device's single-request service rate. With
        // max_batch 1 the queue melts down; with max_batch 8 the affine
        // cost amortizes the base term and p99 must drop.
        let trace = ArrivalTrace::open_loop(&[GRU], 400, 250, 4, 13);
        let cost = TableCostModel::new().with_kind(GRU, 900, 100);
        let p99_of = |max_batch: u32| {
            let report = run_trace(&trace, &config(1, 400, max_batch, 2000), &cost).unwrap();
            assert_eq!(report.shed(), 0, "queue bound covers the whole trace");
            report.latency_summary().unwrap().p99
        };
        let (unbatched, batched) = (p99_of(1), p99_of(8));
        assert!(
            batched < unbatched / 2,
            "p99 with batching ({batched}) must be far below without ({unbatched})"
        );
    }

    #[test]
    fn more_devices_raise_throughput() {
        let trace = ArrivalTrace::open_loop(&[GRU], 200, 500, 4, 17);
        let cost = TableCostModel::new().with_kind(GRU, 1800, 200);
        let one = run_trace(&trace, &config(1, 200, 1, 0), &cost).unwrap();
        let four = run_trace(&trace, &config(4, 200, 1, 0), &cost).unwrap();
        assert_eq!(one.completed(), 200);
        assert_eq!(four.completed(), 200);
        assert!(four.makespan < one.makespan, "4 devices must finish sooner");
        assert!(four.throughput_per_mcycle() > one.throughput_per_mcycle());
    }

    #[test]
    fn identical_runs_are_identical() {
        let trace = ArrivalTrace::open_loop(&[GRU, NetworkKind::CifarNet], 250, 600, 3, 19);
        let cost = TableCostModel::new()
            .with_kind(GRU, 900, 100)
            .with_kind(NetworkKind::CifarNet, 2500, 300);
        let cfg = config(3, 12, 4, 800);
        let a = run_trace(&trace, &cfg, &cost).unwrap();
        let b = run_trace(&trace, &cfg, &cost).unwrap();
        assert_eq!(a, b);
    }
}
