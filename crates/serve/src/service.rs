//! The live, thread-backed inference service.
//!
//! Where [`crate::engine`] *models* the service in virtual time, this
//! module actually runs it: each worker thread owns one simulated
//! device with the configured networks built on it, pulls coalescable
//! requests off shared bounded queues, executes them as one batched
//! inference (`Network::infer_batch`), and answers every rider with the
//! batch's report. Clients block on a [`Ticket`].
//!
//! Batches coalesce *identical* requests — same network, same payload
//! seed — because the simulator binds one logical input per launch (see
//! `Network::infer_batch`). Distinct payloads therefore ride in
//! separate batches; the engine, whose costs are payload-independent,
//! is the tool for heterogeneous-traffic what-ifs.

use crate::error::{Result, ServeError};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use tango_nets::{build_network, synthetic_input, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig, SimOptions};

/// Live-service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Networks the service hosts (each worker device builds them all).
    pub kinds: Vec<NetworkKind>,
    /// Model scale preset.
    pub preset: Preset,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Device configuration for every pool member.
    pub gpu: GpuConfig,
    /// Simulation options (its `batch` field is set per dispatch).
    pub options: SimOptions,
    /// Worker threads = pool devices. Zero is allowed: the service
    /// admits and queues but never executes — useful for testing
    /// admission control deterministically.
    pub workers: usize,
    /// Per-network queue bound; submissions past it are shed.
    pub queue_bound: usize,
    /// Largest coalesced batch one dispatch may carry.
    pub max_batch: u32,
}

/// What a completed request receives.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReply {
    /// The network that ran.
    pub kind: NetworkKind,
    /// How many coalesced requests shared the execution.
    pub batch: u32,
    /// Simulated cycles of the batched device pass.
    pub cycles: u64,
    /// The network output (identical for every rider — the batch was
    /// coalesced from identical requests).
    pub output: Vec<f32>,
}

struct Pending {
    input_seed: u64,
    reply: mpsc::Sender<Result<InferenceReply>>,
}

struct State {
    queues: Vec<VecDeque<Pending>>,
    shutting_down: bool,
    shed: u64,
    completed: u64,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    kinds: Vec<NetworkKind>,
    queue_bound: usize,
    max_batch: usize,
}

/// A handle to one submitted request; [`wait`](Self::wait) blocks until
/// its batch executes.
pub struct Ticket {
    rx: mpsc::Receiver<Result<InferenceReply>>,
}

impl Ticket {
    /// Blocks until the request's batch completes.
    ///
    /// # Errors
    ///
    /// Propagates execution failures; returns [`ServeError::Shutdown`]
    /// if the service stopped before running the request.
    pub fn wait(self) -> Result<InferenceReply> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// The running service: worker threads over a pool of simulated
/// devices, fed through bounded per-network queues.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Builds the device pool (every worker constructs all configured
    /// networks on its own GPU) and starts the workers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an empty kind list, a zero
    /// queue bound or batch limit; network-build failures surface from
    /// the first request instead (workers build lazily on startup).
    pub fn start(config: ServiceConfig) -> Result<Self> {
        if config.kinds.is_empty() {
            return Err(ServeError::Config("service needs at least one network kind".into()));
        }
        if config.queue_bound == 0 {
            return Err(ServeError::Config("queue_bound must be at least 1".into()));
        }
        if config.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least 1".into()));
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: config.kinds.iter().map(|_| VecDeque::new()).collect(),
                shutting_down: false,
                shed: 0,
                completed: 0,
            }),
            work: Condvar::new(),
            kinds: config.kinds.clone(),
            queue_bound: config.queue_bound,
            max_batch: config.max_batch as usize,
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                std::thread::spawn(move || worker_loop(&shared, &config))
            })
            .collect();
        Ok(Service { shared, workers })
    }

    /// Submits one request for `kind` with the payload identified by
    /// `input_seed`. Non-blocking: admission happens immediately,
    /// execution asynchronously.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shed`] when `kind`'s queue is at its
    /// bound, [`ServeError::Shutdown`] after [`shutdown`](Self::shutdown)
    /// began, and [`ServeError::Config`] for a kind the service does not
    /// host.
    pub fn submit(&self, kind: NetworkKind, input_seed: u64) -> Result<Ticket> {
        let Some(k) = self.shared.kinds.iter().position(|&x| x == kind) else {
            return Err(ServeError::Config(format!("service does not host {kind}")));
        };
        let mut state = self.shared.state.lock().expect("service lock");
        if state.shutting_down {
            return Err(ServeError::Shutdown);
        }
        let queue = &mut state.queues[k];
        if queue.len() >= self.shared.queue_bound {
            let queue_len = queue.len();
            state.shed += 1;
            tango_obs::hcounter("serve.service", "shed_total", state.shed as i64);
            return Err(ServeError::Shed { kind, queue_len });
        }
        let (tx, rx) = mpsc::channel();
        queue.push_back(Pending {
            input_seed,
            reply: tx,
        });
        tango_obs::hcounter("serve.service", "queue_depth", queue.len() as i64);
        drop(state);
        self.shared.work.notify_one();
        Ok(Ticket { rx })
    }

    /// Requests shed at admission so far.
    pub fn shed_count(&self) -> u64 {
        self.shared.state.lock().expect("service lock").shed
    }

    /// Requests completed so far.
    pub fn completed_count(&self) -> u64 {
        self.shared.state.lock().expect("service lock").completed
    }

    /// Stops admitting, drains every queued request, and joins the
    /// workers. With zero workers, queued requests are answered with
    /// [`ServeError::Shutdown`].
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().expect("service lock");
            state.shutting_down = true;
            if self.workers.is_empty() {
                // Nobody will ever drain the queues; fail the waiters.
                for queue in &mut state.queues {
                    for pending in queue.drain(..) {
                        let _ = pending.reply.send(Err(ServeError::Shutdown));
                    }
                }
            }
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: build the device, then serve batches until shutdown
/// drains the queues.
fn worker_loop(shared: &Shared, config: &ServiceConfig) {
    let mut gpu = Gpu::new(config.gpu.clone());
    let mut networks = Vec::with_capacity(shared.kinds.len());
    for &kind in &shared.kinds {
        match build_network(&mut gpu, kind, config.preset, config.seed) {
            Ok(net) => networks.push(net),
            Err(e) => {
                // Device construction failed: answer everything, forever,
                // with the error (each worker is independent).
                fail_all_requests(shared, &e.to_string());
                return;
            }
        }
    }

    loop {
        let (k, batch) = {
            let mut state = shared.state.lock().expect("service lock");
            loop {
                if let Some((k, head_seed)) = state
                    .queues
                    .iter()
                    .enumerate()
                    .find_map(|(k, q)| q.front().map(|p| (k, p.input_seed)))
                {
                    // Coalesce: pull every queued request for the same
                    // (kind, payload) up to max_batch. Identical requests
                    // are the only ones a batched launch can answer.
                    let queue = &mut state.queues[k];
                    let mut batch = Vec::new();
                    let mut i = 0;
                    while i < queue.len() && batch.len() < shared.max_batch {
                        if queue[i].input_seed == head_seed {
                            batch.push(queue.remove(i).expect("index in bounds"));
                        } else {
                            i += 1;
                        }
                    }
                    break (k, batch);
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work.wait(state).expect("service lock");
            }
        };

        let kind = shared.kinds[k];
        let net = &networks[k];
        // Host-clock batch span: the worker's wall time executing one
        // coalesced dispatch (the virtual cost rides inside as vspans).
        let _batch_span =
            tango_obs::is_enabled().then(|| tango_obs::hspan("serve.batch", &format!("{}x{}", kind.name(), batch.len())));
        let input = synthetic_input(net.input_spec(), batch[0].input_seed);
        let inputs = vec![input; batch.len()];
        let outcome = net
            .infer_batch(&mut gpu, &inputs, &config.options)
            .map_err(|e| ServeError::Sim(tango::TangoError::Net(e)));
        match outcome {
            Ok(report) => {
                let reply = InferenceReply {
                    kind,
                    batch: batch.len() as u32,
                    cycles: report.total_cycles(),
                    output: report.output.as_slice().to_vec(),
                };
                let mut state = shared.state.lock().expect("service lock");
                state.completed += batch.len() as u64;
                tango_obs::hcounter("serve.service", "completed_total", state.completed as i64);
                drop(state);
                for pending in batch {
                    let _ = pending.reply.send(Ok(reply.clone()));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for pending in batch {
                    let _ = pending.reply.send(Err(ServeError::Config(msg.clone())));
                }
            }
        }
    }
}

fn fail_all_requests(shared: &Shared, msg: &str) {
    loop {
        let batch: Vec<Pending> = {
            let mut state = shared.state.lock().expect("service lock");
            loop {
                let drained: Vec<Pending> = state.queues.iter_mut().flat_map(|q| q.drain(..)).collect();
                if !drained.is_empty() {
                    break drained;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work.wait(state).expect("service lock");
            }
        };
        for pending in batch {
            let _ = pending.reply.send(Err(ServeError::Config(msg.to_string())));
        }
    }
}
