use crate::error::Result;
use std::collections::BTreeMap;
use std::sync::Arc;
use tango::{RunSpec, TangoError};
use tango_backend::{BackendJob, BackendRunSpec, BackendSpec, Precision};
use tango_harness::{RunStore, Suite};
use tango_nets::{NetworkKind, Preset};
use tango_sim::{GpuConfig, SimOptions};

/// How long a device takes to execute one batch.
///
/// The engine asks only this question, so it can schedule against a
/// table (fast unit tests, analytical what-ifs) or against the full
/// cycle-level simulator via the run store. Implementations must be
/// deterministic: the same `(kind, batch)` always returns the same
/// cycle count.
pub trait CostModel {
    /// Cycles for one dispatch of `batch` coalesced requests to `kind`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (a table model never fails).
    fn batch_cycles(&self, kind: NetworkKind, batch: u32) -> Result<u64>;
}

/// The full cost of one batch on a modelled device.
///
/// The serve engine only needs [`cycles`](BatchCost::cycles) — one pool
/// of identical devices shares one clock, so cycles order events
/// completely. A *fleet* of heterogeneous pools does not: a gk210 cycle
/// and a gp102 cycle are different lengths of wall time, so cross-pool
/// scheduling happens in [`ns`](BatchCost::ns), cycles divided by the
/// device clock in GHz (cycles per nanosecond). Energy rides along for
/// joules-per-request accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCost {
    /// Device cycles for the batch (device-local clock).
    pub cycles: u64,
    /// Wall-normalized duration: `ceil(cycles / clock_ghz)` nanoseconds.
    pub ns: u64,
    /// Energy the batch consumes, in joules.
    pub energy_j: f64,
}

impl BatchCost {
    /// Normalizes `cycles` on a `clock_ghz` device into a cost. GHz is
    /// cycles-per-nanosecond, so `ns = ceil(cycles / clock_ghz)`,
    /// floored at 1 so a dispatched batch always occupies the device.
    pub fn from_cycles(cycles: u64, clock_ghz: f64, energy_j: f64) -> Self {
        assert!(clock_ghz > 0.0, "device clock must be positive");
        let ns = ((cycles as f64 / clock_ghz).ceil() as u64).max(1);
        BatchCost {
            cycles: cycles.max(1),
            ns,
            energy_j,
        }
    }
}

/// An affine cost table: `base + per_request * batch` cycles, settable
/// per network. The `base` term is what makes batching pay — it is
/// amortized over the whole batch.
#[derive(Debug, Clone, Default)]
pub struct TableCostModel {
    entries: BTreeMap<&'static str, (u64, u64)>,
}

impl TableCostModel {
    /// An empty table.
    pub fn new() -> Self {
        TableCostModel::default()
    }

    /// Sets `kind`'s cost to `base + per_request * batch`.
    pub fn with_kind(mut self, kind: NetworkKind, base: u64, per_request: u64) -> Self {
        self.entries.insert(kind.name(), (base, per_request));
        self
    }
}

impl CostModel for TableCostModel {
    fn batch_cycles(&self, kind: NetworkKind, batch: u32) -> Result<u64> {
        let (base, per_request) = self.entries.get(kind.name()).copied().unwrap_or((1000, 100));
        Ok(base + per_request * batch as u64)
    }
}

/// The real thing: batch cost measured by running the network on a
/// modelled accelerator, fetched through a [`RunStore`] so repeated
/// identical batches — the common case under a steady workload — are
/// store hits rather than re-simulations.
///
/// By default the device is the SIMT GPU simulator (with
/// [`SimOptions::batch`] set per query). [`with_backend`] retargets the
/// model onto any [`BackendSpec`] — systolic array, FPGA — and
/// [`with_precision`] additionally narrows the weights on backends that
/// support it, so serve experiments can compare accelerators under the
/// same arrival trace.
///
/// [`with_backend`]: SimCostModel::with_backend
/// [`with_precision`]: SimCostModel::with_precision
#[derive(Debug, Clone)]
pub struct SimCostModel {
    store: Arc<RunStore>,
    config: GpuConfig,
    preset: Preset,
    seed: u64,
    options: SimOptions,
    backend: Option<BackendSpec>,
    precision: Precision,
}

impl SimCostModel {
    /// A model simulating on `config` at `preset`/`seed` under the base
    /// `options` (its `batch` field is overridden per query).
    pub fn new(store: Arc<RunStore>, config: GpuConfig, preset: Preset, seed: u64, options: SimOptions) -> Self {
        SimCostModel {
            store,
            config,
            preset,
            seed,
            options,
            backend: None,
            precision: Precision::Fp32,
        }
    }

    /// Retargets the model onto `spec` instead of the default GPU
    /// simulator path. The base `SimOptions` no longer apply (backends
    /// have their own hardware descriptions).
    pub fn with_backend(mut self, spec: BackendSpec) -> Self {
        self.backend = Some(spec);
        self
    }

    /// Sets the weight precision for backend queries (only meaningful
    /// with [`with_backend`](Self::with_backend); the plain GPU path is
    /// fp32-only and ignores it).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    fn spec(&self, kind: NetworkKind, batch: u32) -> RunSpec {
        RunSpec {
            config: self.config.clone(),
            preset: self.preset,
            seed: self.seed,
            kind,
            options: self.options.clone().with_batch(batch.max(1)),
        }
    }

    fn backend_spec(&self, backend: &BackendSpec, kind: NetworkKind, batch: u32) -> BackendRunSpec {
        BackendRunSpec {
            spec: backend.clone(),
            job: BackendJob {
                kind,
                preset: self.preset,
                seed: self.seed,
                batch: batch.max(1),
                precision: self.precision,
            },
        }
    }

    /// Simulates every `(kind, batch ≤ max_batch)` combination the
    /// engine can ask for, in parallel across `workers` threads via a
    /// harness [`Suite`]. This is the only parallel stage in a serve
    /// run — the engine itself is serial — so worker count can never
    /// change results, only wall-clock time.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation failure.
    pub fn precompute(&self, kinds: &[NetworkKind], max_batch: u32, workers: usize) -> Result<()> {
        let mut suite = Suite::new();
        for &kind in kinds {
            for batch in 1..=max_batch.max(1) {
                match &self.backend {
                    None => suite.add_run(self.spec(kind, batch)),
                    Some(backend) => suite.add_backend(self.backend_spec(backend, kind, batch)),
                };
            }
        }
        suite.execute(&self.store, workers)?;
        Ok(())
    }

    /// The backing store (hit/miss counters tell how much re-simulation
    /// the workload actually caused).
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// The full `(cycles, ns, energy)` cost of one `batch`-request
    /// dispatch to `kind` — what a heterogeneous fleet schedules on.
    ///
    /// A **cold miss** (the store holds no record for this `(kind,
    /// batch)`) simulates inline, exactly as [`precompute`] would have:
    /// the store keys on the run spec alone, so a cold query, a
    /// 1-worker precompute, and an N-worker precompute all converge on
    /// byte-identical records. Worker count changes wall time, never
    /// results.
    ///
    /// [`precompute`]: SimCostModel::precompute
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn batch_cost(&self, kind: NetworkKind, batch: u32) -> Result<BatchCost> {
        match &self.backend {
            None => {
                let (run, _hit) = self.store.fetch_run(&self.spec(kind, batch))?;
                Ok(BatchCost::from_cycles(
                    run.report.total_cycles(),
                    self.config.clock_ghz,
                    run.report.total_energy_j(),
                ))
            }
            Some(backend) => {
                let (run, _hit) = self
                    .store
                    .fetch_backend(&self.backend_spec(backend, kind, batch))
                    .map_err(TangoError::from)?;
                Ok(BatchCost::from_cycles(run.total_cycles(), run.clock_ghz, run.total_energy_j()))
            }
        }
    }
}

impl CostModel for SimCostModel {
    fn batch_cycles(&self, kind: NetworkKind, batch: u32) -> Result<u64> {
        match &self.backend {
            None => {
                let (run, _hit) = self.store.fetch_run(&self.spec(kind, batch))?;
                Ok(run.report.total_cycles().max(1))
            }
            Some(backend) => {
                let (run, _hit) = self
                    .store
                    .fetch_backend(&self.backend_spec(backend, kind, batch))
                    .map_err(TangoError::from)?;
                Ok(run.total_cycles().max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_model_is_affine_in_batch() {
        let m = TableCostModel::new().with_kind(NetworkKind::Gru, 1000, 10);
        assert_eq!(m.batch_cycles(NetworkKind::Gru, 1).unwrap(), 1010);
        assert_eq!(m.batch_cycles(NetworkKind::Gru, 8).unwrap(), 1080);
        // Unlisted kinds get the default curve rather than panicking.
        assert!(m.batch_cycles(NetworkKind::Lstm, 1).unwrap() > 0);
    }

    #[test]
    fn sim_model_caches_repeat_queries() {
        let root = std::env::temp_dir().join(format!("tango-serve-cost-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(RunStore::at(&root));
        let m = SimCostModel::new(
            store.clone(),
            GpuConfig::gp102(),
            Preset::Tiny,
            7,
            SimOptions::new(),
        );
        let c1 = m.batch_cycles(NetworkKind::Gru, 2).unwrap();
        let misses = store.misses();
        let c2 = m.batch_cycles(NetworkKind::Gru, 2).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(store.misses(), misses, "second query must be a store hit");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cold_miss_matches_precompute_at_any_worker_count() {
        // Satellite: a cold store must never diverge from a warmed one.
        // Three fresh stores — (a) queried cold with no precompute,
        // (b) precomputed with 1 worker, (c) precomputed with 4 workers
        // — must agree on every (kind, batch) cost, cycles and energy
        // both. The store keys on the run spec alone, so the only thing
        // worker count may change is wall time.
        let kinds = [NetworkKind::Gru];
        let model_at = |tag: &str| {
            let root = std::env::temp_dir().join(format!("tango-serve-cold-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            (
                SimCostModel::new(
                    Arc::new(RunStore::at(&root)),
                    GpuConfig::gp102(),
                    Preset::Tiny,
                    7,
                    SimOptions::new(),
                ),
                root,
            )
        };
        let (cold, cold_root) = model_at("a");
        let (one, one_root) = model_at("b");
        let (four, four_root) = model_at("c");
        assert_eq!(cold.store().misses(), 0, "store must start empty");
        one.precompute(&kinds, 2, 1).unwrap();
        four.precompute(&kinds, 2, 4).unwrap();
        for batch in 1..=2u32 {
            let a = cold.batch_cost(NetworkKind::Gru, batch).unwrap();
            let b = one.batch_cost(NetworkKind::Gru, batch).unwrap();
            let c = four.batch_cost(NetworkKind::Gru, batch).unwrap();
            assert_eq!(a, b, "cold miss diverged from 1-worker precompute at batch {batch}");
            assert_eq!(b, c, "worker count changed precomputed cost at batch {batch}");
            assert_eq!(a.cycles, cold.batch_cycles(NetworkKind::Gru, batch).unwrap());
            // gp102 clocks above 1 GHz, so wall time compresses below
            // the cycle count.
            assert!(a.ns <= a.cycles, "1.48 GHz device: ns {} must not exceed cycles {}", a.ns, a.cycles);
        }
        assert!(cold.store().misses() > 0, "cold queries must have simulated inline");
        for root in [cold_root, one_root, four_root] {
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn cold_miss_is_repeatable() {
        // The same cold query answered twice from two fresh stores is
        // byte-identical — a cold path that "precomputes
        // deterministically" rather than failing or drifting.
        let query = |tag: &str| {
            let root = std::env::temp_dir().join(format!("tango-serve-coldrep-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            let m = SimCostModel::new(
                Arc::new(RunStore::at(&root)),
                GpuConfig::gk210(),
                Preset::Tiny,
                11,
                SimOptions::new(),
            );
            let cost = m.batch_cost(NetworkKind::Gru, 3).unwrap();
            let _ = std::fs::remove_dir_all(&root);
            cost
        };
        let (a, b) = (query("x"), query("y"));
        assert_eq!(a, b);
        assert!(a.energy_j > 0.0, "a simulated batch consumes energy");
        // gk210 clocks at 0.745 GHz: each cycle is > 1 ns, so the
        // wall-normalized duration must exceed the cycle count.
        assert!(a.ns > a.cycles, "sub-GHz device: ns {} must exceed cycles {}", a.ns, a.cycles);
    }

    #[test]
    fn batch_cost_normalizes_by_clock() {
        let c = BatchCost::from_cycles(1000, 2.0, 0.5);
        assert_eq!(c.cycles, 1000);
        assert_eq!(c.ns, 500);
        let sub_ghz = BatchCost::from_cycles(1000, 0.5, 0.5);
        assert_eq!(sub_ghz.ns, 2000);
        // Ceil, never floor-to-zero.
        assert_eq!(BatchCost::from_cycles(1, 2.0, 0.0).ns, 1);
        assert_eq!(BatchCost::from_cycles(0, 1.0, 0.0).cycles, 1);
    }

    #[test]
    fn backend_model_caches_and_batches_amortize() {
        use tango_backend::SystolicConfig;
        let root = std::env::temp_dir().join(format!("tango-serve-cost-acc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(RunStore::at(&root));
        let m = SimCostModel::new(
            store.clone(),
            GpuConfig::gp102(),
            Preset::Tiny,
            7,
            SimOptions::new(),
        )
        .with_backend(BackendSpec::Systolic(SystolicConfig::edge()))
        .with_precision(Precision::Int8);

        m.precompute(&[NetworkKind::Gru], 4, 2).unwrap();
        let misses = store.misses();
        let c1 = m.batch_cycles(NetworkKind::Gru, 1).unwrap();
        let c4 = m.batch_cycles(NetworkKind::Gru, 4).unwrap();
        assert_eq!(store.misses(), misses, "precomputed batches must all be hits");
        assert!(c4 < 4 * c1, "weight-stationary batching must amortize: {c4} vs 4x{c1}");
        assert_eq!(c1, m.batch_cycles(NetworkKind::Gru, 1).unwrap());
        let _ = std::fs::remove_dir_all(&root);
    }
}
