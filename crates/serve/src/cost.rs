use crate::error::Result;
use std::collections::BTreeMap;
use std::sync::Arc;
use tango::{RunSpec, TangoError};
use tango_backend::{BackendJob, BackendRunSpec, BackendSpec, Precision};
use tango_harness::{RunStore, Suite};
use tango_nets::{NetworkKind, Preset};
use tango_sim::{GpuConfig, SimOptions};

/// How long a device takes to execute one batch.
///
/// The engine asks only this question, so it can schedule against a
/// table (fast unit tests, analytical what-ifs) or against the full
/// cycle-level simulator via the run store. Implementations must be
/// deterministic: the same `(kind, batch)` always returns the same
/// cycle count.
pub trait CostModel {
    /// Cycles for one dispatch of `batch` coalesced requests to `kind`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (a table model never fails).
    fn batch_cycles(&self, kind: NetworkKind, batch: u32) -> Result<u64>;
}

/// An affine cost table: `base + per_request * batch` cycles, settable
/// per network. The `base` term is what makes batching pay — it is
/// amortized over the whole batch.
#[derive(Debug, Clone, Default)]
pub struct TableCostModel {
    entries: BTreeMap<&'static str, (u64, u64)>,
}

impl TableCostModel {
    /// An empty table.
    pub fn new() -> Self {
        TableCostModel::default()
    }

    /// Sets `kind`'s cost to `base + per_request * batch`.
    pub fn with_kind(mut self, kind: NetworkKind, base: u64, per_request: u64) -> Self {
        self.entries.insert(kind.name(), (base, per_request));
        self
    }
}

impl CostModel for TableCostModel {
    fn batch_cycles(&self, kind: NetworkKind, batch: u32) -> Result<u64> {
        let (base, per_request) = self.entries.get(kind.name()).copied().unwrap_or((1000, 100));
        Ok(base + per_request * batch as u64)
    }
}

/// The real thing: batch cost measured by running the network on a
/// modelled accelerator, fetched through a [`RunStore`] so repeated
/// identical batches — the common case under a steady workload — are
/// store hits rather than re-simulations.
///
/// By default the device is the SIMT GPU simulator (with
/// [`SimOptions::batch`] set per query). [`with_backend`] retargets the
/// model onto any [`BackendSpec`] — systolic array, FPGA — and
/// [`with_precision`] additionally narrows the weights on backends that
/// support it, so serve experiments can compare accelerators under the
/// same arrival trace.
///
/// [`with_backend`]: SimCostModel::with_backend
/// [`with_precision`]: SimCostModel::with_precision
#[derive(Debug, Clone)]
pub struct SimCostModel {
    store: Arc<RunStore>,
    config: GpuConfig,
    preset: Preset,
    seed: u64,
    options: SimOptions,
    backend: Option<BackendSpec>,
    precision: Precision,
}

impl SimCostModel {
    /// A model simulating on `config` at `preset`/`seed` under the base
    /// `options` (its `batch` field is overridden per query).
    pub fn new(store: Arc<RunStore>, config: GpuConfig, preset: Preset, seed: u64, options: SimOptions) -> Self {
        SimCostModel {
            store,
            config,
            preset,
            seed,
            options,
            backend: None,
            precision: Precision::Fp32,
        }
    }

    /// Retargets the model onto `spec` instead of the default GPU
    /// simulator path. The base `SimOptions` no longer apply (backends
    /// have their own hardware descriptions).
    pub fn with_backend(mut self, spec: BackendSpec) -> Self {
        self.backend = Some(spec);
        self
    }

    /// Sets the weight precision for backend queries (only meaningful
    /// with [`with_backend`](Self::with_backend); the plain GPU path is
    /// fp32-only and ignores it).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    fn spec(&self, kind: NetworkKind, batch: u32) -> RunSpec {
        RunSpec {
            config: self.config.clone(),
            preset: self.preset,
            seed: self.seed,
            kind,
            options: self.options.clone().with_batch(batch.max(1)),
        }
    }

    fn backend_spec(&self, backend: &BackendSpec, kind: NetworkKind, batch: u32) -> BackendRunSpec {
        BackendRunSpec {
            spec: backend.clone(),
            job: BackendJob {
                kind,
                preset: self.preset,
                seed: self.seed,
                batch: batch.max(1),
                precision: self.precision,
            },
        }
    }

    /// Simulates every `(kind, batch ≤ max_batch)` combination the
    /// engine can ask for, in parallel across `workers` threads via a
    /// harness [`Suite`]. This is the only parallel stage in a serve
    /// run — the engine itself is serial — so worker count can never
    /// change results, only wall-clock time.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation failure.
    pub fn precompute(&self, kinds: &[NetworkKind], max_batch: u32, workers: usize) -> Result<()> {
        let mut suite = Suite::new();
        for &kind in kinds {
            for batch in 1..=max_batch.max(1) {
                match &self.backend {
                    None => suite.add_run(self.spec(kind, batch)),
                    Some(backend) => suite.add_backend(self.backend_spec(backend, kind, batch)),
                };
            }
        }
        suite.execute(&self.store, workers)?;
        Ok(())
    }

    /// The backing store (hit/miss counters tell how much re-simulation
    /// the workload actually caused).
    pub fn store(&self) -> &RunStore {
        &self.store
    }
}

impl CostModel for SimCostModel {
    fn batch_cycles(&self, kind: NetworkKind, batch: u32) -> Result<u64> {
        match &self.backend {
            None => {
                let (run, _hit) = self.store.fetch_run(&self.spec(kind, batch))?;
                Ok(run.report.total_cycles().max(1))
            }
            Some(backend) => {
                let (run, _hit) = self
                    .store
                    .fetch_backend(&self.backend_spec(backend, kind, batch))
                    .map_err(TangoError::from)?;
                Ok(run.total_cycles().max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_model_is_affine_in_batch() {
        let m = TableCostModel::new().with_kind(NetworkKind::Gru, 1000, 10);
        assert_eq!(m.batch_cycles(NetworkKind::Gru, 1).unwrap(), 1010);
        assert_eq!(m.batch_cycles(NetworkKind::Gru, 8).unwrap(), 1080);
        // Unlisted kinds get the default curve rather than panicking.
        assert!(m.batch_cycles(NetworkKind::Lstm, 1).unwrap() > 0);
    }

    #[test]
    fn sim_model_caches_repeat_queries() {
        let root = std::env::temp_dir().join(format!("tango-serve-cost-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(RunStore::at(&root));
        let m = SimCostModel::new(
            store.clone(),
            GpuConfig::gp102(),
            Preset::Tiny,
            7,
            SimOptions::new(),
        );
        let c1 = m.batch_cycles(NetworkKind::Gru, 2).unwrap();
        let misses = store.misses();
        let c2 = m.batch_cycles(NetworkKind::Gru, 2).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(store.misses(), misses, "second query must be a store hit");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn backend_model_caches_and_batches_amortize() {
        use tango_backend::SystolicConfig;
        let root = std::env::temp_dir().join(format!("tango-serve-cost-acc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(RunStore::at(&root));
        let m = SimCostModel::new(
            store.clone(),
            GpuConfig::gp102(),
            Preset::Tiny,
            7,
            SimOptions::new(),
        )
        .with_backend(BackendSpec::Systolic(SystolicConfig::edge()))
        .with_precision(Precision::Int8);

        m.precompute(&[NetworkKind::Gru], 4, 2).unwrap();
        let misses = store.misses();
        let c1 = m.batch_cycles(NetworkKind::Gru, 1).unwrap();
        let c4 = m.batch_cycles(NetworkKind::Gru, 4).unwrap();
        assert_eq!(store.misses(), misses, "precomputed batches must all be hits");
        assert!(c4 < 4 * c1, "weight-stationary batching must amortize: {c4} vs 4x{c1}");
        assert_eq!(c1, m.batch_cycles(NetworkKind::Gru, 1).unwrap());
        let _ = std::fs::remove_dir_all(&root);
    }
}
