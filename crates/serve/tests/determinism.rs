//! The batching-determinism contract: the same seed and arrival trace
//! must produce a byte-identical latency table whether the cost model
//! was precomputed serially or across many workers, and whether the
//! store was cold or warm.

use std::sync::Arc;
use tango_harness::RunStore;
use tango_nets::{NetworkKind, Preset};
use tango_serve::{run_trace, ArrivalTrace, BatchPolicy, ServeConfig, ServeReport, SimCostModel};
use tango_sim::{GpuConfig, SimOptions};

const KINDS: [NetworkKind; 2] = [NetworkKind::Gru, NetworkKind::Lstm];
const SEED: u64 = 0x5EED;
const MAX_BATCH: u32 = 4;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tango-serve-det-{tag}-{}", std::process::id()))
}

fn engine_config() -> ServeConfig {
    ServeConfig {
        devices: 2,
        queue_bound: 32,
        policy: BatchPolicy {
            max_batch: MAX_BATCH,
            max_delay_cycles: 5_000,
        },
    }
}

/// Renders the full per-request accounting to text — the strictest
/// possible equality: every dispatch time, batch size, device
/// assignment, and latency must match.
fn render(report: &ServeReport) -> String {
    let mut out = String::new();
    for (i, r) in report.records.iter().enumerate() {
        out.push_str(&format!("{i} {} {} {:?}\n", r.kind, r.arrival, r.outcome));
    }
    let s = report.latency_summary().expect("completions");
    out.push_str(&format!(
        "makespan={} batches={} p50={} p95={} p99={}\n",
        report.makespan, report.batches, s.p50, s.p95, s.p99
    ));
    out
}

fn run_with_workers(tag: &str, workers: usize) -> String {
    let root = scratch(tag);
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(RunStore::at(&root));
    let cost = SimCostModel::new(store, GpuConfig::gp102(), Preset::Tiny, SEED, SimOptions::new());
    cost.precompute(&KINDS, MAX_BATCH, workers).expect("precompute");
    let trace = ArrivalTrace::open_loop(&KINDS, 120, 40_000, 3, SEED);
    let report = run_trace(&trace, &engine_config(), &cost).expect("trace run");
    let rendered = render(&report);
    let _ = std::fs::remove_dir_all(&root);
    rendered
}

#[test]
fn latency_table_is_identical_across_worker_counts() {
    let serial = run_with_workers("serial", 1);
    let parallel = run_with_workers("parallel", 4);
    assert_eq!(serial, parallel, "worker count must not affect the latency table");
}

#[test]
fn warm_store_reruns_are_identical_and_simulation_free() {
    let root = scratch("warm");
    let _ = std::fs::remove_dir_all(&root);
    let trace = ArrivalTrace::open_loop(&KINDS, 120, 40_000, 3, SEED);
    let cold = {
        let store = Arc::new(RunStore::at(&root));
        let cost = SimCostModel::new(store, GpuConfig::gp102(), Preset::Tiny, SEED, SimOptions::new());
        cost.precompute(&KINDS, MAX_BATCH, 2).expect("precompute");
        render(&run_trace(&trace, &engine_config(), &cost).expect("cold run"))
    };
    // A fresh process over the same store directory: everything hits.
    let store = Arc::new(RunStore::at(&root));
    let cost = SimCostModel::new(store.clone(), GpuConfig::gp102(), Preset::Tiny, SEED, SimOptions::new());
    cost.precompute(&KINDS, MAX_BATCH, 2).expect("warm precompute");
    let warm = render(&run_trace(&trace, &engine_config(), &cost).expect("warm run"));
    assert_eq!(cold, warm);
    assert_eq!(store.misses(), 0, "warm rerun must not simulate");
    let _ = std::fs::remove_dir_all(&root);
}
