//! Live-service integration: concurrent clients, coalesced batching,
//! admission control, and drain-on-shutdown.

use tango_nets::{NetworkKind, Preset};
use tango_serve::{ServeError, Service, ServiceConfig};
use tango_sim::{GpuConfig, SimOptions};

fn config(workers: usize, queue_bound: usize, max_batch: u32) -> ServiceConfig {
    ServiceConfig {
        kinds: vec![NetworkKind::Gru],
        preset: Preset::Tiny,
        seed: 7,
        gpu: GpuConfig::gp102(),
        options: SimOptions::new(),
        workers,
        queue_bound,
        max_batch,
    }
}

#[test]
fn concurrent_identical_requests_coalesce_and_agree() {
    let service = Service::start(config(1, 64, 8)).expect("start");
    // Submit a burst of identical requests before the worker can drain
    // them; they must coalesce into batches and all receive the same
    // output.
    let tickets: Vec<_> = (0..6).map(|_| service.submit(NetworkKind::Gru, 3).expect("admitted")).collect();
    let replies: Vec<_> = tickets.into_iter().map(|t| t.wait().expect("completed")).collect();
    let first = &replies[0];
    assert!(first.cycles > 0);
    assert!(!first.output.is_empty());
    for reply in &replies {
        assert_eq!(reply.output, first.output, "coalesced riders must share one output");
        assert!(reply.batch >= 1 && reply.batch <= 8);
    }
    // At least one multi-request batch must have formed out of 6
    // identical submissions against a single busy device.
    assert!(replies.iter().any(|r| r.batch > 1), "burst should coalesce");
    assert_eq!(service.completed_count(), 6);
    assert_eq!(service.shed_count(), 0);
    service.shutdown();
}

#[test]
fn distinct_payloads_do_not_coalesce() {
    let service = Service::start(config(1, 64, 8)).expect("start");
    let a = service.submit(NetworkKind::Gru, 1).expect("admitted");
    let b = service.submit(NetworkKind::Gru, 2).expect("admitted");
    let (ra, rb) = (a.wait().expect("a"), b.wait().expect("b"));
    assert_ne!(ra.output, rb.output, "different payloads, different outputs");
    service.shutdown();
}

#[test]
fn admission_control_sheds_past_queue_bound() {
    // Zero workers: nothing drains, so the queue fills deterministically.
    let service = Service::start(config(0, 3, 4)).expect("start");
    let mut admitted = Vec::new();
    let mut sheds = 0;
    for i in 0..5 {
        match service.submit(NetworkKind::Gru, i) {
            Ok(ticket) => admitted.push(ticket),
            Err(ServeError::Shed { kind, queue_len }) => {
                assert_eq!(kind, NetworkKind::Gru);
                assert_eq!(queue_len, 3);
                sheds += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(admitted.len(), 3);
    assert_eq!(sheds, 2);
    assert_eq!(service.shed_count(), 2);
    service.shutdown();
    // Queued-but-never-run requests are answered with Shutdown.
    for ticket in admitted {
        assert!(matches!(ticket.wait(), Err(ServeError::Shutdown)));
    }
}

#[test]
fn unknown_kinds_and_bad_configs_are_rejected() {
    let service = Service::start(config(0, 4, 1)).expect("start");
    assert!(matches!(
        service.submit(NetworkKind::AlexNet, 0),
        Err(ServeError::Config(_))
    ));
    service.shutdown();
    let mut bad = config(1, 0, 1);
    assert!(Service::start(bad.clone()).is_err());
    bad.queue_bound = 4;
    bad.max_batch = 0;
    assert!(Service::start(bad.clone()).is_err());
    bad.max_batch = 1;
    bad.kinds.clear();
    assert!(Service::start(bad).is_err());
}

#[test]
fn clients_on_threads_all_complete() {
    let service = std::sync::Arc::new(Service::start(config(2, 128, 4)).expect("start"));
    let handles: Vec<_> = (0..4)
        .map(|client| {
            let service = std::sync::Arc::clone(&service);
            std::thread::spawn(move || {
                (0..3)
                    .map(|i| {
                        service
                            .submit(NetworkKind::Gru, (client % 2) as u64)
                            .expect("admitted")
                            .wait()
                            .unwrap_or_else(|e| panic!("client {client} request {i}: {e}"))
                            .cycles
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut total = 0;
    for handle in handles {
        total += handle.join().expect("client thread").len();
    }
    assert_eq!(total, 12);
    assert_eq!(service.completed_count(), 12);
    match std::sync::Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => panic!("all clients joined; the Arc must be unique"),
    }
}
