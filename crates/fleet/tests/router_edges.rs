//! Router and autoscaler edge cases at the engine level: exact shed
//! accounting under total saturation, drain-before-teardown when a pool
//! scales to zero mid-flight, and deterministic tie-breaking between
//! equal pools.

use tango_fleet::{
    run_fleet, AutoscaleConfig, ClassSpec, FleetConfig, FleetOutcome, FleetRequest, FleetTrace, PoolSpec,
    RoutePolicy, ShedReason, TableFleetCost,
};
use tango_nets::NetworkKind;

const GRU: NetworkKind = NetworkKind::Gru;

fn request(at_ns: u64) -> FleetRequest {
    FleetRequest {
        at_ns,
        kind: GRU,
        class: 0,
    }
}

#[test]
fn saturated_fleet_sheds_exactly_the_overflow() {
    // 2 pools x queue bound 4, one device each, max_batch 1, and a
    // service time so long nothing drains during the burst: of 50
    // simultaneous requests, exactly 8 are admitted (admission for one
    // timestamp runs before dispatch, so the bound caps each pool at 4
    // pending) and 42 shed as queue_full. Every policy must account
    // identically — saturation leaves no routing freedom.
    for policy in RoutePolicy::ALL {
        let cfg = FleetConfig {
            pools: vec![PoolSpec::fixed("a", 1), PoolSpec::fixed("b", 1)],
            classes: vec![ClassSpec::best_effort("be")],
            queue_bound: 4,
            max_batch: 1,
            max_delay_ns: 0,
            policy,
            autoscale: None,
        };
        let cost = TableFleetCost::new(1.0).with_kind(GRU, 100_000_000, 0);
        let trace = FleetTrace::from_requests(&[GRU], 1, (0..50).map(|_| request(0)).collect());
        let report = run_fleet(&trace, &cfg, &[&cost, &cost]).unwrap();
        assert_eq!(report.completed(), 8, "policy {}", policy.name());
        assert_eq!(report.shed(), 42, "policy {}", policy.name());
        assert_eq!(report.shed_by(ShedReason::QueueFull), 42, "every shed is queue_full");
        assert_eq!(report.shed_by(ShedReason::SloInfeasible), 0);
        assert_eq!(report.shed_by(ShedReason::NoCapacity), 0);
        // Shed records carry the reason explicitly — no silent drops.
        let explicit = report
            .records
            .iter()
            .filter(|r| matches!(r.outcome, FleetOutcome::Shed { reason: ShedReason::QueueFull }))
            .count();
        assert_eq!(explicit, 42);
    }
}

#[test]
fn pool_scaled_to_zero_mid_flight_drains_before_teardown() {
    // One elastic pool with floor 0 next to a fixed pool. A burst puts
    // work in flight on both; the quiet period afterwards lets the
    // autoscaler take the elastic pool to zero. Its in-flight batches
    // must complete (drain-before-teardown), later traffic must route
    // around the dead pool, and the run must terminate.
    let cfg = FleetConfig {
        pools: vec![PoolSpec::fixed("fixed", 1), PoolSpec::elastic("elastic", 2, 0, 2)],
        classes: vec![ClassSpec::best_effort("be")],
        queue_bound: 1024,
        max_batch: 1,
        max_delay_ns: 0,
        policy: RoutePolicy::LeastQueue,
        autoscale: Some(AutoscaleConfig {
            interval_ns: 10_000,
            high_queue_per_device: 100, // never grow
            low_queue_per_device: 1,
        }),
    };
    let cost = TableFleetCost::new(1.0).with_kind(GRU, 50_000, 0); // 50 µs
    let mut requests: Vec<FleetRequest> = (0..6).map(|_| request(0)).collect();
    // Stragglers long after the elastic pool has scaled away.
    requests.push(request(2_000_000));
    requests.push(request(2_000_000));
    let trace = FleetTrace::from_requests(&[GRU], 1, requests);
    let report = run_fleet(&trace, &cfg, &[&cost, &cost]).unwrap();

    assert_eq!(report.completed(), 8, "every admitted request must retire");
    let elastic = &report.pools[1];
    assert!(elastic.completed > 0, "the elastic pool ran work before scaling away");
    assert_eq!(elastic.final_devices, 0, "the idle elastic pool must reach its floor of zero");
    assert!(elastic.shrinks > 0);
    // The stragglers arrived after teardown: only the fixed pool could
    // take them.
    for r in report.records.iter().skip(6) {
        match r.outcome {
            FleetOutcome::Completed { pool, .. } => assert_eq!(pool, 0, "dead pool must receive nothing"),
            FleetOutcome::Shed { .. } => panic!("stragglers had a live pool available"),
        }
    }
}

#[test]
fn equal_pools_tie_break_to_the_lowest_index_deterministically() {
    // Two byte-identical pools: least-queue and cost-aware must send
    // the first request (and every perfectly tied one) to pool 0, and
    // repeated runs must agree exactly.
    for policy in [RoutePolicy::LeastQueue, RoutePolicy::CostAware] {
        let cfg = FleetConfig {
            pools: vec![PoolSpec::fixed("twin0", 1), PoolSpec::fixed("twin1", 1)],
            classes: vec![ClassSpec::best_effort("be")],
            queue_bound: 64,
            max_batch: 1,
            max_delay_ns: 0,
            policy,
            autoscale: None,
        };
        let cost = TableFleetCost::new(1.0).with_kind(GRU, 10_000, 0);
        // Well-spaced arrivals: both pools idle and empty at each one.
        let trace = FleetTrace::from_requests(&[GRU], 1, (0..5).map(|i| request(i * 1_000_000)).collect());
        let run = || run_fleet(&trace, &cfg, &[&cost, &cost]).unwrap();
        let report = run();
        for r in &report.records {
            match r.outcome {
                FleetOutcome::Completed { pool, .. } => {
                    assert_eq!(pool, 0, "{}: ties must break to pool 0", policy.name());
                }
                FleetOutcome::Shed { .. } => panic!("nothing should shed at this load"),
            }
        }
        assert_eq!(run(), report, "replays must be byte-identical");
    }
}

#[test]
fn zero_device_fleet_sheds_everything_as_no_capacity() {
    let cfg = FleetConfig {
        pools: vec![PoolSpec::elastic("dead", 0, 0, 2)],
        classes: vec![ClassSpec::best_effort("be")],
        queue_bound: 8,
        max_batch: 1,
        max_delay_ns: 0,
        policy: RoutePolicy::CostAware,
        autoscale: None,
    };
    let cost = TableFleetCost::new(1.0);
    let trace = FleetTrace::from_requests(&[GRU], 1, vec![request(0), request(10)]);
    let report = run_fleet(&trace, &cfg, &[&cost]).unwrap();
    assert_eq!(report.completed(), 0);
    assert_eq!(report.shed_by(ShedReason::NoCapacity), 2);
    assert_eq!(report.makespan_ns, 0);
}
