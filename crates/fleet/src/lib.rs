//! Tango fleet: heterogeneous device pools, cost-model routing, and
//! SLO-driven autoscaling over trace-driven load.
//!
//! The serve crate answers "what does a pool of identical simulated
//! devices do under load?". A datacenter is not that: it mixes server
//! GPUs, mobile parts, and FPGAs — the paper's whole device spectrum —
//! behind one front door. This crate simulates that front door on the
//! serve engine's virtual-time foundations:
//!
//! * **Pools** ([`PoolSpec`] + a [`FleetCost`] per pool) — each pool is
//!   a [`tango_serve::DeviceSet`] of devices sharing one cost model,
//!   typically a store-backed [`tango_serve::SimCostModel`] retargeted
//!   per accelerator. Clocks differ across pools, so the fleet's
//!   timeline is wall-normalized virtual *nanoseconds*
//!   ([`tango_serve::BatchCost::ns`]), not device cycles.
//! * **Routing** ([`Router`], [`RoutePolicy`]) — round-robin,
//!   least-queue, or cost-aware placement (predicted batch cost x queue
//!   depth), with priority classes ([`ClassSpec`]) whose latency SLOs
//!   gate admission: an SLO-infeasible request is shed explicitly
//!   ([`ShedReason::SloInfeasible`]), never silently dropped.
//! * **Autoscaling** ([`Autoscaler`], [`AutoscaleConfig`]) — periodic,
//!   hysteretic grow/shrink of each pool within its bounds, drain-aware
//!   (a shrunk device finishes its in-flight batch first), exercised by
//!   seeded diurnal and bursty traces ([`FleetTrace`]).
//! * **Reporting** ([`FleetReport`], [`render_comparison`]) — per-class
//!   latency percentiles, shed accounting by reason, per-pool
//!   utilization and energy per request, rendered byte-stably.
//!
//! Everything is deterministic: the engine is one serial event loop
//! over pre-generated traces, every tie breaks on an explicit total
//! order, and repeated runs are byte-identical across hosts and worker
//! counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The periodic autoscaler.
pub mod autoscale;
/// Fleet topology and policy configuration.
pub mod config;
/// Per-pool cost models.
pub mod cost;
/// The fleet event loop.
pub mod engine;
/// Windowed metrics and SLO burn-rate monitoring.
pub mod metrics;
/// Byte-stable result rendering.
pub mod report;
/// Request placement.
pub mod router;
/// Replayable synthetic load.
pub mod trace;

pub use autoscale::{Autoscaler, ScaleAction, ScaleView};
pub use config::{AutoscaleConfig, ClassSpec, FleetConfig, PoolSpec, RoutePolicy};
pub use cost::{FleetCost, TableFleetCost};
pub use engine::{run_fleet, run_fleet_metered, FleetOutcome, FleetRecord, FleetReport, PoolStats};
pub use metrics::{FleetMetrics, FleetMetricsConfig, FleetMetricsReport, SLO_TRACK};
pub use report::{render_comparison, render_policy};
pub use router::{Placement, PoolView, Router, ShedReason};
pub use trace::{FleetRequest, FleetTrace};
