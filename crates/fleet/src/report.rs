//! Byte-stable text rendering of fleet results.
//!
//! One section per routing policy over the *same* replayed trace, so
//! the numbers are directly comparable: per-class latency percentiles
//! (wall-normalized microseconds), shed accounting by reason, and
//! per-pool device counts, utilization, and energy. All floats print
//! with fixed precision and all iteration orders are total, so the same
//! inputs render to identical bytes on any host.

use crate::config::FleetConfig;
use crate::engine::FleetReport;
use crate::router::ShedReason;
use crate::trace::FleetTrace;
use std::fmt::Write as _;

fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders one policy's report section.
pub fn render_policy(out: &mut String, config: &FleetConfig, report: &FleetReport) {
    let _ = writeln!(out, "policy {}", config.policy.name());
    let _ = writeln!(
        out,
        "  requests {}  completed {}  shed {}  shed_rate {:.4}",
        report.records.len(),
        report.completed(),
        report.shed(),
        report.shed_rate()
    );
    let _ = write!(out, "  sheds:");
    for reason in ShedReason::ALL {
        let _ = write!(out, " {}={}", reason.name(), report.shed_by(reason));
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  makespan_us {}  energy_per_request_j {:.6}",
        us(report.makespan_ns),
        report.energy_per_request_j()
    );
    for (ci, class) in config.classes.iter().enumerate() {
        match report.class_latency(ci) {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "  class {:<12} n {:>6}  p50_us {:>12}  p95_us {:>12}  p99_us {:>12}  max_us {:>12}",
                    class.name,
                    s.count,
                    us(s.p50),
                    us(s.p95),
                    us(s.p99),
                    us(s.max)
                );
            }
            None => {
                let _ = writeln!(out, "  class {:<12} n      0  (no completions)", class.name);
            }
        }
    }
    for p in &report.pools {
        let _ = writeln!(
            out,
            "  pool {:<10} devices {}->{} (peak {})  batches {:>6}  completed {:>6}  util {:.4}  energy_j {:.6}  grows {} shrinks {}",
            p.name,
            // Starting size is in the config, index-aligned.
            config.pools.iter().find(|s| s.name == p.name).map_or(0, |s| s.devices),
            p.final_devices,
            p.peak_devices,
            p.batches,
            p.completed,
            p.utilization(),
            p.energy_j,
            p.grows,
            p.shrinks
        );
    }
}

/// Renders the full comparison: a header describing the shared trace
/// and one [`render_policy`] section per `(config, report)` pair (the
/// configs differ only in policy).
pub fn render_comparison(trace: &FleetTrace, runs: &[(&FleetConfig, &FleetReport)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# tango-fleet: routing policies over one replayed trace");
    let kinds: Vec<&str> = trace.kinds().iter().map(|k| k.name()).collect();
    let _ = writeln!(
        out,
        "trace: {} requests, kinds [{}], {} classes",
        trace.len(),
        kinds.join(", "),
        trace.classes()
    );
    if let Some((config, _)) = runs.first() {
        let pools: Vec<String> = config
            .pools
            .iter()
            .map(|p| format!("{}({})", p.name, p.devices))
            .collect();
        let _ = writeln!(
            out,
            "pools: [{}]  queue_bound {}  max_batch {}  max_delay_us {}",
            pools.join(", "),
            config.queue_bound,
            config.max_batch,
            us(config.max_delay_ns)
        );
        let _ = match &config.autoscale {
            Some(a) => writeln!(
                out,
                "autoscale: every {} us, grow > {}/dev, shrink < {}/dev",
                us(a.interval_ns),
                a.high_queue_per_device,
                a.low_queue_per_device
            ),
            None => writeln!(out, "autoscale: off"),
        };
    }
    for (config, report) in runs {
        let _ = writeln!(out);
        render_policy(&mut out, config, report);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClassSpec, PoolSpec, RoutePolicy};
    use crate::cost::TableFleetCost;
    use crate::engine::run_fleet;
    use tango_nets::NetworkKind;

    #[test]
    fn rendering_is_deterministic_and_complete() {
        let config = FleetConfig {
            pools: vec![PoolSpec::fixed("fast", 1), PoolSpec::fixed("slow", 1)],
            classes: vec![ClassSpec::with_slo("int", 10_000_000), ClassSpec::best_effort("be")],
            queue_bound: 32,
            max_batch: 4,
            max_delay_ns: 1000,
            policy: RoutePolicy::CostAware,
            autoscale: None,
        };
        let trace = FleetTrace::diurnal(
            &[NetworkKind::Gru],
            &config.classes,
            200,
            2000,
            500_000,
            0.3,
            5,
        );
        let fast = TableFleetCost::new(2.0);
        let slow = TableFleetCost::new(0.5);
        let report = run_fleet(&trace, &config, &[&fast, &slow]).unwrap();
        let a = render_comparison(&trace, &[(&config, &report)]);
        let b = render_comparison(&trace, &[(&config, &report)]);
        assert_eq!(a, b);
        for needle in ["policy cost_aware", "class int", "class be", "pool fast", "pool slow", "shed_rate", "energy_per_request_j"] {
            assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
        }
    }
}
