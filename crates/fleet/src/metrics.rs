//! Windowed fleet metrics and SLO burn-rate monitoring.
//!
//! [`FleetMetrics`] rides alongside the engine's event loop (see
//! [`run_fleet_metered`](crate::engine::run_fleet_metered)): the
//! engine calls the hooks at the same points it already does shed and
//! pool accounting, and the hooks fold everything into a
//! [`MetricsRegistry`] over the fleet's virtual-nanosecond clock plus
//! one [`SloMonitor`] per SLO-bearing class. Collection never touches
//! engine state, so a metered run returns a
//! [`FleetReport`](crate::engine::FleetReport) that is byte-identical
//! to the unmetered one (tested in the engine).
//!
//! The SLO objective is latency-based: a completed request is *good*
//! when its end-to-end latency met the class SLO; a shed request of an
//! SLO class is *bad* (shedding is the fleet protecting itself, but
//! the user still did not get an answer). Burn-rate alerts fire on the
//! Google SRE multi-window rule (both a short and a long trailing
//! window over threshold) and are surfaced three ways: typed obs
//! instants in the fleet domain, `ALERT` lines in the text report, and
//! alert counters in the exposition.

use crate::config::FleetConfig;
use crate::router::ShedReason;
use std::fmt::Write as _;
use tango_obs::metrics::{
    escape_label_value, BurnAlert, MetricsRegistry, SloMonitor, SloPolicy, SloReport,
};

/// Shape of the metrics collection for one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMetricsConfig {
    /// Metric window width in virtual nanoseconds.
    pub window_ns: u64,
    /// SLO target in ppm applied to every class that has a latency SLO
    /// (990_000 = 99% of requests meet it).
    pub slo_target_ppm: u32,
    /// Short burn-rate window, in metric windows.
    pub short_windows: u64,
    /// Long burn-rate window, in metric windows.
    pub long_windows: u64,
}

impl FleetMetricsConfig {
    /// The default policy shape over `window_ns`-wide windows: 99%
    /// target, short = 1 window, long = 8 windows, SRE-default
    /// thresholds (page at 14.4x, ticket at 6x).
    pub fn with_window(window_ns: u64) -> FleetMetricsConfig {
        FleetMetricsConfig {
            window_ns: window_ns.max(1),
            slo_target_ppm: 990_000,
            short_windows: 1,
            long_windows: 8,
        }
    }
}

/// Obs track for SLO burn alerts (band 0, next to the shed track).
pub const SLO_TRACK: u32 = 998;

/// Live metrics state threaded through one engine run.
#[derive(Debug)]
pub struct FleetMetrics {
    registry: MetricsRegistry,
    /// One monitor per class; `None` for best-effort classes.
    monitors: Vec<Option<SloMonitor>>,
    /// Precomputed per-class series names.
    requests_name: Vec<String>,
    latency_name: Vec<String>,
    /// Precomputed per-pool series names.
    batches_name: Vec<String>,
    busy_name: Vec<String>,
    energy_name: Vec<String>,
    devices_name: Vec<String>,
    pending_name: Vec<String>,
    class_names: Vec<String>,
}

impl FleetMetrics {
    /// Builds the collection state for `config`, seeding the per-pool
    /// device gauges with the starting pool sizes at t=0.
    pub fn new(config: &FleetConfig, mcfg: &FleetMetricsConfig) -> FleetMetrics {
        let mut registry = MetricsRegistry::new("ns", mcfg.window_ns);
        let class_label = |name: &str| escape_label_value(name);
        let monitors = config
            .classes
            .iter()
            .map(|c| {
                c.slo_ns.map(|_| {
                    SloMonitor::new(
                        SloPolicy::burn_defaults(
                            &c.name,
                            mcfg.slo_target_ppm,
                            mcfg.short_windows,
                            mcfg.long_windows,
                        ),
                        mcfg.window_ns,
                    )
                })
            })
            .collect();
        let requests_name = config
            .classes
            .iter()
            .map(|c| format!("tango_fleet_requests_total{{class=\"{}\"}}", class_label(&c.name)))
            .collect();
        let latency_name = config
            .classes
            .iter()
            .map(|c| format!("tango_fleet_latency_ns{{class=\"{}\"}}", class_label(&c.name)))
            .collect();
        let pool_series = |stem: &str| -> Vec<String> {
            config
                .pools
                .iter()
                .map(|p| format!("{stem}{{pool=\"{}\"}}", escape_label_value(&p.name)))
                .collect()
        };
        let devices_name = pool_series("tango_fleet_devices");
        for (i, p) in config.pools.iter().enumerate() {
            registry.gauge_set(&devices_name[i], 0, p.devices as i64);
        }
        FleetMetrics {
            registry,
            monitors,
            requests_name,
            latency_name,
            batches_name: pool_series("tango_fleet_batches_total"),
            busy_name: pool_series("tango_fleet_busy_ns_total"),
            energy_name: pool_series("tango_fleet_energy_uj_total"),
            devices_name,
            pending_name: pool_series("tango_fleet_queue_pending"),
            class_names: config.classes.iter().map(|c| c.name.clone()).collect(),
        }
    }

    /// One request of `class` arrived at `at_ns` (offered load).
    pub fn on_arrival(&mut self, at_ns: u64, class: usize) {
        self.registry.counter_add(&self.requests_name[class], at_ns, 1);
    }

    /// A request of `class` was shed at `now` for `reason`. Sheds of an
    /// SLO class consume error budget.
    pub fn on_shed(&mut self, now: u64, class: usize, reason: ShedReason) {
        let name = format!(
            "tango_fleet_shed_total{{class=\"{}\",reason=\"{}\"}}",
            escape_label_value(&self.class_names[class]),
            reason.name()
        );
        self.registry.counter_add(&name, now, 1);
        if let Some(m) = &mut self.monitors[class] {
            m.record(now, false);
        }
    }

    /// Pool `pool`'s queue depth changed to `pending` at `now`.
    pub fn on_pending(&mut self, now: u64, pool: usize, pending: usize) {
        self.registry.gauge_set(&self.pending_name[pool], now, pending as i64);
    }

    /// Pool `pool` dispatched a batch at `now`: `busy_ns` of device
    /// time, `energy_j` joules (accounted in integer microjoules).
    pub fn on_dispatch(&mut self, now: u64, pool: usize, busy_ns: u64, energy_j: f64) {
        self.registry.counter_add(&self.batches_name[pool], now, 1);
        self.registry.counter_add(&self.busy_name[pool], now, busy_ns);
        let uj = (energy_j * 1e6).round().max(0.0) as u64;
        self.registry.counter_add(&self.energy_name[pool], now, uj);
    }

    /// A request of `class` completed at `completed_ns` with
    /// `latency_ns` end-to-end; `slo_met` is `None` for best-effort
    /// classes.
    pub fn on_complete(&mut self, completed_ns: u64, class: usize, latency_ns: u64, slo_met: Option<bool>) {
        self.registry.observe(&self.latency_name[class], completed_ns, latency_ns);
        if let (Some(m), Some(good)) = (&mut self.monitors[class], slo_met) {
            m.record(completed_ns, good);
        }
    }

    /// The autoscaler set pool `pool`'s target to `devices` at `now`.
    pub fn on_scale(&mut self, now: u64, pool: usize, devices: usize) {
        self.registry.gauge_set(&self.devices_name[pool], now, devices as i64);
    }

    /// Evaluates the SLO monitors, folds the burn trails and alert
    /// counts into the registry, and returns the finished report.
    pub fn finish(mut self) -> FleetMetricsReport {
        let mut slos = Vec::new();
        for monitor in self.monitors.iter().flatten() {
            let report = monitor.finish();
            let class = escape_label_value(&report.policy.objective);
            let window = self.registry.window_width();
            for w in &report.windows {
                let ts = w.window * window;
                self.registry.gauge_set(
                    &format!("tango_fleet_slo_burn_milli{{class=\"{class}\",range=\"short\"}}"),
                    ts,
                    w.short_burn_milli.min(i64::MAX as u64) as i64,
                );
                self.registry.gauge_set(
                    &format!("tango_fleet_slo_burn_milli{{class=\"{class}\",range=\"long\"}}"),
                    ts,
                    w.long_burn_milli.min(i64::MAX as u64) as i64,
                );
            }
            for a in &report.alerts {
                self.registry.counter_add(
                    &format!(
                        "tango_fleet_slo_alerts_total{{class=\"{class}\",severity=\"{}\"}}",
                        a.severity.label()
                    ),
                    a.at.saturating_sub(1),
                    1,
                );
            }
            slos.push(report);
        }
        FleetMetricsReport {
            registry: self.registry,
            slos,
        }
    }
}

/// The finished metrics for one fleet run: the windowed registry plus
/// one evaluated [`SloReport`] per SLO-bearing class.
#[derive(Debug)]
pub struct FleetMetricsReport {
    /// Windowed counter/gauge/histogram series.
    pub registry: MetricsRegistry,
    /// Burn-rate evaluations, in class order.
    pub slos: Vec<SloReport>,
}

impl FleetMetricsReport {
    /// Every burn alert across all classes, in class order.
    pub fn alerts(&self) -> Vec<&BurnAlert> {
        self.slos.iter().flat_map(|s| s.alerts.iter()).collect()
    }

    /// Renders the byte-stable text artifact: SLO blocks first (the
    /// part a human reads), then the full windowed registry.
    pub fn render_text(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# tango-metrics: slo burn-rate evaluation: {title}");
        if self.slos.is_empty() {
            let _ = writeln!(out, "(no SLO-bearing classes)");
        }
        for slo in &self.slos {
            out.push_str(&slo.render());
        }
        out.push('\n');
        out.push_str(&self.registry.render_text(title));
        out
    }

    /// Renders the JSONL snapshot series: registry lines plus one
    /// alert line per burn alert.
    pub fn snapshot_jsonl(&self, tag: &str) -> String {
        let mut out = self.registry.snapshot_jsonl(tag);
        for slo in &self.slos {
            for a in &slo.alerts {
                let _ = writeln!(
                    out,
                    "{{\"series\":\"{}\",\"alert\":\"{}_burn\",\"class\":\"{}\",\"window\":{},\"at\":{},\"short_burn_milli\":{},\"long_burn_milli\":{}}}",
                    escape_label_value(tag),
                    a.severity.label(),
                    escape_label_value(&a.objective),
                    a.window,
                    a.at,
                    a.short_burn_milli,
                    a.long_burn_milli,
                );
            }
        }
        out
    }

    /// Prometheus text-format exposition of the run totals.
    pub fn prometheus_text(&self) -> String {
        self.registry.prometheus_text()
    }
}

/// Emits each alert as a typed instant in the fleet obs domain on
/// [`SLO_TRACK`] (next to the shed track), named
/// `<severity>_burn:<class>`, stamped at the end of its window.
pub fn emit_alert_instants(report: &FleetMetricsReport) {
    if !tango_obs::is_enabled() {
        return;
    }
    for a in report.alerts() {
        let name = format!("{}_burn:{}", a.severity.label(), a.objective);
        tango_obs::fleet_instant_at(a.at, SLO_TRACK, "fleet.slo", &name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClassSpec, FleetConfig, PoolSpec, RoutePolicy};

    fn config() -> FleetConfig {
        FleetConfig {
            pools: vec![PoolSpec::fixed("gp102", 2), PoolSpec::fixed("tx1", 1)],
            classes: vec![ClassSpec::with_slo("interactive", 1_000_000), ClassSpec::best_effort("batch")],
            queue_bound: 64,
            max_batch: 4,
            max_delay_ns: 1000,
            policy: RoutePolicy::CostAware,
            autoscale: None,
        }
    }

    #[test]
    fn hooks_fold_into_labeled_series() {
        let mut m = FleetMetrics::new(&config(), &FleetMetricsConfig::with_window(1000));
        m.on_arrival(10, 0);
        m.on_arrival(20, 1);
        m.on_shed(30, 0, ShedReason::SloInfeasible);
        m.on_pending(40, 1, 3);
        m.on_dispatch(50, 0, 700, 0.001234);
        m.on_complete(750, 0, 740, Some(true));
        m.on_scale(800, 0, 3);
        let report = m.finish();
        let r = &report.registry;
        assert_eq!(r.counter_total("tango_fleet_requests_total{class=\"interactive\"}"), Some(1));
        assert_eq!(r.counter_total("tango_fleet_requests_total{class=\"batch\"}"), Some(1));
        assert_eq!(
            r.counter_total("tango_fleet_shed_total{class=\"interactive\",reason=\"slo_infeasible\"}"),
            Some(1)
        );
        assert_eq!(r.gauge_last("tango_fleet_queue_pending{pool=\"tx1\"}"), Some(3));
        assert_eq!(r.counter_total("tango_fleet_busy_ns_total{pool=\"gp102\"}"), Some(700));
        // 0.001234 J = 1234 µJ, exactly.
        assert_eq!(r.counter_total("tango_fleet_energy_uj_total{pool=\"gp102\"}"), Some(1234));
        assert_eq!(r.gauge_last("tango_fleet_devices{pool=\"gp102\"}"), Some(3));
        let h = r.histogram_total("tango_fleet_latency_ns{class=\"interactive\"}").unwrap();
        assert_eq!(h.count(), 1);
        // One SLO class only; the shed is bad, the completion good.
        assert_eq!(report.slos.len(), 1);
        assert_eq!(report.slos[0].good, 1);
        assert_eq!(report.slos[0].bad, 1);
        tango_obs::metrics::validate_exposition(&report.prometheus_text()).unwrap();
    }

    #[test]
    fn sustained_slo_misses_fire_alerts_into_every_exporter() {
        let mut m = FleetMetrics::new(&config(), &FleetMetricsConfig::with_window(1000));
        // 4 healthy windows, then 8 windows where half of the
        // interactive completions miss their SLO (burn 50x on 1%).
        for w in 0..12u64 {
            for i in 0..20u64 {
                let ts = w * 1000 + i * 40;
                let good = w < 4 || i % 2 == 0;
                m.on_complete(ts, 0, if good { 500 } else { 2_000_000 }, Some(good));
            }
        }
        let report = m.finish();
        assert!(!report.alerts().is_empty(), "sustained burn must alert");
        let text = report.render_text("test");
        assert!(text.contains("ALERT"), "{text}");
        assert!(text.contains("slo interactive"), "{text}");
        let jsonl = report.snapshot_jsonl("fleet/test");
        assert!(jsonl.contains("\"alert\":"), "{jsonl}");
        for line in jsonl.lines() {
            tango_obs::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let prom = report.prometheus_text();
        assert!(prom.contains("tango_fleet_slo_alerts_total"), "{prom}");
        tango_obs::metrics::validate_exposition(&prom).unwrap();
    }
}
