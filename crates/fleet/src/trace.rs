//! Replayable synthetic load for fleet experiments.
//!
//! Traces are open-loop and fully determined by their seed, so the same
//! load can be replayed against every routing policy — the only honest
//! way to compare policies. Two shapes matter for autoscaling studies:
//!
//! * **diurnal** — a sinusoidally modulated Poisson process (one "day"
//!   compressed into the trace span): slow nights, busy middays. The
//!   autoscaler should track the wave.
//! * **bursty** — a steady Poisson baseline with superimposed
//!   short high-rate bursts: the shape that punishes slow scale-up with
//!   sheds.

use crate::config::ClassSpec;
use tango_nets::NetworkKind;
use tango_tensor::SplitMix64;

/// One fleet request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRequest {
    /// Arrival time in virtual nanoseconds.
    pub at_ns: u64,
    /// Which network it asks for.
    pub kind: NetworkKind,
    /// Priority class index into [`FleetConfig::classes`].
    ///
    /// [`FleetConfig::classes`]: crate::config::FleetConfig::classes
    pub class: usize,
}

/// A pre-generated, time-sorted request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTrace {
    kinds: Vec<NetworkKind>,
    classes: usize,
    requests: Vec<FleetRequest>,
}

/// Thinning-based non-homogeneous Poisson sampler: candidate arrivals
/// at the peak rate, each kept with probability `rate(t) / peak`.
fn thinned_arrivals(
    rng: &mut SplitMix64,
    count: usize,
    peak_gap_ns: u64,
    accept: impl Fn(u64, f64) -> bool,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut t = 0u64;
    while out.len() < count {
        let u = f64::from(rng.next_f32()).clamp(1e-9, 1.0 - 1e-9);
        let gap = (-u.ln() * peak_gap_ns as f64).ceil().max(1.0) as u64;
        t += gap;
        let keep = f64::from(rng.next_f32());
        if accept(t, keep) {
            out.push(t);
        }
    }
    out
}

impl FleetTrace {
    /// A diurnal load: Poisson arrivals whose rate swings sinusoidally
    /// between `1/peak_gap_ns` (midday) and `trough_fraction` of it
    /// (midnight), with period `period_ns`. `count` requests drawn over
    /// `kinds` and `classes` uniformly. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics on empty `kinds`/`classes`, zero `peak_gap_ns` or
    /// `period_ns`, or `trough_fraction` outside `[0, 1]`.
    pub fn diurnal(
        kinds: &[NetworkKind],
        classes: &[ClassSpec],
        count: usize,
        peak_gap_ns: u64,
        period_ns: u64,
        trough_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(!kinds.is_empty(), "trace needs at least one network kind");
        assert!(!classes.is_empty(), "trace needs at least one class");
        assert!(peak_gap_ns > 0 && period_ns > 0, "gaps and period must be positive");
        assert!((0.0..=1.0).contains(&trough_fraction), "trough fraction must be in [0, 1]");
        let mut rng = SplitMix64::new(seed);
        let times = thinned_arrivals(&mut rng, count, peak_gap_ns, |t, keep| {
            // rate(t)/peak = trough + (1-trough) * (1 + sin(2*pi*t/T)) / 2
            let phase = (t % period_ns) as f64 / period_ns as f64 * std::f64::consts::TAU;
            let level = trough_fraction + (1.0 - trough_fraction) * (1.0 + phase.sin()) / 2.0;
            keep < level
        });
        Self::assemble(kinds, classes.len(), times, &mut rng)
    }

    /// A bursty load: a Poisson baseline at `1/base_gap_ns`, except
    /// inside recurring bursts (`burst_every_ns` apart, `burst_len_ns`
    /// long) where the rate multiplies by `burst_factor`. Deterministic
    /// in `seed`.
    ///
    /// # Panics
    ///
    /// Panics on empty `kinds`/`classes` or zero gaps/periods/factor.
    #[allow(clippy::too_many_arguments)]
    pub fn bursty(
        kinds: &[NetworkKind],
        classes: &[ClassSpec],
        count: usize,
        base_gap_ns: u64,
        burst_every_ns: u64,
        burst_len_ns: u64,
        burst_factor: u64,
        seed: u64,
    ) -> Self {
        assert!(!kinds.is_empty(), "trace needs at least one network kind");
        assert!(!classes.is_empty(), "trace needs at least one class");
        assert!(base_gap_ns > 0 && burst_every_ns > 0 && burst_len_ns > 0, "gaps must be positive");
        assert!(burst_factor >= 1, "burst factor must be at least 1");
        assert!(burst_len_ns < burst_every_ns, "bursts must be shorter than their period");
        let mut rng = SplitMix64::new(seed);
        // Peak rate is the burst rate; baseline keeps 1/burst_factor.
        let peak_gap = (base_gap_ns / burst_factor).max(1);
        let baseline_keep = peak_gap as f64 / base_gap_ns as f64;
        let times = thinned_arrivals(&mut rng, count, peak_gap, |t, keep| {
            let in_burst = t % burst_every_ns < burst_len_ns;
            in_burst || keep < baseline_keep
        });
        Self::assemble(kinds, classes.len(), times, &mut rng)
    }

    fn assemble(kinds: &[NetworkKind], classes: usize, times: Vec<u64>, rng: &mut SplitMix64) -> Self {
        let requests = times
            .into_iter()
            .map(|at_ns| FleetRequest {
                at_ns,
                kind: kinds[rng.below(kinds.len() as u64) as usize],
                class: rng.below(classes as u64) as usize,
            })
            .collect();
        FleetTrace {
            kinds: kinds.to_vec(),
            classes,
            requests,
        }
    }

    /// A hand-written trace (for tests). Requests must be time-sorted
    /// and class indices within `classes`.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is unsorted or a class index is out of range.
    pub fn from_requests(kinds: &[NetworkKind], classes: usize, requests: Vec<FleetRequest>) -> Self {
        assert!(
            requests.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "requests must be sorted by time"
        );
        assert!(requests.iter().all(|r| r.class < classes), "class index out of range");
        FleetTrace {
            kinds: kinds.to_vec(),
            classes,
            requests,
        }
    }

    /// The distinct network kinds this trace draws from.
    pub fn kinds(&self) -> &[NetworkKind] {
        &self.kinds
    }

    /// Number of priority classes the trace was drawn over.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The requests, time-sorted.
    pub fn requests(&self) -> &[FleetRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [NetworkKind; 2] = [NetworkKind::Gru, NetworkKind::CifarNet];

    fn classes() -> Vec<ClassSpec> {
        vec![ClassSpec::with_slo("interactive", 1_000_000), ClassSpec::best_effort("batch")]
    }

    #[test]
    fn diurnal_traces_are_deterministic_and_sorted() {
        let a = FleetTrace::diurnal(&KINDS, &classes(), 500, 1000, 1_000_000, 0.2, 42);
        let b = FleetTrace::diurnal(&KINDS, &classes(), 500, 1000, 1_000_000, 0.2, 42);
        assert_eq!(a, b);
        let c = FleetTrace::diurnal(&KINDS, &classes(), 500, 1000, 1_000_000, 0.2, 43);
        assert_ne!(a, c);
        assert!(a.requests().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(a.len(), 500);
        assert!(a.requests().iter().all(|r| r.class < 2));
    }

    #[test]
    fn diurnal_rate_actually_swings() {
        // Count arrivals in the peak half-period vs the trough
        // half-period of each cycle; peaks must dominate.
        let t = FleetTrace::diurnal(&[NetworkKind::Gru], &classes(), 4000, 1000, 1_000_000, 0.1, 7);
        let (mut peak, mut trough) = (0u64, 0u64);
        for r in t.requests() {
            // sin > 0 on the first half-period.
            if r.at_ns % 1_000_000 < 500_000 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > trough * 2,
            "diurnal peak ({peak}) must far exceed trough ({trough})"
        );
    }

    #[test]
    fn bursty_traces_concentrate_in_bursts() {
        let t = FleetTrace::bursty(&[NetworkKind::Gru], &classes(), 4000, 2000, 1_000_000, 100_000, 10, 11);
        let in_burst = t.requests().iter().filter(|r| r.at_ns % 1_000_000 < 100_000).count();
        let frac = in_burst as f64 / t.len() as f64;
        // Bursts cover 10% of time at 10x rate: > half of all traffic.
        assert!(frac > 0.5, "burst fraction {frac} too low");
        let again = FleetTrace::bursty(&[NetworkKind::Gru], &classes(), 4000, 2000, 1_000_000, 100_000, 10, 11);
        assert_eq!(t, again);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_manual_traces_are_rejected() {
        let r = |at_ns| FleetRequest {
            at_ns,
            kind: NetworkKind::Gru,
            class: 0,
        };
        FleetTrace::from_requests(&[NetworkKind::Gru], 1, vec![r(10), r(5)]);
    }
}
