//! Per-pool cost models.
//!
//! The fleet schedules across devices with *different clocks*, so
//! everything it asks a pool is denominated in the wall-normalized
//! [`BatchCost`] — cycles on the device clock, nanoseconds of wall
//! time, joules. [`tango_serve::SimCostModel`] (store-backed, simulator-
//! or backend-measured) implements the trait directly; [`TableFleetCost`]
//! is the affine in-memory stand-in for unit tests and engine-only
//! throughput benches.

use tango_nets::NetworkKind;
use tango_serve::{BatchCost, Result, SimCostModel};

/// What a pool's devices cost to run one batch. Implementations must be
/// deterministic: the same `(kind, batch)` always returns the same cost.
pub trait FleetCost {
    /// Full cost of dispatching `batch` coalesced requests of `kind` to
    /// one device of this pool.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (table models never fail).
    fn batch_cost(&self, kind: NetworkKind, batch: u32) -> Result<BatchCost>;
}

impl FleetCost for SimCostModel {
    fn batch_cost(&self, kind: NetworkKind, batch: u32) -> Result<BatchCost> {
        SimCostModel::batch_cost(self, kind, batch)
    }
}

/// An affine table cost on a fixed device clock: `base + per_request *
/// batch` cycles at `clock_ghz`, with `energy_per_cycle_j` joules per
/// cycle. One entry per kind, with a default curve for unlisted kinds.
#[derive(Debug, Clone)]
pub struct TableFleetCost {
    entries: std::collections::BTreeMap<&'static str, (u64, u64)>,
    clock_ghz: f64,
    energy_per_cycle_j: f64,
}

impl TableFleetCost {
    /// An empty table on a `clock_ghz` device.
    pub fn new(clock_ghz: f64) -> Self {
        assert!(clock_ghz > 0.0, "device clock must be positive");
        TableFleetCost {
            entries: std::collections::BTreeMap::new(),
            clock_ghz,
            energy_per_cycle_j: 1e-9,
        }
    }

    /// Sets `kind`'s cost to `base + per_request * batch` cycles.
    pub fn with_kind(mut self, kind: NetworkKind, base: u64, per_request: u64) -> Self {
        self.entries.insert(kind.name(), (base, per_request));
        self
    }

    /// Sets the energy drawn per device cycle, in joules.
    pub fn with_energy_per_cycle(mut self, joules: f64) -> Self {
        self.energy_per_cycle_j = joules;
        self
    }
}

impl FleetCost for TableFleetCost {
    fn batch_cost(&self, kind: NetworkKind, batch: u32) -> Result<BatchCost> {
        let (base, per_request) = self.entries.get(kind.name()).copied().unwrap_or((1000, 100));
        let cycles = base + per_request * u64::from(batch);
        Ok(BatchCost::from_cycles(
            cycles,
            self.clock_ghz,
            cycles as f64 * self.energy_per_cycle_j,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_cost_normalizes_by_clock() {
        let fast = TableFleetCost::new(2.0).with_kind(NetworkKind::Gru, 1000, 0);
        let slow = TableFleetCost::new(0.5).with_kind(NetworkKind::Gru, 1000, 0);
        let f = fast.batch_cost(NetworkKind::Gru, 1).unwrap();
        let s = slow.batch_cost(NetworkKind::Gru, 1).unwrap();
        assert_eq!(f.cycles, s.cycles, "same cycle count");
        assert_eq!(f.ns, 500);
        assert_eq!(s.ns, 2000, "the slow clock stretches wall time 4x");
        assert!(f.energy_j > 0.0);
    }
}
