//! Placement: which pool gets an arriving request.
//!
//! The router sees a per-pool [`PoolView`] snapshot (pending work, idle
//! devices, this kind's single-request service time on that pool's
//! clock) and either places the request or sheds it with an explicit
//! [`ShedReason`] — admission never drops silently. Pools whose target
//! size is zero (scaled away) receive nothing; pools at their queue
//! bound receive nothing; and a class with a latency SLO is shed at
//! admission when even the best pool's *predicted* latency exceeds it,
//! instead of being admitted into a queue it cannot leave in time.
//!
//! All choices are total orders — score ties break on the lowest pool
//! index, so placement is byte-deterministic.

use crate::config::RoutePolicy;

/// Why admission rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Every live pool's queue is at the configured bound.
    QueueFull,
    /// The class's latency SLO cannot be met even on the best pool.
    SloInfeasible,
    /// No pool has any devices (all scaled to zero).
    NoCapacity,
}

impl ShedReason {
    /// Stable short name for reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::SloInfeasible => "slo_infeasible",
            ShedReason::NoCapacity => "no_capacity",
        }
    }

    /// Every reason, in report order.
    pub const ALL: [ShedReason; 3] = [ShedReason::QueueFull, ShedReason::SloInfeasible, ShedReason::NoCapacity];
}

/// Where a request went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Admitted into this pool's queue.
    Pool(usize),
    /// Shed, with the reason.
    Shed(ShedReason),
}

/// One pool as the router sees it at an arrival instant.
#[derive(Debug, Clone, Copy)]
pub struct PoolView {
    /// Requests queued in the pool (all kinds and classes).
    pub pending: usize,
    /// Idle devices right now.
    pub idle: usize,
    /// Devices the pool will hold once retiring ones drain; 0 means the
    /// pool is scaled away and must receive nothing.
    pub target: usize,
    /// Nanoseconds until a device frees up (0 when one is idle).
    pub next_free_delay_ns: u64,
    /// This pool's single-request service time for the arriving kind,
    /// in wall-normalized nanoseconds.
    pub service_ns: u64,
}

impl PoolView {
    /// Conservative predicted end-to-end latency for one more request:
    /// wait for a device, then every queued request ahead of it costed
    /// at single-request service time, then its own service.
    /// (Batching can only do better; admission errs safe.)
    pub fn predicted_latency_ns(&self) -> u128 {
        u128::from(self.next_free_delay_ns) + (self.pending as u128 + 1) * u128::from(self.service_ns)
    }
}

/// The placement engine. Owns only the round-robin cursor; everything
/// else is a pure function of the views.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutePolicy,
    rr_cursor: usize,
}

impl Router {
    /// A router applying `policy`.
    pub fn new(policy: RoutePolicy) -> Self {
        Router { policy, rr_cursor: 0 }
    }

    /// Places one request given per-pool `views` (index-aligned with
    /// the fleet's pools), the per-pool `queue_bound`, and the class's
    /// SLO (`None` = best-effort).
    pub fn place(&mut self, views: &[PoolView], queue_bound: usize, slo_ns: Option<u64>) -> Placement {
        if !views.iter().any(|v| v.target > 0) {
            return Placement::Shed(ShedReason::NoCapacity);
        }
        // Eligible = live and below the queue bound. Shedding only when
        // *no* pool can take the request keeps shed accounting exact:
        // under total saturation, every admission decision is QueueFull.
        let eligible = |v: &PoolView| v.target > 0 && v.pending < queue_bound;
        if !views.iter().any(eligible) {
            return Placement::Shed(ShedReason::QueueFull);
        }
        let chosen = match self.policy {
            RoutePolicy::RoundRobin => {
                let n = views.len();
                let pick = (0..n)
                    .map(|i| (self.rr_cursor + i) % n)
                    .find(|&i| eligible(&views[i]))
                    .expect("an eligible pool exists");
                self.rr_cursor = (pick + 1) % n;
                pick
            }
            RoutePolicy::LeastQueue => {
                views
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| eligible(v))
                    .min_by_key(|&(i, v)| (v.pending, i))
                    .expect("an eligible pool exists")
                    .0
            }
            RoutePolicy::CostAware => {
                views
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| eligible(v))
                    .min_by_key(|&(i, v)| (v.predicted_latency_ns(), i))
                    .expect("an eligible pool exists")
                    .0
            }
        };
        if let Some(slo) = slo_ns {
            // The SLO gate always judges the *best* pool by predicted
            // latency, so a load-blind policy (round-robin) sheds no
            // more than a cost-aware one would — the gate is about
            // feasibility, not placement quality.
            let best = views
                .iter()
                .filter(|v| eligible(v))
                .map(|v| v.predicted_latency_ns())
                .min()
                .expect("an eligible pool exists");
            if best > u128::from(slo) {
                return Placement::Shed(ShedReason::SloInfeasible);
            }
        }
        Placement::Pool(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(pending: usize, idle: usize, target: usize, next_free: u64, svc: u64) -> PoolView {
        PoolView {
            pending,
            idle,
            target,
            next_free_delay_ns: next_free,
            service_ns: svc,
        }
    }

    #[test]
    fn cost_aware_prefers_the_faster_pool_and_breaks_ties_low() {
        let mut r = Router::new(RoutePolicy::CostAware);
        // Pool 1 is idle and fast; pool 0 idle but slow.
        let p = r.place(&[view(0, 1, 1, 0, 1000), view(0, 1, 1, 0, 100)], 8, None);
        assert_eq!(p, Placement::Pool(1));
        // Exact score tie: lowest index wins, repeatedly.
        for _ in 0..3 {
            let p = r.place(&[view(0, 1, 1, 0, 500), view(0, 1, 1, 0, 500)], 8, None);
            assert_eq!(p, Placement::Pool(0), "ties must break to the lowest index");
        }
    }

    #[test]
    fn cost_aware_weighs_queue_depth_against_speed() {
        let mut r = Router::new(RoutePolicy::CostAware);
        // Fast pool drowning in work (10+1)*100 = 1100 vs slow idle 500.
        let p = r.place(&[view(10, 0, 1, 0, 100), view(0, 1, 1, 0, 500)], 64, None);
        assert_eq!(p, Placement::Pool(1));
    }

    #[test]
    fn round_robin_cycles_and_skips_dead_pools() {
        let mut r = Router::new(RoutePolicy::RoundRobin);
        let views = [view(0, 1, 1, 0, 100), view(0, 0, 0, 0, 100), view(0, 1, 1, 0, 100)];
        let picks: Vec<_> = (0..4).map(|_| r.place(&views, 8, None)).collect();
        assert_eq!(
            picks,
            vec![Placement::Pool(0), Placement::Pool(2), Placement::Pool(0), Placement::Pool(2)],
            "dead pool 1 must be skipped, cycle must continue"
        );
    }

    #[test]
    fn saturation_and_death_shed_with_distinct_reasons() {
        let mut r = Router::new(RoutePolicy::LeastQueue);
        let full = r.place(&[view(8, 0, 1, 50, 100), view(8, 0, 2, 50, 100)], 8, None);
        assert_eq!(full, Placement::Shed(ShedReason::QueueFull));
        let dead = r.place(&[view(0, 0, 0, 0, 100), view(0, 0, 0, 0, 100)], 8, None);
        assert_eq!(dead, Placement::Shed(ShedReason::NoCapacity));
    }

    #[test]
    fn slo_gate_sheds_infeasible_admissions() {
        let mut r = Router::new(RoutePolicy::CostAware);
        // Best pool predicts (4+1)*200 = 1000 ns.
        let views = [view(4, 0, 1, 0, 200), view(9, 0, 1, 0, 200)];
        assert_eq!(r.place(&views, 64, Some(999)), Placement::Shed(ShedReason::SloInfeasible));
        assert_eq!(r.place(&views, 64, Some(1000)), Placement::Pool(0));
        assert_eq!(r.place(&views, 64, None), Placement::Pool(0), "best-effort never SLO-sheds");
    }
}
