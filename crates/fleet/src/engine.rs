//! The fleet engine: one virtual-nanosecond event loop over many
//! heterogeneous pools.
//!
//! This is the serve engine's discrete-event core lifted one level up:
//! instead of one pool of identical devices on one cycle clock, the
//! fleet holds several [`DeviceSet`]s with *different* clocks, so the
//! timeline is wall-normalized nanoseconds ([`BatchCost::ns`]). Event
//! ordering at a single instant is fixed by construction — completions
//! (pool order), autoscaler evaluation, arrivals (trace order), then
//! dispatches (pool order) — and every tie inside a step breaks on the
//! lowest index, so a replay is byte-identical across runs, hosts, and
//! worker counts (cost-model *precomputation* is the only parallel
//! stage, exactly as in serve).

use crate::autoscale::{Autoscaler, ScaleAction, ScaleView};
use crate::config::FleetConfig;
use crate::cost::FleetCost;
use crate::metrics::{emit_alert_instants, FleetMetrics, FleetMetricsConfig, FleetMetricsReport};
use crate::router::{Placement, PoolView, Router, ShedReason};
use crate::trace::FleetTrace;
use std::collections::{BTreeMap, VecDeque};
use tango_nets::NetworkKind;
use tango_serve::{BatchCost, DeviceSet, LatencySummary, Result, ServeError};

/// What happened to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetOutcome {
    /// Admitted, routed, batched, executed.
    Completed {
        /// Pool that ran it.
        pool: usize,
        /// Device within the pool.
        device: usize,
        /// Nanosecond its batch left the queue.
        dispatched_ns: u64,
        /// Nanosecond its batch completed.
        completed_ns: u64,
        /// Requests in its batch.
        batch: u32,
    },
    /// Rejected at admission.
    Shed {
        /// Why.
        reason: ShedReason,
    },
}

/// Full accounting for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRecord {
    /// The network requested.
    pub kind: NetworkKind,
    /// Priority class index.
    pub class: usize,
    /// Arrival nanosecond (from the trace).
    pub arrival_ns: u64,
    /// Outcome.
    pub outcome: FleetOutcome,
}

impl FleetRecord {
    /// End-to-end latency in nanoseconds, or `None` when shed.
    pub fn latency_ns(&self) -> Option<u64> {
        match self.outcome {
            FleetOutcome::Completed { completed_ns, .. } => Some(completed_ns - self.arrival_ns),
            FleetOutcome::Shed { .. } => None,
        }
    }
}

/// Per-pool accounting over a whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStats {
    /// Pool name (from the spec).
    pub name: String,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests completed on this pool.
    pub completed: u64,
    /// Device-nanoseconds spent executing batches.
    pub busy_ns: u128,
    /// Device-nanoseconds of existence (integral of active devices over
    /// time) — the utilization denominator.
    pub device_ns: u128,
    /// Joules consumed by dispatched batches.
    pub energy_j: f64,
    /// Devices at trace end (post-drain target).
    pub final_devices: usize,
    /// Largest target the autoscaler ever set.
    pub peak_devices: usize,
    /// Autoscaler grow events applied.
    pub grows: u64,
    /// Autoscaler shrink events applied.
    pub shrinks: u64,
}

impl PoolStats {
    /// Fraction of device-time spent executing (0 when the pool never
    /// existed).
    pub fn utilization(&self) -> f64 {
        if self.device_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.device_ns as f64
    }
}

/// The result of replaying a fleet trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-request accounting, in trace order.
    pub records: Vec<FleetRecord>,
    /// Per-pool accounting, in pool order.
    pub pools: Vec<PoolStats>,
    /// Nanosecond the last batch completed (0 for an empty trace).
    pub makespan_ns: u64,
}

impl FleetReport {
    /// Requests that completed.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.latency_ns().is_some()).count()
    }

    /// Requests shed at admission.
    pub fn shed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Requests shed for `reason`.
    pub fn shed_by(&self, reason: ShedReason) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, FleetOutcome::Shed { reason: rr } if rr == reason))
            .count()
    }

    /// Shed fraction of all requests (0 for an empty trace).
    pub fn shed_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.shed() as f64 / self.records.len() as f64
    }

    /// Latency summary over completed requests of `class` (`None` if
    /// none completed).
    pub fn class_latency(&self, class: usize) -> Option<LatencySummary> {
        let lat: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.class == class)
            .filter_map(|r| r.latency_ns())
            .collect();
        LatencySummary::from_latencies(&lat)
    }

    /// Total joules across pools.
    pub fn total_energy_j(&self) -> f64 {
        self.pools.iter().map(|p| p.energy_j).sum()
    }

    /// Joules per completed request (0 if none completed).
    pub fn energy_per_request_j(&self) -> f64 {
        let done = self.completed();
        if done == 0 {
            return 0.0;
        }
        self.total_energy_j() / done as f64
    }
}

struct Queued {
    record_idx: usize,
    at_ns: u64,
}

/// One pool's live scheduling state.
struct PoolState {
    devices: DeviceSet,
    /// Queues indexed `class * kinds + kind`.
    queues: Vec<VecDeque<Queued>>,
    pending: usize,
    min_devices: usize,
    max_devices: usize,
    stats: PoolStats,
}

/// Obs track layout: each pool owns a 1000-track band in the fleet
/// domain; devices sit at the base, queue/pool counters high in it.
fn pool_track_base(pool: usize) -> u32 {
    (pool as u32 + 1) * 1000
}
const PENDING_TRACK: u32 = 990;
const DEVICES_TRACK: u32 = 991;
/// Fleet-wide admission events (sheds) live on track 999 of band 0.
const SHED_TRACK: u32 = 999;

/// Replays `trace` across `config.pools`, costing pool `i`'s batches
/// with `costs[i]`. Serial and fully deterministic.
///
/// # Errors
///
/// Returns [`ServeError::Config`] for an invalid `config` or a
/// `costs`/pools length mismatch, and propagates cost-model
/// (simulation) failures.
pub fn run_fleet(trace: &FleetTrace, config: &FleetConfig, costs: &[&dyn FleetCost]) -> Result<FleetReport> {
    run_fleet_inner(trace, config, costs, None)
}

/// [`run_fleet`] with metrics collection: the same replay (the
/// returned [`FleetReport`] is byte-identical to the unmetered one),
/// plus a windowed [`FleetMetricsReport`] with per-class SLO burn-rate
/// evaluation shaped by `mcfg`. Burn alerts are also emitted as typed
/// obs instants on [`crate::metrics::SLO_TRACK`] when the recorder is
/// enabled.
///
/// # Errors
///
/// Exactly as [`run_fleet`].
pub fn run_fleet_metered(
    trace: &FleetTrace,
    config: &FleetConfig,
    costs: &[&dyn FleetCost],
    mcfg: &FleetMetricsConfig,
) -> Result<(FleetReport, FleetMetricsReport)> {
    config.validate()?;
    let mut metrics = FleetMetrics::new(config, mcfg);
    let report = run_fleet_inner(trace, config, costs, Some(&mut metrics))?;
    let metrics = metrics.finish();
    emit_alert_instants(&metrics);
    Ok((report, metrics))
}

fn run_fleet_inner(
    trace: &FleetTrace,
    config: &FleetConfig,
    costs: &[&dyn FleetCost],
    mut metrics: Option<&mut FleetMetrics>,
) -> Result<FleetReport> {
    config.validate()?;
    if costs.len() != config.pools.len() {
        return Err(ServeError::Config(format!(
            "{} cost models for {} pools",
            costs.len(),
            config.pools.len()
        )));
    }
    if trace.classes() > config.classes.len() {
        return Err(ServeError::Config(format!(
            "trace drawn over {} classes but the fleet defines {}",
            trace.classes(),
            config.classes.len()
        )));
    }
    let kinds = trace.kinds();
    let nk = kinds.len();
    let kind_index = |kind: NetworkKind| -> usize {
        kinds
            .iter()
            .position(|&k| k == kind)
            .expect("trace request kind not in trace.kinds()")
    };

    let requests = trace.requests();
    let mut records: Vec<FleetRecord> = requests
        .iter()
        .map(|r| FleetRecord {
            kind: r.kind,
            class: r.class,
            arrival_ns: r.at_ns,
            outcome: FleetOutcome::Shed {
                reason: ShedReason::NoCapacity, // placeholder, always overwritten
            },
        })
        .collect();

    let mut pools: Vec<PoolState> = config
        .pools
        .iter()
        .map(|spec| PoolState {
            devices: DeviceSet::new(spec.devices),
            queues: (0..config.classes.len() * nk).map(|_| VecDeque::new()).collect(),
            pending: 0,
            min_devices: spec.min_devices,
            max_devices: spec.max_devices,
            stats: PoolStats {
                name: spec.name.clone(),
                batches: 0,
                completed: 0,
                busy_ns: 0,
                device_ns: 0,
                energy_j: 0.0,
                final_devices: spec.devices,
                peak_devices: spec.devices,
                grows: 0,
                shrinks: 0,
            },
        })
        .collect();

    // Batch costs are pure in (pool, kind, batch); memoize so the
    // store-backed models are consulted once per distinct query.
    let mut cost_cache: Vec<BTreeMap<(usize, u32), BatchCost>> = vec![BTreeMap::new(); pools.len()];
    let mut cost_of = move |pool: usize, kind_idx: usize, kind: NetworkKind, batch: u32| -> Result<BatchCost> {
        if let Some(&c) = cost_cache[pool].get(&(kind_idx, batch)) {
            return Ok(c);
        }
        let c = costs[pool].batch_cost(kind, batch)?;
        cost_cache[pool].insert((kind_idx, batch), c);
        Ok(c)
    };

    let mut router = Router::new(config.policy);
    let mut autoscaler = config.autoscale.map(Autoscaler::new);
    let mut sheds_since_eval = 0u64;
    let mut next_arrival = 0usize;
    let mut now = 0u64;
    let mut makespan = 0u64;
    let max_batch = config.max_batch as usize;

    loop {
        // 1. Retire every batch that finished by `now`, pool order.
        for p in pools.iter_mut() {
            p.devices.complete_until(now);
        }

        // 2. Autoscale at evaluation instants.
        if let Some(scaler) = autoscaler.as_mut() {
            if scaler.due(now) {
                let views: Vec<ScaleView> = pools
                    .iter()
                    .map(|p| ScaleView {
                        pending: p.pending,
                        idle: p.devices.idle(),
                        target: p.devices.target(),
                        min_devices: p.min_devices,
                        max_devices: p.max_devices,
                    })
                    .collect();
                let actions = scaler.evaluate(now, &views, sheds_since_eval);
                sheds_since_eval = 0;
                for (i, action) in actions.into_iter().enumerate() {
                    let p = &mut pools[i];
                    match action {
                        ScaleAction::Hold => continue,
                        ScaleAction::Grow(n) => {
                            p.devices.grow(n);
                            p.stats.grows += 1;
                        }
                        ScaleAction::Shrink(n) => {
                            if p.devices.shrink(n) > 0 {
                                p.stats.shrinks += 1;
                            }
                        }
                    }
                    let target = p.devices.target();
                    p.stats.peak_devices = p.stats.peak_devices.max(target);
                    tango_obs::fleet_counter_at(
                        now,
                        pool_track_base(i) + DEVICES_TRACK,
                        "fleet.pool",
                        "devices",
                        target as i64,
                    );
                    if let Some(m) = metrics.as_deref_mut() {
                        m.on_scale(now, i, target);
                    }
                }
            }
        }

        // 3. Admit (or shed) every arrival due by `now`, trace order.
        while next_arrival < requests.len() && requests[next_arrival].at_ns <= now {
            let req = &requests[next_arrival];
            let k = kind_index(req.kind);
            // Snapshot the fleet for the router.
            let mut views = Vec::with_capacity(pools.len());
            for (i, p) in pools.iter().enumerate() {
                let svc = cost_of(i, k, req.kind, 1)?.ns;
                let next_free = if p.devices.idle() > 0 {
                    0
                } else {
                    p.devices.next_completion().map_or(0, |d| d.saturating_sub(now))
                };
                views.push(PoolView {
                    pending: p.pending,
                    idle: p.devices.idle(),
                    target: p.devices.target(),
                    next_free_delay_ns: next_free,
                    service_ns: svc,
                });
            }
            let slo = config.classes[req.class].slo_ns;
            if let Some(m) = metrics.as_deref_mut() {
                m.on_arrival(req.at_ns, req.class);
            }
            records[next_arrival].outcome = match router.place(&views, config.queue_bound, slo) {
                Placement::Pool(i) => {
                    let p = &mut pools[i];
                    p.queues[req.class * nk + k].push_back(Queued {
                        record_idx: next_arrival,
                        at_ns: req.at_ns,
                    });
                    p.pending += 1;
                    tango_obs::fleet_counter_at(
                        now,
                        pool_track_base(i) + PENDING_TRACK,
                        "fleet.queue",
                        "pending",
                        p.pending as i64,
                    );
                    if let Some(m) = metrics.as_deref_mut() {
                        m.on_pending(now, i, p.pending);
                    }
                    // Overwritten when its batch retires; admitted
                    // requests always complete (the loop drains queues).
                    FleetOutcome::Shed {
                        reason: ShedReason::NoCapacity,
                    }
                }
                Placement::Shed(reason) => {
                    sheds_since_eval += 1;
                    tango_obs::fleet_instant_at(now, SHED_TRACK, "fleet.shed", reason.name());
                    if let Some(m) = metrics.as_deref_mut() {
                        m.on_shed(now, req.class, reason);
                    }
                    FleetOutcome::Shed { reason }
                }
            };
            next_arrival += 1;
        }

        // 4. Dispatch ready queues onto free devices, pool order. A
        //    queue is ready when it holds a full batch or its head aged
        //    past the delay bound; ties prefer higher priority (lower
        //    class), then the oldest head, then kind order.
        for (i, p) in pools.iter_mut().enumerate() {
            while p.devices.peek_free().is_some() {
                let ready = p
                    .queues
                    .iter()
                    .enumerate()
                    .filter_map(|(qi, q)| {
                        let head = q.front()?;
                        let full = q.len() >= max_batch;
                        let aged = now >= head.at_ns.saturating_add(config.max_delay_ns);
                        (full || aged).then_some((qi / nk, head.at_ns, qi % nk))
                    })
                    .min();
                let Some((class, _, k)) = ready else { break };
                let qi = class * nk + k;
                let batch_len = p.queues[qi].len().min(max_batch);
                let cost = cost_of(i, k, kinds[k], batch_len as u32)?;
                let completed_ns = now + cost.ns.max(1);
                let device = p.devices.dispatch(now, completed_ns).expect("peeked free device");
                if tango_obs::is_enabled() {
                    let label = format!("{}x{batch_len}", kinds[k].name());
                    tango_obs::fleet_span_at(
                        now,
                        completed_ns,
                        pool_track_base(i) + device as u32,
                        "fleet.batch",
                        &label,
                    );
                }
                for _ in 0..batch_len {
                    let item = p.queues[qi].pop_front().expect("batch_len items queued");
                    records[item.record_idx].outcome = FleetOutcome::Completed {
                        pool: i,
                        device,
                        dispatched_ns: now,
                        completed_ns,
                        batch: batch_len as u32,
                    };
                    if let Some(m) = metrics.as_deref_mut() {
                        let rec = &records[item.record_idx];
                        let latency = completed_ns - rec.arrival_ns;
                        let slo_met = config.classes[rec.class].slo_ns.map(|slo| latency <= slo);
                        m.on_complete(completed_ns, rec.class, latency, slo_met);
                    }
                }
                p.pending -= batch_len;
                tango_obs::fleet_counter_at(
                    now,
                    pool_track_base(i) + PENDING_TRACK,
                    "fleet.queue",
                    "pending",
                    p.pending as i64,
                );
                if let Some(m) = metrics.as_deref_mut() {
                    m.on_pending(now, i, p.pending);
                    m.on_dispatch(now, i, completed_ns - now, cost.energy_j);
                }
                p.stats.batches += 1;
                p.stats.completed += batch_len as u64;
                p.stats.busy_ns += u128::from(completed_ns - now);
                p.stats.energy_j += cost.energy_j;
                makespan = makespan.max(completed_ns);
            }
        }

        // 5. Advance the clock to the next event: an arrival, a
        //    completion, a queue head aging past the delay bound (when a
        //    device is idle to take it), or an autoscaler evaluation
        //    (only while work remains — evaluations alone must not keep
        //    a finished simulation alive).
        let mut next = u64::MAX;
        if next_arrival < requests.len() {
            next = next.min(requests[next_arrival].at_ns);
        }
        let outstanding = next_arrival < requests.len()
            || pools.iter().any(|p| p.pending > 0 || p.devices.busy() > 0);
        for p in &pools {
            if let Some(done_at) = p.devices.next_completion() {
                next = next.min(done_at);
            }
            if p.devices.idle() > 0 {
                for q in &p.queues {
                    if let Some(head) = q.front() {
                        next = next.min(head.at_ns.saturating_add(config.max_delay_ns));
                    }
                }
            }
        }
        if let Some(scaler) = &autoscaler {
            if outstanding {
                next = next.min(scaler.next_eval_ns());
            }
        }
        if next == u64::MAX {
            break;
        }
        debug_assert!(next > now, "the event loop must make progress");
        // Utilization denominator: device-time existing over [now, next].
        for p in pools.iter_mut() {
            p.stats.device_ns += p.devices.active() as u128 * u128::from(next - now);
        }
        now = next;
    }

    debug_assert!(
        pools.iter().all(|p| p.pending == 0),
        "all admitted requests must retire"
    );
    let pools = pools
        .into_iter()
        .map(|mut p| {
            p.stats.final_devices = p.devices.target();
            p.stats
        })
        .collect();
    Ok(FleetReport {
        records,
        pools,
        makespan_ns: makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AutoscaleConfig, ClassSpec, FleetConfig, PoolSpec, RoutePolicy};
    use crate::cost::TableFleetCost;
    use crate::trace::FleetRequest;

    const GRU: NetworkKind = NetworkKind::Gru;

    fn config(pools: Vec<PoolSpec>, policy: RoutePolicy) -> FleetConfig {
        FleetConfig {
            pools,
            classes: vec![ClassSpec::best_effort("be")],
            queue_bound: 64,
            max_batch: 4,
            max_delay_ns: 1000,
            policy,
            autoscale: None,
        }
    }

    fn burst(n: usize, at_ns: u64) -> FleetTrace {
        FleetTrace::from_requests(
            &[GRU],
            1,
            (0..n)
                .map(|_| FleetRequest {
                    at_ns,
                    kind: GRU,
                    class: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn single_request_accounting_is_exact() {
        let cfg = config(vec![PoolSpec::fixed("only", 1)], RoutePolicy::CostAware);
        let cost = TableFleetCost::new(1.0).with_kind(GRU, 500, 100);
        let report = run_fleet(&burst(1, 10), &cfg, &[&cost]).unwrap();
        assert_eq!(report.completed(), 1);
        let r = report.records[0];
        // Waits max_delay_ns (1000), then runs 600 cycles at 1 GHz.
        assert_eq!(r.latency_ns(), Some(1000 + 600));
        assert_eq!(report.makespan_ns, 10 + 1600);
        assert_eq!(report.pools[0].batches, 1);
        assert!(report.energy_per_request_j() > 0.0);
    }

    #[test]
    fn cost_aware_routing_beats_round_robin_on_heterogeneous_pools() {
        // A fast pool and a 10x slower pool. Round-robin alternates and
        // pays the slow pool's clock on half the traffic; cost-aware
        // sends work there only when the fast pool's backlog justifies
        // it, so p99 must improve.
        let fast = TableFleetCost::new(2.0).with_kind(GRU, 2000, 500);
        let slow = TableFleetCost::new(0.2).with_kind(GRU, 2000, 500);
        let pools = || vec![PoolSpec::fixed("fast", 2), PoolSpec::fixed("slow", 2)];
        let trace = FleetTrace::bursty(&[GRU], &[ClassSpec::best_effort("be")], 400, 2000, 200_000, 40_000, 4, 17);
        let p99 = |policy| {
            let report = run_fleet(&trace, &config(pools(), policy), &[&fast, &slow]).unwrap();
            assert_eq!(report.shed(), 0);
            report.class_latency(0).unwrap().p99
        };
        let (rr, ca) = (p99(RoutePolicy::RoundRobin), p99(RoutePolicy::CostAware));
        assert!(ca < rr, "cost-aware p99 ({ca}) must beat round-robin ({rr})");
    }

    #[test]
    fn identical_runs_are_identical() {
        let cfg = FleetConfig {
            pools: vec![PoolSpec::elastic("a", 2, 1, 4), PoolSpec::fixed("b", 1)],
            classes: vec![ClassSpec::with_slo("int", 5_000_000), ClassSpec::best_effort("be")],
            queue_bound: 16,
            max_batch: 4,
            max_delay_ns: 2000,
            policy: RoutePolicy::CostAware,
            autoscale: Some(AutoscaleConfig {
                interval_ns: 50_000,
                ..AutoscaleConfig::default()
            }),
        };
        let classes = cfg.classes.clone();
        let trace = FleetTrace::diurnal(&[GRU, NetworkKind::CifarNet], &classes, 600, 1500, 2_000_000, 0.2, 23);
        let a_cost = TableFleetCost::new(1.0);
        let b_cost = TableFleetCost::new(0.5);
        let a = run_fleet(&trace, &cfg, &[&a_cost, &b_cost]).unwrap();
        let b = run_fleet(&trace, &cfg, &[&a_cost, &b_cost]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn autoscaler_grows_under_burst_and_drains_after() {
        let cfg = FleetConfig {
            pools: vec![PoolSpec::elastic("elastic", 1, 1, 8)],
            classes: vec![ClassSpec::best_effort("be")],
            queue_bound: 1024,
            max_batch: 1,
            max_delay_ns: 0,
            policy: RoutePolicy::LeastQueue,
            autoscale: Some(AutoscaleConfig {
                interval_ns: 10_000,
                high_queue_per_device: 2,
                low_queue_per_device: 1,
            }),
        };
        // 120 requests all at t=0 against a 10 µs service time (a lone
        // device needs 1.2 ms), then a long quiet gap before one
        // straggler — the window in which the drained pool must shrink
        // back to its floor.
        let cost = TableFleetCost::new(1.0).with_kind(GRU, 10_000, 0);
        let mut requests: Vec<FleetRequest> = (0..120)
            .map(|_| FleetRequest {
                at_ns: 0,
                kind: GRU,
                class: 0,
            })
            .collect();
        requests.push(FleetRequest {
            at_ns: 5_000_000,
            kind: GRU,
            class: 0,
        });
        let trace = FleetTrace::from_requests(&[GRU], 1, requests);
        let report = run_fleet(&trace, &cfg, &[&cost]).unwrap();
        assert_eq!(report.completed(), 121);
        let p = &report.pools[0];
        assert!(p.grows > 0, "backlog must trigger growth");
        assert!(p.peak_devices > 1, "peak {} must exceed the starting size", p.peak_devices);
        assert!(p.shrinks > 0, "the drained pool must shrink back");
        assert_eq!(p.final_devices, 1, "idle pool returns to its floor");
    }

    #[test]
    fn metered_replay_is_byte_identical_to_unmetered() {
        // Metrics collection must be pure observation: the report from
        // run_fleet_metered equals run_fleet's exactly, on a config
        // that exercises autoscaling, SLO shedding, and batching.
        let cfg = FleetConfig {
            pools: vec![PoolSpec::elastic("a", 2, 1, 4), PoolSpec::fixed("b", 1)],
            classes: vec![ClassSpec::with_slo("int", 200_000), ClassSpec::best_effort("be")],
            queue_bound: 16,
            max_batch: 4,
            max_delay_ns: 2000,
            policy: RoutePolicy::CostAware,
            autoscale: Some(AutoscaleConfig {
                interval_ns: 50_000,
                ..AutoscaleConfig::default()
            }),
        };
        let classes = cfg.classes.clone();
        let trace = FleetTrace::bursty(&[GRU, NetworkKind::CifarNet], &classes, 500, 1500, 300_000, 12_000, 6, 29);
        let a_cost = TableFleetCost::new(1.0).with_kind(GRU, 20_000, 10);
        let b_cost = TableFleetCost::new(0.5);
        let costs: [&dyn FleetCost; 2] = [&a_cost, &b_cost];
        let plain = run_fleet(&trace, &cfg, &costs).unwrap();
        let mcfg = crate::metrics::FleetMetricsConfig::with_window(100_000);
        let (metered, metrics) = run_fleet_metered(&trace, &cfg, &costs, &mcfg).unwrap();
        assert_eq!(plain, metered);
        // The registry saw every request and every shed.
        let arrivals: u64 = cfg
            .classes
            .iter()
            .filter_map(|c| {
                metrics
                    .registry
                    .counter_total(&format!("tango_fleet_requests_total{{class=\"{}\"}}", c.name))
            })
            .sum();
        assert_eq!(arrivals, plain.records.len() as u64);
        // Every interactive request lands in the SLO ledger exactly
        // once: sheds and SLO-missing completions as bad, the rest good.
        let slo = &metrics.slos[0];
        let interactive = plain.records.iter().filter(|r| r.class == 0).count();
        assert_eq!((slo.good + slo.bad) as usize, interactive);
        let missed = plain
            .records
            .iter()
            .filter(|r| r.class == 0)
            .filter(|r| !matches!(r.latency_ns(), Some(l) if l <= 200_000))
            .count();
        assert_eq!(slo.bad as usize, missed);
        tango_obs::metrics::validate_exposition(&metrics.prometheus_text()).unwrap();
    }

    #[test]
    fn slo_class_sheds_explicitly_while_best_effort_queues() {
        let cfg = FleetConfig {
            pools: vec![PoolSpec::fixed("only", 1)],
            classes: vec![ClassSpec::with_slo("int", 30_000), ClassSpec::best_effort("be")],
            queue_bound: 1024,
            max_batch: 1,
            max_delay_ns: 0,
            policy: RoutePolicy::CostAware,
            autoscale: None,
        };
        let cost = TableFleetCost::new(1.0).with_kind(GRU, 10_000, 0);
        // 40 interleaved requests at t=0: classes alternate.
        let trace = FleetTrace::from_requests(
            &[GRU],
            2,
            (0..40)
                .map(|i| FleetRequest {
                    at_ns: 0,
                    kind: GRU,
                    class: i % 2,
                })
                .collect(),
        );
        let report = run_fleet(&trace, &cfg, &[&cost]).unwrap();
        let slo_sheds = report.shed_by(ShedReason::SloInfeasible);
        assert!(slo_sheds > 0, "deep queue must become SLO-infeasible for the tight class");
        // Best-effort requests never SLO-shed.
        for r in &report.records {
            if r.class == 1 {
                assert!(r.latency_ns().is_some(), "best-effort must queue, not shed: {r:?}");
            }
        }
        // The tight class that did complete met admission's estimate
        // conservatively — no completed interactive request waited
        // past the bound the estimator allowed.
        assert!(report.completed() > 0);
    }
}
