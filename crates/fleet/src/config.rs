//! Fleet topology and policy configuration.

use tango_serve::{Result, ServeError};

/// One heterogeneous device pool (e.g. "gp102", "tx1", "pynq-z1").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSpec {
    /// Human-readable pool name, used in reports and trace tracks.
    pub name: String,
    /// Devices at simulation start.
    pub devices: usize,
    /// Autoscaler floor (ignored without an [`AutoscaleConfig`]).
    pub min_devices: usize,
    /// Autoscaler ceiling (ignored without an [`AutoscaleConfig`]).
    pub max_devices: usize,
}

impl PoolSpec {
    /// A fixed-size pool (autoscale bounds pinned to `devices`).
    pub fn fixed(name: &str, devices: usize) -> Self {
        PoolSpec {
            name: name.to_string(),
            devices,
            min_devices: devices,
            max_devices: devices,
        }
    }

    /// An elastic pool starting at `devices`, scalable within
    /// `[min, max]`.
    pub fn elastic(name: &str, devices: usize, min: usize, max: usize) -> Self {
        PoolSpec {
            name: name.to_string(),
            devices,
            min_devices: min,
            max_devices: max,
        }
    }
}

/// One request priority class. Classes are ordered: lower index =
/// higher priority, served first when multiple queues are ready.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    /// Class name ("interactive", "batch", ...).
    pub name: String,
    /// End-to-end latency SLO in virtual nanoseconds. Admission sheds a
    /// request (explicitly, as [`ShedReason::SloInfeasible`]) when even
    /// the best pool's predicted latency exceeds this. `None` = no SLO.
    ///
    /// [`ShedReason::SloInfeasible`]: crate::router::ShedReason::SloInfeasible
    pub slo_ns: Option<u64>,
}

impl ClassSpec {
    /// A class with a latency SLO.
    pub fn with_slo(name: &str, slo_ns: u64) -> Self {
        ClassSpec {
            name: name.to_string(),
            slo_ns: Some(slo_ns),
        }
    }

    /// A best-effort class with no SLO.
    pub fn best_effort(name: &str) -> Self {
        ClassSpec {
            name: name.to_string(),
            slo_ns: None,
        }
    }
}

/// How the router places an admitted request onto a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Cycle through live pools in index order, load-blind.
    RoundRobin,
    /// The pool with the fewest pending requests (ties: lowest index).
    LeastQueue,
    /// The pool with the lowest *predicted completion delay* for this
    /// kind: queued work costed at the pool's own service time, plus the
    /// wait for a device to free up (ties: lowest index). This is the
    /// policy that knows a gk210 nanosecond is not a gp102 nanosecond.
    CostAware,
}

impl RoutePolicy {
    /// Stable short name, used in reports and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round_robin",
            RoutePolicy::LeastQueue => "least_queue",
            RoutePolicy::CostAware => "cost_aware",
        }
    }

    /// Parses a policy [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "round_robin" => RoutePolicy::RoundRobin,
            "least_queue" => RoutePolicy::LeastQueue,
            "cost_aware" => RoutePolicy::CostAware,
            _ => return None,
        })
    }

    /// Every policy, in report order.
    pub const ALL: [RoutePolicy; 3] = [RoutePolicy::RoundRobin, RoutePolicy::LeastQueue, RoutePolicy::CostAware];
}

/// Autoscaler behaviour, evaluated at a fixed virtual-time cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscaleConfig {
    /// Evaluation cadence in virtual nanoseconds.
    pub interval_ns: u64,
    /// Grow a pool when its pending requests exceed
    /// `high_queue_per_device x target devices`.
    pub high_queue_per_device: u64,
    /// Shrink a pool when its pending requests drop below
    /// `low_queue_per_device x (target - 1) devices`.
    pub low_queue_per_device: u64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            interval_ns: 1_000_000, // 1 ms of virtual time
            high_queue_per_device: 4,
            low_queue_per_device: 1,
        }
    }
}

/// The full fleet configuration: topology, classes, batching, routing,
/// and (optionally) autoscaling.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Device pools, index-aligned with the cost models handed to
    /// [`run_fleet`](crate::engine::run_fleet).
    pub pools: Vec<PoolSpec>,
    /// Priority classes, highest priority first.
    pub classes: Vec<ClassSpec>,
    /// Per-pool pending-request bound; admission sheds past it.
    pub queue_bound: usize,
    /// Most requests coalesced into one device batch.
    pub max_batch: u32,
    /// Longest a queue head waits before a partial batch flushes, in
    /// virtual nanoseconds.
    pub max_delay_ns: u64,
    /// Placement policy.
    pub policy: RoutePolicy,
    /// Autoscaler; `None` pins every pool at its starting size.
    pub autoscale: Option<AutoscaleConfig>,
}

impl FleetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.pools.is_empty() {
            return Err(ServeError::Config("fleet needs at least one pool".into()));
        }
        if self.classes.is_empty() {
            return Err(ServeError::Config("fleet needs at least one class".into()));
        }
        if self.queue_bound == 0 {
            return Err(ServeError::Config("queue_bound must be positive".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be positive".into()));
        }
        for pool in &self.pools {
            if pool.max_devices == 0 {
                return Err(ServeError::Config(format!("pool {}: max_devices must be positive", pool.name)));
            }
            if pool.min_devices > pool.max_devices {
                return Err(ServeError::Config(format!(
                    "pool {}: min_devices {} exceeds max_devices {}",
                    pool.name, pool.min_devices, pool.max_devices
                )));
            }
            if pool.devices < pool.min_devices || pool.devices > pool.max_devices {
                return Err(ServeError::Config(format!(
                    "pool {}: starting devices {} outside [{}, {}]",
                    pool.name, pool.devices, pool.min_devices, pool.max_devices
                )));
            }
        }
        if let Some(auto) = &self.autoscale {
            if auto.interval_ns == 0 {
                return Err(ServeError::Config("autoscale interval_ns must be positive".into()));
            }
            if auto.high_queue_per_device <= auto.low_queue_per_device {
                return Err(ServeError::Config(
                    "autoscale high watermark must exceed the low watermark".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> FleetConfig {
        FleetConfig {
            pools: vec![PoolSpec::fixed("a", 1)],
            classes: vec![ClassSpec::best_effort("be")],
            queue_bound: 8,
            max_batch: 4,
            max_delay_ns: 1000,
            policy: RoutePolicy::CostAware,
            autoscale: None,
        }
    }

    #[test]
    fn validation_names_the_offending_field() {
        assert!(base().validate().is_ok());
        let mut c = base();
        c.pools.clear();
        assert!(c.validate().is_err());
        let mut c = base();
        c.pools[0].min_devices = 5;
        let err = c.validate().unwrap_err().to_string();
        assert!(err.contains("min_devices"), "{err}");
        let mut c = base();
        c.autoscale = Some(AutoscaleConfig {
            high_queue_per_device: 1,
            low_queue_per_device: 1,
            ..AutoscaleConfig::default()
        });
        let err = c.validate().unwrap_err().to_string();
        assert!(err.contains("watermark"), "{err}");
    }

    #[test]
    fn policies_round_trip_through_names() {
        for p in RoutePolicy::ALL {
            assert_eq!(RoutePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(RoutePolicy::parse("nope"), None);
    }
}
