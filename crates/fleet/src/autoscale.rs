//! The autoscaler: periodic, hysteretic, deterministic.
//!
//! Every `interval_ns` of virtual time the autoscaler looks at each
//! pool's backlog and moves its target size one device at a time:
//! grow when the queue runs deep per device, shrink when the pool idles,
//! never past the pool's `[min_devices, max_devices]` band. Shrinking
//! is drain-aware (the engine retires a busy device only when its
//! in-flight batch completes), and a pool scaled to zero is revived on
//! shed pressure — sheds since the last evaluation are the signal that
//! capacity, not placement, is the bottleneck.

use crate::config::AutoscaleConfig;

/// One pool as the autoscaler sees it at an evaluation instant.
#[derive(Debug, Clone, Copy)]
pub struct ScaleView {
    /// Requests queued in the pool.
    pub pending: usize,
    /// Idle devices.
    pub idle: usize,
    /// Post-drain target size.
    pub target: usize,
    /// Configured floor.
    pub min_devices: usize,
    /// Configured ceiling.
    pub max_devices: usize,
}

/// What to do to one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Leave the pool alone.
    Hold,
    /// Add this many devices.
    Grow(usize),
    /// Schedule this many devices for removal (drain-aware).
    Shrink(usize),
}

/// Periodic scaling evaluator.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscaleConfig,
    next_eval_ns: u64,
}

impl Autoscaler {
    /// An autoscaler whose first evaluation is one interval in.
    pub fn new(config: AutoscaleConfig) -> Self {
        Autoscaler {
            next_eval_ns: config.interval_ns,
            config,
        }
    }

    /// The next evaluation instant.
    pub fn next_eval_ns(&self) -> u64 {
        self.next_eval_ns
    }

    /// Whether an evaluation is due at `now`.
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_eval_ns
    }

    /// Evaluates every pool (index-aligned actions) and schedules the
    /// next evaluation. `sheds_since_last` is the fleet-wide shed count
    /// since the previous evaluation — the revive signal for pools at
    /// zero.
    pub fn evaluate(&mut self, now: u64, pools: &[ScaleView], sheds_since_last: u64) -> Vec<ScaleAction> {
        while self.next_eval_ns <= now {
            self.next_eval_ns += self.config.interval_ns;
        }
        let high = self.config.high_queue_per_device;
        let low = self.config.low_queue_per_device;
        pools
            .iter()
            .map(|p| {
                if p.target == 0 {
                    // A dead pool gets no placements, so its own queue
                    // can never argue for revival — fleet-wide sheds do.
                    return if sheds_since_last > 0 && p.max_devices > 0 {
                        ScaleAction::Grow(1)
                    } else {
                        ScaleAction::Hold
                    };
                }
                let pending = p.pending as u64;
                if pending > high * p.target as u64 && p.target < p.max_devices {
                    return ScaleAction::Grow(1);
                }
                let drained = p.pending == 0 && p.idle == p.target;
                let under_low = pending < low * (p.target as u64 - 1);
                if p.target > p.min_devices && (under_low || drained) {
                    return ScaleAction::Shrink(1);
                }
                ScaleAction::Hold
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscaleConfig {
            interval_ns: 1000,
            high_queue_per_device: 4,
            low_queue_per_device: 1,
        })
    }

    fn pool(pending: usize, idle: usize, target: usize, min: usize, max: usize) -> ScaleView {
        ScaleView {
            pending,
            idle,
            target,
            min_devices: min,
            max_devices: max,
        }
    }

    #[test]
    fn grows_on_backlog_within_bounds() {
        let mut a = scaler();
        let acts = a.evaluate(1000, &[pool(9, 0, 2, 1, 4), pool(9, 0, 4, 1, 4)], 0);
        assert_eq!(acts, vec![ScaleAction::Grow(1), ScaleAction::Hold], "ceiling caps growth");
        assert_eq!(a.next_eval_ns(), 2000);
    }

    #[test]
    fn shrinks_when_idle_but_never_below_min() {
        let mut a = scaler();
        let acts = a.evaluate(1000, &[pool(0, 3, 3, 1, 4), pool(0, 1, 1, 1, 4)], 0);
        assert_eq!(acts, vec![ScaleAction::Shrink(1), ScaleAction::Hold]);
        // min 0 lets a fully drained pool scale away entirely.
        let acts = a.evaluate(2000, &[pool(0, 1, 1, 0, 4)], 0);
        assert_eq!(acts, vec![ScaleAction::Shrink(1)]);
    }

    #[test]
    fn dead_pools_revive_only_on_shed_pressure() {
        let mut a = scaler();
        assert_eq!(a.evaluate(1000, &[pool(0, 0, 0, 0, 4)], 0), vec![ScaleAction::Hold]);
        assert_eq!(a.evaluate(2000, &[pool(0, 0, 0, 0, 4)], 7), vec![ScaleAction::Grow(1)]);
    }

    #[test]
    fn catches_up_over_skipped_intervals() {
        let mut a = scaler();
        assert!(a.due(1000));
        a.evaluate(5500, &[], 0);
        assert_eq!(a.next_eval_ns(), 6000, "evaluation cadence realigns after a long jump");
    }
}
