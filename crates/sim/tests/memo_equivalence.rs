//! Launch memoization must be invisible: byte-identical `KernelStats` and
//! memory contents whether a launch is fully simulated or replayed from
//! the process-global memo table, across every device preset and in
//! composition with CTA sampling and batch replication.
//!
//! Every test forces the path explicitly via `SimOptions::with_memo`
//! instead of the `TANGO_SIM_MEMO` environment variable, so the two paths
//! can be compared race-free inside one test process.

use tango_isa::{DType, Dim3, KernelBuilder, KernelProgram, Operand};
use tango_sim::{Gpu, GpuConfig, SimOptions};

/// y[tid] = a * x[tid] + y[tid] — the canonical streaming kernel.
fn saxpy() -> KernelProgram {
    let mut b = KernelBuilder::new("memo_saxpy");
    let tid = b.global_tid_x();
    let off = b.reg();
    let xa = b.reg();
    let ya = b.reg();
    let xv = b.reg();
    let yv = b.reg();
    let x_base = b.load_param(0);
    let y_base = b.load_param(1);
    let a_bits = b.load_param(2);
    b.shl(DType::U32, off, tid.into(), Operand::imm_u32(2));
    b.add(DType::U32, xa, off.into(), x_base.into());
    b.add(DType::U32, ya, off.into(), y_base.into());
    b.ld_global(DType::F32, xv, xa, 0);
    b.ld_global(DType::F32, yv, ya, 0);
    b.mad(DType::F32, yv, a_bits.into(), xv.into(), yv.into());
    b.st_global(DType::F32, ya, 0, yv);
    b.exit();
    b.build().unwrap()
}

/// out[tid] = x[tid] + x[tid] — pure, output disjoint from input.
fn double() -> KernelProgram {
    let mut b = KernelBuilder::new("memo_double");
    let tid = b.global_tid_x();
    let off = b.reg();
    let xa = b.reg();
    let oa = b.reg();
    let v = b.reg();
    let x_base = b.load_param(0);
    let o_base = b.load_param(1);
    b.shl(DType::U32, off, tid.into(), Operand::imm_u32(2));
    b.add(DType::U32, xa, off.into(), x_base.into());
    b.add(DType::U32, oa, off.into(), o_base.into());
    b.ld_global(DType::F32, v, xa, 0);
    b.add(DType::F32, v, v.into(), v.into());
    b.st_global(DType::F32, oa, 0, v);
    b.exit();
    b.build().unwrap()
}

/// Runs the two-kernel "network" (double feeding saxpy) `reps` times on a
/// fresh device and returns every launch's debug-formatted stats plus the
/// final output buffer. Repetitions after the first re-launch identical
/// work over identical data — exactly the shape the memo accelerates.
fn run_sequence(config: GpuConfig, opts: &SimOptions, reps: usize, n: usize) -> (Vec<String>, Vec<f32>) {
    let mut gpu = Gpu::new(config);
    let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
    let x_addr = gpu.upload_f32s(&x);
    let mid_addr = gpu.alloc_bytes(n as u32 * 4);
    let y_addr = gpu.upload_f32s(&vec![1.0; n]);
    let grid = Dim3::x((n as u32).div_ceil(64));
    let block = Dim3::x(64);
    let (p_double, p_saxpy) = (double(), saxpy());
    let mut stats = Vec::new();
    for _ in 0..reps {
        // Reset y so every repetition computes over identical data.
        gpu.memory_mut().write_f32s(y_addr, &vec![1.0; n]);
        let s1 = gpu.launch(&p_double, grid, block, &[x_addr, mid_addr], 0, opts);
        let s2 = gpu.launch(&p_saxpy, grid, block, &[mid_addr, y_addr, 0.25f32.to_bits()], 0, opts);
        stats.push(format!("{s1:?}"));
        stats.push(format!("{s2:?}"));
    }
    (stats, gpu.download_f32s(y_addr, n))
}

#[test]
fn memoized_stats_identical_across_presets() {
    for config in [GpuConfig::gk210(), GpuConfig::tx1(), GpuConfig::gp102()] {
        let full = run_sequence(config.clone(), &SimOptions::new().with_memo(false), 3, 512);
        // First memoized pass records the launch chain; the second, on a
        // fresh identically-configured device, replays it end to end.
        let memo1 = run_sequence(config.clone(), &SimOptions::new().with_memo(true), 3, 512);
        let memo2 = run_sequence(config.clone(), &SimOptions::new().with_memo(true), 3, 512);
        assert_eq!(full.1, memo1.1, "outputs diverged on {:?}", config.name);
        assert_eq!(full.1, memo2.1, "replayed outputs diverged on {:?}", config.name);
        assert_eq!(full.0.len(), memo1.0.len());
        for (i, f) in full.0.iter().enumerate() {
            assert_eq!(f, &memo1.0[i], "launch {i} stats diverged on {:?}", config.name);
            assert_eq!(f, &memo2.0[i], "launch {i} replayed stats diverged on {:?}", config.name);
        }
    }
}

#[test]
fn memo_composes_with_sampling_and_batching() {
    // Property sweep: every (cta_sample_limit, batch) cell must agree
    // between the memoized and full paths — the memo key covers both
    // options, so replay never crosses cells.
    for limit in [None, Some(8), Some(32)] {
        for batch in [1u32, 4] {
            let opts = SimOptions::new().with_cta_sample_limit(limit).with_batch(batch);
            let full = run_sequence(GpuConfig::gp102(), &opts.clone().with_memo(false), 2, 2048);
            let memo = run_sequence(GpuConfig::gp102(), &opts.clone().with_memo(true), 2, 2048);
            let replay = run_sequence(GpuConfig::gp102(), &opts.clone().with_memo(true), 2, 2048);
            assert_eq!(full.1, memo.1, "outputs diverged at limit={limit:?} batch={batch}");
            assert_eq!(full.0, memo.0, "stats diverged at limit={limit:?} batch={batch}");
            assert_eq!(full.0, replay.0, "replayed stats diverged at limit={limit:?} batch={batch}");
            assert_eq!(full.1, replay.1, "replayed outputs diverged at limit={limit:?} batch={batch}");
        }
    }
}

#[test]
fn memo_falls_back_when_input_data_changes() {
    // Same program, same addresses, different buffer contents: the probe
    // digest must miss and the launch must re-simulate with the new data.
    // Replays happen across fresh identically-configured devices (the tag
    // chain starts from the shared pristine tag), so each scenario runs on
    // its own device.
    let n = 256usize;
    let run = |memo: bool, fill: f32| {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let x_addr = gpu.upload_f32s(&vec![fill; n]);
        let o_addr = gpu.alloc_bytes(n as u32 * 4);
        let s = gpu.launch(
            &double(),
            Dim3::x(4),
            Dim3::x(64),
            &[x_addr, o_addr],
            0,
            &SimOptions::new().with_memo(memo),
        );
        (format!("{s:?}"), gpu.download_f32s(o_addr, n))
    };
    let (s1, out1) = run(true, 1.0); // records
    let (s2, out2) = run(true, 1.0); // replays
    assert_eq!(s1, s2);
    assert_eq!(out1, vec![2.0; n]);
    assert_eq!(out2, vec![2.0; n]);
    // Divergence: identical static signature and pre-state tag, different
    // input data — the probes must reject the entry.
    let (s3, out3) = run(true, 3.0);
    assert_eq!(out3, vec![6.0; n], "stale replay served after input change");
    let (s3_full, _) = run(false, 3.0);
    assert_eq!(s3, s3_full, "fallback path diverged from full simulation");
}

#[test]
fn narrow_accesses_poison_but_stay_correct() {
    // A kernel doing u16 global traffic is never memoizable (sub-word
    // writes defeat word-granular dependence tracking); it must silently
    // fall back to full simulation every time and stay correct.
    let mut b = KernelBuilder::new("memo_u16");
    let tid = b.global_tid_x();
    let off = b.reg();
    let xa = b.reg();
    let oa = b.reg();
    let v = b.reg();
    let x_base = b.load_param(0);
    let o_base = b.load_param(1);
    b.shl(DType::U32, off, tid.into(), Operand::imm_u32(1));
    b.add(DType::U32, xa, off.into(), x_base.into());
    b.add(DType::U32, oa, off.into(), o_base.into());
    b.ld_global(DType::U16, v, xa, 0);
    b.add(DType::U16, v, v.into(), Operand::imm_u32(1));
    b.st_global(DType::U16, oa, 0, v);
    b.exit();
    let p = b.build().unwrap();

    let run = |memo: bool, base: u16| {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let x_addr = gpu.alloc_bytes(64 * 2);
        let o_addr = gpu.alloc_bytes(64 * 2);
        for i in 0..64u32 {
            gpu.memory_mut().write_u16(x_addr + i * 2, base + i as u16);
        }
        let s = gpu.launch(
            &p,
            Dim3::x(2),
            Dim3::x(32),
            &[x_addr, o_addr],
            0,
            &SimOptions::new().with_memo(memo),
        );
        let out: Vec<u16> = (0..64u32).map(|i| gpu.memory().read_u16(o_addr + i * 2)).collect();
        (format!("{s:?}"), out)
    };
    // Two memo-on runs with different inputs: a stale replay would freeze
    // the first run's outputs; poisoning must keep both fully simulated.
    let (sa, out_a) = run(true, 0);
    let (sb, out_b) = run(true, 100);
    assert_eq!(out_a, (0..64u16).map(|i| i + 1).collect::<Vec<_>>());
    assert_eq!(out_b, (0..64u16).map(|i| i + 101).collect::<Vec<_>>());
    // And each matches the memo-off path byte for byte.
    assert_eq!(sa, run(false, 0).0);
    assert_eq!(sb, run(false, 100).0);
}

#[test]
fn memo_replays_across_devices_with_shared_table() {
    // The table is process-global: a launch recorded on one device must
    // replay on a second identically-configured device with identical
    // stats — the serving fleet case (N workers, same model).
    let n = 512usize;
    let run = |memo: bool| {
        let mut gpu = Gpu::new(GpuConfig::tx1());
        let x_addr = gpu.upload_f32s(&(0..n).map(|i| (i % 7) as f32).collect::<Vec<_>>());
        let o_addr = gpu.alloc_bytes(n as u32 * 4);
        let s = gpu.launch(
            &double(),
            Dim3::x(8),
            Dim3::x(64),
            &[x_addr, o_addr],
            0,
            &SimOptions::new().with_memo(memo),
        );
        (format!("{s:?}"), gpu.download_f32s(o_addr, n))
    };
    let baseline = run(false);
    let first = run(true); // records (or replays a prior test's entry)
    let second = run(true); // replays
    assert_eq!(baseline.0, first.0);
    assert_eq!(baseline.0, second.0);
    assert_eq!(baseline.1, second.1);
}
