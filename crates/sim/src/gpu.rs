//! The simulated GPU device: owns device memory, the shared L2/DRAM, and
//! runs kernel launches to completion.

use crate::config::{CacheGeometry, GpuConfig, SimOptions};
use crate::decode::{decode_program, DecodedInst};
use crate::mem::GlobalMemory;
use crate::memo::{self, MemoRecorder};
use crate::memsys::MemorySystem;
use crate::power::PowerMeter;
use crate::sched::Scheduler;
use crate::sm::{LaunchAgg, Sm, SmEnv};
use crate::stats::KernelStats;
use tango_isa::{max_live_registers, Dim3, KernelProgram};

/// Safety valve: a single launch exceeding this many cycles is a simulator
/// deadlock, not a slow kernel.
const MAX_CYCLES: u64 = 50_000_000_000;

/// Minimum virtual cycles between live occupancy gauge samples when
/// tracing: dense enough to see ramp-up and drain, sparse enough that a
/// long kernel does not flood the ring.
const GAUGE_INTERVAL: u64 = 8192;

/// A simulated GPU.
///
/// Mirrors the host-side view of a CUDA device: allocate buffers, copy data
/// in, launch kernels, copy data out. Each launch returns a full
/// [`KernelStats`] record.
///
/// # Example
///
/// ```
/// use tango_isa::{DType, Dim3, KernelBuilder, Operand};
/// use tango_sim::{Gpu, GpuConfig, SimOptions};
///
/// // out[tid] = 3 * tid
/// let mut b = KernelBuilder::new("triple");
/// let tid = b.global_tid_x();
/// let addr = b.reg();
/// let v = b.reg();
/// let base = b.load_param(0);
/// b.mul(DType::U32, v, tid.into(), Operand::imm_u32(3));
/// b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
/// b.add(DType::U32, addr, addr.into(), base.into());
/// b.st_global(DType::U32, addr, 0, v);
/// b.exit();
/// let program = b.build().expect("valid program");
///
/// let mut gpu = Gpu::new(GpuConfig::gp102());
/// let out = gpu.alloc_bytes(64 * 4);
/// let stats = gpu.launch(&program, Dim3::x(2), Dim3::x(32), &[out], 0, &SimOptions::new());
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.memory().read_u32(out + 10 * 4), 30);
/// ```
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    mem: GlobalMemory,
    memsys: MemorySystem,
}

impl Gpu {
    /// Creates a device with the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        let memsys = MemorySystem::new(&config);
        Gpu {
            config,
            mem: GlobalMemory::new(),
            memsys,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Read-only view of device memory.
    pub fn memory(&self) -> &GlobalMemory {
        &self.mem
    }

    /// Mutable view of device memory (host-side uploads).
    pub fn memory_mut(&mut self) -> &mut GlobalMemory {
        &mut self.mem
    }

    /// Allocates `bytes` of device memory.
    pub fn alloc_bytes(&mut self, bytes: u32) -> u32 {
        self.mem.alloc(bytes)
    }

    /// Allocates and uploads a float buffer, returning its device address.
    pub fn upload_f32s(&mut self, values: &[f32]) -> u32 {
        let addr = self.mem.alloc((values.len() * 4) as u32);
        self.mem.write_f32s(addr, values);
        addr
    }

    /// Reads `len` floats from device memory.
    pub fn download_f32s(&self, addr: u32, len: usize) -> Vec<f32> {
        self.mem.read_f32s(addr, len)
    }

    /// Peak device-memory usage so far in bytes (the paper's Figure 11
    /// metric).
    pub fn memory_footprint_bytes(&self) -> u64 {
        self.mem.high_water_bytes()
    }

    /// Statically verifies a launch without running it: structural CFG
    /// checks, dataflow lints, and the thread-affine access analysis from
    /// [`tango_isa::verify`], evaluated against this device's actual
    /// memory size and the concrete parameter words.
    ///
    /// The launch memo layer consults the same analysis: when it proves
    /// every global access is an aligned 32-bit word
    /// ([`Report::aligned_certified`](tango_isa::verify::Report)), the
    /// recorder skips its per-access width/alignment poison probes. That
    /// only elides a check the proof says cannot fire — replayed results
    /// stay byte-identical.
    pub fn verify_launch(
        &self,
        program: &KernelProgram,
        grid: Dim3,
        block: Dim3,
        params: &[u32],
    ) -> tango_isa::verify::Report {
        let spec = tango_isa::verify::LaunchSpec {
            grid,
            block,
            params: Some(params),
            param_align: 1,
            mem_bytes: Some(self.mem.size_bytes() as u64),
        };
        tango_isa::verify::verify_launch(program, &spec)
    }

    /// Launches `program` over `grid` x `block` threads with the given
    /// 32-bit parameters (typically buffer addresses and layer dimensions)
    /// and `smem_bytes` of per-CTA shared memory.
    ///
    /// Runs the launch to completion under `opts` and returns its
    /// statistics. With CTA sampling enabled (the default), only a prefix
    /// of the grid executes and extensive statistics are extrapolated —
    /// see [`SimOptions::cta_sample_limit`]. With
    /// [`SimOptions::batch`] > 1 the grid is replicated at the CTA level
    /// (see [`LaunchFrame`]).
    ///
    /// Equivalent to [`begin_launch`](Self::begin_launch) followed by
    /// [`LaunchFrame::finish`]; use the frame API directly to interleave
    /// or pace long launches.
    ///
    /// # Panics
    ///
    /// Panics if the program expects more parameters than provided, or if
    /// a kernel accesses device memory out of bounds (a generated-kernel
    /// bug).
    pub fn launch(
        &mut self,
        program: &KernelProgram,
        grid: Dim3,
        block: Dim3,
        params: &[u32],
        smem_bytes: u32,
        opts: &SimOptions,
    ) -> KernelStats {
        self.begin_launch(program, grid, block, params, smem_bytes, opts).finish()
    }

    /// Starts a launch without running it, returning a resumable
    /// [`LaunchFrame`] that executes the kernel in caller-controlled
    /// cycle slices. This is the step-wise device API a serving scheduler
    /// needs: a long launch can be advanced a quantum at a time, checked
    /// for progress, and interleaved with bookkeeping, and the final
    /// statistics are byte-identical to a one-shot [`launch`](Self::launch)
    /// (slicing only chunks the same deterministic loop).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`launch`](Self::launch).
    pub fn begin_launch<'a>(
        &'a mut self,
        program: &'a KernelProgram,
        grid: Dim3,
        block: Dim3,
        params: &[u32],
        smem_bytes: u32,
        opts: &SimOptions,
    ) -> LaunchFrame<'a> {
        assert!(
            params.len() as u32 >= program.param_count(),
            "kernel {} expects {} params, got {}",
            program.name(),
            program.param_count(),
            params.len()
        );
        let cta_threads = block.count() as u32;
        assert!(
            cta_threads <= 1024,
            "kernel {}: {} threads per block exceeds the 1024-thread CUDA limit",
            program.name(),
            cta_threads
        );

        let policy = opts.scheduler.unwrap_or(self.config.scheduler);
        let l1_geometry: Option<CacheGeometry> = match opts.l1d_bytes {
            None => self.config.l1d,
            Some(0) => None,
            Some(bytes) => Some(CacheGeometry::new(bytes, self.config.l2.line_bytes, 8)),
        };
        let line_bytes = self.config.l2.line_bytes;

        // Batch replication: `batch` copies of the grid are dispatched
        // replica-major, each replica CTA mapping to its base coordinates
        // (identical program, identical data, identical — idempotent —
        // writes). The first `grid.count()` CTAs are therefore exactly the
        // unbatched launch, so outputs never depend on the batch factor.
        let base_ctas = grid.count();
        let total_ctas = base_ctas * opts.batch.max(1) as u64;
        let sim_ctas = total_ctas.min(opts.cta_sample_limit.unwrap_or(u64::MAX)).max(1);

        let regs_per_thread = program.register_count().max(1);
        let ctas_per_sm = self
            .config
            .ctas_per_sm(cta_threads, regs_per_thread, smem_bytes)
            .min(self.config.max_ctas_per_sm);
        let warps_per_cta = self.config.warps_per_cta(cta_threads);

        self.memsys.reset_stats();
        let meter = PowerMeter::new(self.config.power, self.config.clock_ghz, opts.power_window);

        // Launch memoization (DESIGN.md section 13): a launch is a pure
        // function of its static description plus the device state it
        // reads, so an identical earlier launch can be replayed exactly —
        // write log applied, recorded post-hierarchy installed, recorded
        // stats returned — instead of simulated.
        let mut replayed = None;
        let mut recorder = None;
        if memo::enabled(opts.memo) {
            // `memo` itself is excluded from the signature: it selects the
            // execution strategy, never the result.
            let opts_sig = format!(
                "{:?}|{:?}|{:?}|{}|{}",
                opts.scheduler, opts.l1d_bytes, opts.cta_sample_limit, opts.power_window, opts.batch
            );
            let config_sig = format!("{:?}", self.config);
            let key = memo::static_key(program, grid, block, params, smem_bytes, &config_sig, &opts_sig);
            match memo::lookup(key, self.memsys.state_tag(), &mut self.mem) {
                Some((stats, post_memsys)) => {
                    self.memsys = post_memsys;
                    replayed = Some(stats);
                }
                None => {
                    let mut rec = MemoRecorder::new(key, self.memsys.state_tag(), self.mem.size_bytes());
                    // One static verification per static key: a proof that
                    // every global access is an aligned word lets the
                    // recorder drop its per-access poison probes.
                    if memo::certification(key, || {
                        self.verify_launch(program, grid, block, params).aligned_certified
                    }) {
                        rec.certify();
                    }
                    recorder = Some(rec);
                    // Stamp a fresh tag *before* simulation mutates the
                    // hierarchy, so an abandoned frame can never leave a
                    // stale tag describing a state that no longer exists.
                    self.memsys.refresh_tag();
                }
            }
        } else {
            self.memsys.refresh_tag();
        }
        let done = replayed.is_some();
        let cycle = replayed.as_ref().map_or(0, |s| s.cycles);
        let next_cta = if done { sim_ctas } else { 0 };

        // A replayed launch never cycles, so skip building its machine.
        let (sms, decoded) = if done {
            (Vec::new(), Vec::new())
        } else {
            let sms: Vec<Sm> = (0..self.config.num_sms)
                .map(|_| {
                    Sm::new(
                        &self.config,
                        l1_geometry,
                        ctas_per_sm,
                        warps_per_cta,
                        params.len(),
                        Scheduler::new(policy, 6),
                    )
                })
                .collect();
            (sms, decode_program(program))
        };

        // Launch span: opened here at the thread's virtual cursor, closed
        // by `finish` at cursor + (extrapolated) cycles, so launch spans
        // tile the inference timeline and sum to the reported total.
        let vbase = tango_obs::virtual_now();
        tango_obs::vspan_begin("sim.launch", program.name());

        LaunchFrame {
            gpu: self,
            program,
            params: params.to_vec(),
            grid,
            block,
            smem_bytes,
            sms,
            decoded,
            meter,
            agg: LaunchAgg::default(),
            line_bytes,
            base_ctas,
            total_ctas,
            sim_ctas,
            ctas_per_sm,
            regs_per_thread,
            next_cta,
            cycle,
            weight: 1,
            done,
            recorder,
            replayed,
            vbase,
            last_gauge: 0,
        }
    }
}

/// Whether a [`LaunchFrame`] still has work left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The launch has not retired every CTA yet.
    Running,
    /// The launch is complete; call [`LaunchFrame::finish`].
    Done,
}

/// An in-flight kernel launch that can be advanced incrementally.
///
/// Created by [`Gpu::begin_launch`]; holds the full mid-launch machine
/// state (SM pipelines, power meter, aggregation counters, the CTA
/// dispatch cursor and the virtual-cycle clock), so execution can stop at
/// any cycle boundary and resume later with no observable difference.
/// Dropping a frame abandons the launch (device memory keeps whatever the
/// executed prefix wrote).
///
/// # Example
///
/// ```
/// use tango_isa::{DType, Dim3, KernelBuilder, Operand};
/// use tango_sim::{Gpu, GpuConfig, SimOptions, StepStatus};
///
/// let mut b = KernelBuilder::new("fill");
/// let tid = b.global_tid_x();
/// let addr = b.reg();
/// let base = b.load_param(0);
/// b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
/// b.add(DType::U32, addr, addr.into(), base.into());
/// b.st_global(DType::U32, addr, 0, tid);
/// b.exit();
/// let program = b.build().expect("valid program");
///
/// let mut gpu = Gpu::new(GpuConfig::gp102());
/// let out = gpu.alloc_bytes(64 * 4);
/// let mut frame = gpu.begin_launch(&program, Dim3::x(2), Dim3::x(32), &[out], 0, &SimOptions::new());
/// while frame.step(8) == StepStatus::Running {}
/// let stats = frame.finish();
/// assert!(stats.cycles > 0);
/// ```
pub struct LaunchFrame<'a> {
    gpu: &'a mut Gpu,
    program: &'a KernelProgram,
    params: Vec<u32>,
    grid: Dim3,
    block: Dim3,
    smem_bytes: u32,
    sms: Vec<Sm>,
    /// Flat pre-decoded program (index-parallel with its instructions).
    decoded: Vec<DecodedInst>,
    meter: PowerMeter,
    agg: LaunchAgg,
    line_bytes: u32,
    base_ctas: u64,
    total_ctas: u64,
    sim_ctas: u64,
    ctas_per_sm: u32,
    regs_per_thread: u32,
    next_cta: u64,
    cycle: u64,
    weight: u64,
    done: bool,
    /// Memo recorder for a live launch that is being recorded.
    recorder: Option<MemoRecorder>,
    /// Recorded stats installed by a memo hit; returned by `finish`.
    replayed: Option<KernelStats>,
    vbase: u64,
    last_gauge: u64,
}

impl LaunchFrame<'_> {
    /// The launch's current virtual cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// CTAs dispatched so far (of [`ctas_to_simulate`](Self::ctas_to_simulate)).
    pub fn ctas_dispatched(&self) -> u64 {
        self.next_cta
    }

    /// CTAs this launch will simulate in detail (after sampling).
    pub fn ctas_to_simulate(&self) -> u64 {
        self.sim_ctas
    }

    /// Whether the launch has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// One iteration of the launch loop: dispatch pending CTAs, cycle
    /// every SM once, advance the clock (event-skipping dead spans).
    fn step_once(&mut self) {
        let Gpu { config, mem, memsys } = &mut *self.gpu;

        // Dispatch pending CTAs round-robin across SMs (one per SM per
        // pass, like the hardware work distributor) so partial grids
        // spread over the whole machine instead of packing a few SMs.
        while self.next_cta < self.sim_ctas {
            let mut placed = false;
            for sm in &mut self.sms {
                if self.next_cta >= self.sim_ctas {
                    break;
                }
                if sm.has_room() {
                    let id = self.next_cta % self.base_ctas;
                    let x = (id % self.grid.x as u64) as u32;
                    let y = ((id / self.grid.x as u64) % self.grid.y as u64) as u32;
                    let z = (id / (self.grid.x as u64 * self.grid.y as u64)) as u32;
                    sm.accept_cta((x, y, z), self.program, self.block, self.smem_bytes);
                    self.next_cta += 1;
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }

        let mut any_active = false;
        let mut active_sms = 0u32;
        let mut next_event = u64::MAX;
        for sm in &mut self.sms {
            let mut env = SmEnv {
                cycle: self.cycle,
                weight: self.weight,
                mem,
                memsys,
                meter: &mut self.meter,
                agg: &mut self.agg,
                program: self.program,
                decoded: &self.decoded,
                params: &self.params,
                grid: self.grid,
                block: self.block,
                line_bytes: self.line_bytes,
                rec: self.recorder.as_mut(),
            };
            let (active, hint) = sm.cycle(&mut env);
            any_active |= active;
            if active {
                active_sms += 1;
            }
            next_event = next_event.min(hint);
        }
        self.meter
            .charge_static_span(self.cycle, self.weight, config.num_sms - active_sms, active_sms);

        // Live occupancy gauge: how many SMs did work this cycle,
        // sampled sparsely so ramp-up and tail drain show in the trace.
        if tango_obs::is_enabled() && self.cycle >= self.last_gauge.saturating_add(GAUGE_INTERVAL) {
            self.last_gauge = self.cycle;
            tango_obs::vcounter_at(self.vbase + self.cycle, "sim.sm", "active_sms", active_sms as i64);
        }

        if !any_active && self.next_cta >= self.sim_ctas {
            self.done = true;
            return;
        }
        // Event skip: when every SM is stalled on a known future time,
        // jump straight to it instead of ticking the dead cycles.
        // Stall samples and static power for the skipped span are
        // charged via `weight` on the next iteration.
        let target = next_event.clamp(self.cycle + 1, self.cycle + 1_000_000);
        self.weight = target - self.cycle;
        self.cycle = target;
        if std::env::var_os("TANGO_DEBUG_HANG").is_some() && self.cycle > 5_000 && self.cycle % 2048 < self.weight {
            for (i, sm) in self.sms.iter().enumerate() {
                if sm.is_active() {
                    eprintln!("[hang] cycle {} sm {i}: {}", self.cycle, sm.debug_state(self.cycle, self.program));
                }
            }
        }
        assert!(
            self.cycle < MAX_CYCLES,
            "kernel {} exceeded the cycle safety valve",
            self.program.name()
        );
    }

    /// Advances the launch by at least `budget` virtual cycles (the last
    /// event skip may overshoot) or to completion, whichever is first.
    pub fn step(&mut self, budget: u64) -> StepStatus {
        let target = self.cycle.saturating_add(budget.max(1));
        while !self.done && self.cycle < target {
            self.step_once();
        }
        if self.done {
            StepStatus::Done
        } else {
            StepStatus::Running
        }
    }

    /// Runs any remaining work to completion and assembles the launch
    /// statistics (identical to what a one-shot [`Gpu::launch`] returns).
    pub fn finish(mut self) -> KernelStats {
        // A memo hit already produced the launch's exact statistics (and
        // applied its memory effects) at `begin_launch`.
        if let Some(stats) = self.replayed.take() {
            return stats;
        }
        while !self.done {
            self.step_once();
        }

        let mut l1d = crate::stats::CacheStats::default();
        let mut max_resident_threads = 0;
        for sm in &self.sms {
            if let Some(c) = &sm.l1d {
                l1d.merge(&c.stats());
            }
            max_resident_threads = max_resident_threads.max(sm.peak_threads);
        }
        let (energy, peak_power_w, _trace) = self.meter.finish();

        let mut stats = KernelStats {
            name: self.program.name().to_string(),
            cycles: self.cycle.max(1),
            warp_instructions: self.agg.warp_instructions,
            thread_instructions: self.agg.thread_instructions,
            op_counts: self.agg.op_counts_map(),
            dtype_counts: self.agg.dtype_counts_map(),
            stalls: self.agg.stalls,
            l1d,
            l2: self.gpu.memsys.l2_stats(),
            dram_accesses: self.gpu.memsys.dram_accesses(),
            const_accesses: self.agg.const_accesses,
            shared_accesses: self.agg.shared_accesses,
            regs_per_thread: self.regs_per_thread,
            live_regs_per_thread: max_live_registers(self.program),
            max_resident_threads,
            smem_bytes: self.program.smem_bytes().max(self.smem_bytes),
            cmem_bytes: self.program.cmem_bytes(),
            energy,
            peak_power_w,
            avg_power_w: 0.0,
            time_s: self.cycle.max(1) as f64 / (self.gpu.config.clock_ghz * 1e9),
            ctas_total: self.total_ctas,
            ctas_simulated: self.sim_ctas,
        };
        if self.total_ctas > self.sim_ctas {
            // Counts extrapolate linearly with CTAs; time extrapolates by
            // machine waves (a grid that still fits residency runs wider,
            // not longer).
            let capacity = (self.gpu.config.num_sms as u64 * self.ctas_per_sm as u64).max(1) as f64;
            let waves_total = (self.total_ctas as f64 / capacity).max(1.0);
            let waves_sim = (self.sim_ctas as f64 / capacity).max(1.0);
            stats.scale_split(self.total_ctas as f64 / self.sim_ctas as f64, waves_total / waves_sim);
        }
        stats.avg_power_w = if stats.time_s > 0.0 {
            stats.energy.total() / stats.time_s
        } else {
            0.0
        };
        // Wave-based extrapolation can raise the full-grid average above
        // the sampled-prefix peak (more CTAs in flight in the same waves);
        // the peak is by definition at least the average.
        stats.peak_power_w = stats.peak_power_w.max(stats.avg_power_w);

        if let Some(rec) = self.recorder.take() {
            memo::record(rec, &self.gpu.memsys, &stats);
        }

        if tango_obs::is_enabled() {
            // Close the launch span at the extrapolated end and surface
            // the run's cache, stall, and occupancy totals as trace
            // counters at that instant.
            let end = self.vbase + stats.cycles;
            tango_obs::vcounter_at(end, "sim.cache", "l1d_hits", stats.l1d.hits as i64);
            tango_obs::vcounter_at(end, "sim.cache", "l1d_misses", stats.l1d.misses as i64);
            tango_obs::vcounter_at(end, "sim.cache", "l2_hits", stats.l2.hits as i64);
            tango_obs::vcounter_at(end, "sim.cache", "l2_misses", stats.l2.misses as i64);
            tango_obs::vcounter_at(end, "sim.cache", "dram_accesses", stats.dram_accesses as i64);
            tango_obs::vcounter_at(end, "sim.inst", "warp_instructions", stats.warp_instructions as i64);
            tango_obs::vcounter_at(end, "sim.inst", "thread_instructions", stats.thread_instructions as i64);
            for (reason, count) in stats.stalls.iter() {
                if count > 0 {
                    tango_obs::vcounter_at(end, "sim.stall", reason.name(), count as i64);
                }
            }
            for (i, sm) in self.sms.iter().enumerate() {
                if sm.peak_threads > 0 {
                    let name = format!("sm{i}_peak_threads");
                    tango_obs::vcounter_at(end, "sim.occupancy", &name, sm.peak_threads as i64);
                }
            }
            tango_obs::vspan_end_at(end, "sim.launch", self.program.name());
            tango_obs::advance_virtual(stats.cycles);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerPolicy;
    use crate::stats::StallReason;
    use tango_isa::{CmpOp, DType, KernelBuilder, Operand};

    fn saxpy_program() -> KernelProgram {
        // y[tid] = a * x[tid] + y[tid]
        let mut b = KernelBuilder::new("saxpy");
        let tid = b.global_tid_x();
        let off = b.reg();
        let xa = b.reg();
        let ya = b.reg();
        let xv = b.reg();
        let yv = b.reg();
        let x_base = b.load_param(0);
        let y_base = b.load_param(1);
        let a_bits = b.load_param(2);
        b.shl(DType::U32, off, tid.into(), Operand::imm_u32(2));
        b.add(DType::U32, xa, off.into(), x_base.into());
        b.add(DType::U32, ya, off.into(), y_base.into());
        b.ld_global(DType::F32, xv, xa, 0);
        b.ld_global(DType::F32, yv, ya, 0);
        b.mad(DType::F32, yv, a_bits.into(), xv.into(), yv.into());
        b.st_global(DType::F32, ya, 0, yv);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn saxpy_computes_correctly_end_to_end() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let n = 256;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
        let x_addr = gpu.upload_f32s(&x);
        let y_addr = gpu.upload_f32s(&y);
        let params = [x_addr, y_addr, 0.5f32.to_bits()];
        let stats = gpu.launch(
            &saxpy_program(),
            Dim3::x(n as u32 / 64),
            Dim3::x(64),
            &params,
            0,
            &SimOptions::new(),
        );
        let out = gpu.download_f32s(y_addr, n);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 0.5 * i as f32 + (i * 2) as f32, "element {i}");
        }
        assert!(stats.cycles > 0);
        assert!(stats.warp_instructions > 0);
        assert_eq!(stats.ctas_total, 4);
        assert!(stats.energy.total() > 0.0);
        assert!(stats.peak_power_w > 0.0);
    }

    #[test]
    fn multi_cta_grid_covers_all_blocks() {
        let mut gpu = Gpu::new(GpuConfig::tx1());
        let n = 1024usize;
        let x_addr = gpu.upload_f32s(&vec![1.0; n]);
        let y_addr = gpu.upload_f32s(&vec![0.0; n]);
        let params = [x_addr, y_addr, 2.0f32.to_bits()];
        gpu.launch(
            &saxpy_program(),
            Dim3::x(n as u32 / 32),
            Dim3::x(32),
            &params,
            0,
            &SimOptions::new().with_cta_sample_limit(None),
        );
        let out = gpu.download_f32s(y_addr, n);
        assert!(out.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn cta_sampling_scales_statistics() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let n = 4096usize;
        let x_addr = gpu.upload_f32s(&vec![1.0; n]);
        let y_addr = gpu.upload_f32s(&vec![0.0; n]);
        let params = [x_addr, y_addr, 2.0f32.to_bits()];
        let full = gpu.launch(
            &saxpy_program(),
            Dim3::x(128),
            Dim3::x(32),
            &params,
            0,
            &SimOptions::new().with_cta_sample_limit(None),
        );
        let mut gpu2 = Gpu::new(GpuConfig::gp102());
        let x2 = gpu2.upload_f32s(&vec![1.0; n]);
        let y2 = gpu2.upload_f32s(&vec![0.0; n]);
        let params2 = [x2, y2, 2.0f32.to_bits()];
        let sampled = gpu2.launch(
            &saxpy_program(),
            Dim3::x(128),
            Dim3::x(32),
            &params2,
            0,
            &SimOptions::new().with_cta_sample_limit(Some(32)),
        );
        assert_eq!(sampled.ctas_simulated, 32);
        assert_eq!(sampled.ctas_total, 128);
        // Extrapolated instruction count matches the full run exactly
        // (every CTA executes the identical program).
        assert_eq!(sampled.warp_instructions, full.warp_instructions);
    }

    #[test]
    fn l1_disabled_pushes_traffic_to_l2() {
        let reuse_program = || {
            // Every thread reads the SAME 512 floats: extreme reuse.
            let mut b = KernelBuilder::new("reuse");
            let i = b.reg();
            let acc = b.reg();
            let addr = b.reg();
            let v = b.reg();
            let p = b.pred();
            let base = b.load_param(0);
            b.mov(DType::U32, i, Operand::imm_u32(0));
            b.mov(DType::F32, acc, Operand::imm_f32(0.0));
            let top = b.place_new_label();
            b.shl(DType::U32, addr, i.into(), Operand::imm_u32(2));
            b.add(DType::U32, addr, addr.into(), base.into());
            b.ld_global(DType::F32, v, addr, 0);
            b.add(DType::F32, acc, acc.into(), v.into());
            b.add(DType::U32, i, i.into(), Operand::imm_u32(1));
            b.set(CmpOp::Lt, DType::U32, p, i.into(), Operand::imm_u32(512));
            b.bra_if(p, true, top);
            b.exit();
            b.build().unwrap()
        };
        let mut with_l1 = Gpu::new(GpuConfig::gp102());
        let buf = with_l1.upload_f32s(&vec![1.0; 512]);
        let s1 = with_l1.launch(&reuse_program(), Dim3::x(4), Dim3::x(128), &[buf], 0, &SimOptions::new());
        let mut no_l1 = Gpu::new(GpuConfig::gp102());
        let buf2 = no_l1.upload_f32s(&vec![1.0; 512]);
        let s2 = no_l1.launch(
            &reuse_program(),
            Dim3::x(4),
            Dim3::x(128),
            &[buf2],
            0,
            &SimOptions::new().with_l1d_bytes(0),
        );
        assert!(s1.l1d.accesses > 0);
        assert_eq!(s2.l1d.accesses, 0);
        assert!(s2.l2.accesses > s1.l2.accesses * 5, "L2 should absorb the reuse traffic");
        assert!(s2.cycles > s1.cycles, "no-L1 run should be slower");
    }

    #[test]
    fn schedulers_all_complete_with_same_results() {
        let n = 512usize;
        let mut outputs = Vec::new();
        for policy in SchedulerPolicy::ALL {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let x_addr = gpu.upload_f32s(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
            let y_addr = gpu.upload_f32s(&vec![1.0; n]);
            let params = [x_addr, y_addr, 3.0f32.to_bits()];
            let stats = gpu.launch(
                &saxpy_program(),
                Dim3::x(8),
                Dim3::x(64),
                &params,
                0,
                &SimOptions::new().with_scheduler(policy),
            );
            assert!(stats.cycles > 0, "{policy} should complete");
            outputs.push(gpu.download_f32s(y_addr, n));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn stall_samples_are_collected() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let n = 2048usize;
        let x_addr = gpu.upload_f32s(&vec![1.0; n]);
        let y_addr = gpu.upload_f32s(&vec![0.0; n]);
        let params = [x_addr, y_addr, 1.0f32.to_bits()];
        let stats = gpu.launch(&saxpy_program(), Dim3::x(16), Dim3::x(128), &params, 0, &SimOptions::new());
        assert!(stats.stalls.total() > 0);
        // A streaming kernel must show memory-related stalls.
        let memish = stats.stalls.count(StallReason::MemoryDependency)
            + stats.stalls.count(StallReason::MemoryThrottle);
        assert!(memish > 0);
    }

    #[test]
    fn footprint_tracks_uploads() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        assert_eq!(gpu.memory_footprint_bytes(), 0);
        let _ = gpu.upload_f32s(&vec![0.0; 1000]);
        assert!(gpu.memory_footprint_bytes() >= 4000);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn missing_params_panic() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        gpu.launch(&saxpy_program(), Dim3::x(1), Dim3::x(32), &[], 0, &SimOptions::new());
    }

    fn scale_program() -> KernelProgram {
        // out[tid] = 2 * x[tid] — pure (output disjoint from input), so
        // replica CTAs write identical values and batching is idempotent.
        let mut b = KernelBuilder::new("scale");
        let tid = b.global_tid_x();
        let off = b.reg();
        let xa = b.reg();
        let oa = b.reg();
        let v = b.reg();
        let x_base = b.load_param(0);
        let o_base = b.load_param(1);
        b.shl(DType::U32, off, tid.into(), Operand::imm_u32(2));
        b.add(DType::U32, xa, off.into(), x_base.into());
        b.add(DType::U32, oa, off.into(), o_base.into());
        b.ld_global(DType::F32, v, xa, 0);
        b.add(DType::F32, v, v.into(), v.into());
        b.st_global(DType::F32, oa, 0, v);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn stepwise_launch_matches_one_shot() {
        let n = 1024usize;
        let run = |stepwise: bool| {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let x_addr = gpu.upload_f32s(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
            let o_addr = gpu.alloc_bytes(n as u32 * 4);
            let params = [x_addr, o_addr];
            let program = scale_program();
            let opts = SimOptions::new();
            let stats = if stepwise {
                let mut frame = gpu.begin_launch(&program, Dim3::x(16), Dim3::x(64), &params, 0, &opts);
                let mut steps = 0u32;
                while frame.step(7) == StepStatus::Running {
                    steps += 1;
                    assert!(steps < 1_000_000, "frame never completed");
                }
                assert!(frame.is_done());
                frame.finish()
            } else {
                gpu.launch(&program, Dim3::x(16), Dim3::x(64), &params, 0, &opts)
            };
            (stats, gpu.download_f32s(o_addr, n))
        };
        let (one_shot, out_a) = run(false);
        let (stepped, out_b) = run(true);
        assert_eq!(out_a, out_b);
        // Byte-identical statistics: slicing only chunks the same loop.
        assert_eq!(format!("{one_shot:?}"), format!("{stepped:?}"));
    }

    #[test]
    fn interleaved_frames_on_two_devices_match_serial() {
        let n = 512usize;
        let serial = |dim: u32| {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let x_addr = gpu.upload_f32s(&vec![1.5; n]);
            let o_addr = gpu.alloc_bytes(n as u32 * 4);
            let stats = gpu.launch(&scale_program(), Dim3::x(dim), Dim3::x(64), &[x_addr, o_addr], 0, &SimOptions::new());
            stats.cycles
        };
        let (a_cycles, b_cycles) = (serial(8), serial(4));

        let mut gpu_a = Gpu::new(GpuConfig::gp102());
        let mut gpu_b = Gpu::new(GpuConfig::gp102());
        let xa = gpu_a.upload_f32s(&vec![1.5; n]);
        let oa = gpu_a.alloc_bytes(n as u32 * 4);
        let xb = gpu_b.upload_f32s(&vec![1.5; n]);
        let ob = gpu_b.alloc_bytes(n as u32 * 4);
        let pa = scale_program();
        let pb = scale_program();
        let opts = SimOptions::new();
        let mut fa = gpu_a.begin_launch(&pa, Dim3::x(8), Dim3::x(64), &[xa, oa], 0, &opts);
        let mut fb = gpu_b.begin_launch(&pb, Dim3::x(4), Dim3::x(64), &[xb, ob], 0, &opts);
        // Ping-pong between the two devices a quantum at a time.
        loop {
            let sa = fa.step(16);
            let sb = fb.step(16);
            if sa == StepStatus::Done && sb == StepStatus::Done {
                break;
            }
        }
        assert_eq!(fa.finish().cycles, a_cycles);
        assert_eq!(fb.finish().cycles, b_cycles);
    }

    #[test]
    fn batched_launch_preserves_outputs() {
        let n = 256usize;
        let run = |batch: u32| {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let x_addr = gpu.upload_f32s(&(0..n).map(|i| i as f32 * 0.25).collect::<Vec<_>>());
            let o_addr = gpu.alloc_bytes(n as u32 * 4);
            let stats = gpu.launch(
                &scale_program(),
                Dim3::x(4),
                Dim3::x(64),
                &[x_addr, o_addr],
                0,
                &SimOptions::new().with_batch(batch),
            );
            (stats, gpu.download_f32s(o_addr, n))
        };
        let (s1, out1) = run(1);
        let (s8, out8) = run(8);
        assert_eq!(out1, out8, "batch replication must not change outputs");
        assert_eq!(s1.ctas_total, 4);
        assert_eq!(s8.ctas_total, 32);
        // A 4-CTA grid nowhere near fills a GP102; batching it 8x mostly
        // fills idle SMs, so the cost grows sublinearly. (It can even come
        // in *under* the unbatched run: replica CTAs touch identical cache
        // lines, so their requests merge in the MSHRs.)
        assert!(s8.cycles < 8 * s1.cycles, "small grids must batch sublinearly");
    }

    #[test]
    fn batched_launch_scales_sampled_grids() {
        // A grid already past the sample limit: batching multiplies
        // ctas_total and extrapolated work linearly.
        let n = 64 * 256usize;
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let x_addr = gpu.upload_f32s(&vec![1.0; n]);
        let o_addr = gpu.alloc_bytes(n as u32 * 4);
        let opts = SimOptions::new().with_cta_sample_limit(Some(16));
        let s1 = gpu.launch(&scale_program(), Dim3::x(256), Dim3::x(64), &[x_addr, o_addr], 0, &opts);
        let s4 = gpu.launch(
            &scale_program(),
            Dim3::x(256),
            Dim3::x(64),
            &[x_addr, o_addr],
            0,
            &opts.clone().with_batch(4),
        );
        assert_eq!(s1.ctas_total, 256);
        assert_eq!(s4.ctas_total, 1024);
        assert_eq!(s4.ctas_simulated, 16);
        assert!(s4.warp_instructions > 3 * s1.warp_instructions);
    }

    #[test]
    fn register_stats_are_populated() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let n = 128usize;
        let x_addr = gpu.upload_f32s(&vec![1.0; n]);
        let y_addr = gpu.upload_f32s(&vec![0.0; n]);
        let params = [x_addr, y_addr, 1.0f32.to_bits()];
        let stats = gpu.launch(&saxpy_program(), Dim3::x(2), Dim3::x(64), &params, 0, &SimOptions::new());
        assert!(stats.regs_per_thread >= 6);
        assert!(stats.live_regs_per_thread <= stats.regs_per_thread);
        assert!(stats.max_resident_threads >= 64);
        assert!(stats.allocated_reg_bytes_per_sm() >= stats.live_reg_bytes_per_sm());
    }
}
