//! Warp state and the functional interpreter.
//!
//! The simulator is execution-driven: when the SM issues a warp-instruction
//! the interpreter here actually performs it (reads simulated device memory,
//! does the arithmetic across the 32 lanes, writes results), so the output
//! of a simulated kernel is bit-comparable against the `tango-tensor`
//! reference operators. Timing (latencies, cache behaviour) is layered on
//! top by `sm.rs`.

use crate::mem::GlobalMemory;
use crate::memo::MemoRecorder;
use tango_isa::{AddrSpace, CmpOp, DType, Dim3, Instruction, KernelProgram, Opcode, Operand, Special};

/// Reconvergence value meaning "no reconvergence point" (the base stack
/// entry).
const NO_RECONV: u32 = u32::MAX;

/// What kind of result a pending register write is waiting on, for stall
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum PendKind {
    /// Nothing pending.
    #[default]
    None,
    /// Arithmetic pipeline result.
    Alu,
    /// Global/local memory load.
    Mem,
    /// Constant-cache load.
    Const,
    /// Shared-memory load.
    Shared,
}

/// One SIMT reconvergence stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StackEntry {
    pub mask: u32,
    pub pc: u32,
    pub reconv: u32,
}

/// Per-warp architectural and micro-architectural state.
#[derive(Debug, Clone)]
pub(crate) struct Warp {
    /// Slot of the owning CTA within the SM.
    pub cta_slot: usize,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// SIMT stack; the last entry is active.
    pub stack: Vec<StackEntry>,
    /// Reconvergence point armed by the most recent `ssy`.
    pub pending_reconv: u32,
    /// Register values, `reg * 32 + lane`.
    pub regs: Vec<u32>,
    /// Predicate registers, one 32-lane mask each.
    pub preds: Vec<u32>,
    /// Cycle at which each register's pending write completes.
    pub reg_ready: Vec<u64>,
    /// What the pending write (if any) is waiting on.
    pub reg_pend: Vec<PendKind>,
    /// Cycle at which each predicate's pending write completes.
    pub pred_ready: Vec<u64>,
    /// Cycle at which the next instruction is available (branch bubble).
    pub fetch_ready: u64,
    /// Waiting at a block barrier.
    pub at_barrier: bool,
    /// All lanes exited.
    pub done: bool,
}

impl Warp {
    /// Creates a warp whose initial mask covers `active_lanes` lanes.
    pub fn new(cta_slot: usize, warp_in_cta: u32, active_lanes: u32, reg_count: u32, pred_count: u32) -> Self {
        let mask = if active_lanes >= 32 {
            u32::MAX
        } else {
            (1u32 << active_lanes) - 1
        };
        Warp {
            cta_slot,
            warp_in_cta,
            stack: vec![StackEntry {
                mask,
                pc: 0,
                reconv: NO_RECONV,
            }],
            pending_reconv: NO_RECONV,
            regs: vec![0; (reg_count as usize) * 32],
            preds: vec![0; pred_count as usize],
            reg_ready: vec![0; reg_count as usize],
            reg_pend: vec![PendKind::None; reg_count as usize],
            pred_ready: vec![0; pred_count as usize],
            fetch_ready: 0,
            at_barrier: false,
            done: false,
        }
    }

    /// The active stack entry.
    pub fn top(&self) -> &StackEntry {
        self.stack.last().expect("warp stack never empty while running")
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.top().pc
    }

    /// Debug helper: current active mask.
    pub fn mask_debug(&self) -> u32 {
        self.top().mask
    }

    fn top_mut(&mut self) -> &mut StackEntry {
        self.stack.last_mut().expect("warp stack never empty while running")
    }

    /// Pops entries whose pc reached their reconvergence point.
    fn reconverge(&mut self) {
        while self.stack.len() > 1 {
            let top = *self.top();
            if top.pc == top.reconv || top.mask == 0 {
                self.stack.pop();
            } else {
                break;
            }
        }
    }
}

/// Per-CTA execution context handed to the interpreter.
pub(crate) struct ExecCtx<'a> {
    pub mem: &'a mut GlobalMemory,
    pub smem: &'a mut [u8],
    pub params: &'a [u32],
    pub block: Dim3,
    pub grid: Dim3,
    pub cta: (u32, u32, u32),
    pub line_bytes: u32,
    /// Reused line-coalescing buffer (avoids a per-memory-instruction
    /// allocation); the interpreter takes it, fills it, and hands it back
    /// through [`ExecOutcome::global_lines`].
    pub lines_scratch: &'a mut Vec<u32>,
    /// Launch memo recorder, when this launch is being recorded.
    pub rec: Option<&'a mut MemoRecorder>,
}

/// Micro-architecturally relevant facts about one executed warp-instruction.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExecOutcome {
    /// Lanes that actually executed (after guard masking).
    pub exec_lanes: u32,
    /// Unique global-memory line addresses touched.
    pub global_lines: Vec<u32>,
    /// Whether the global access was a store.
    pub global_is_store: bool,
    /// Shared-memory accesses performed (lane granularity).
    pub shared_accesses: u32,
    /// Whether constant memory was read.
    pub const_access: bool,
    /// Whether the pc was redirected (taken branch — costs a fetch bubble).
    pub redirect: bool,
    /// Whether the warp arrived at a barrier.
    pub did_barrier: bool,
    /// Whether the warp fully exited.
    pub warp_finished: bool,
}

fn lane_thread_coords(warp_in_cta: u32, lane: u32, block: Dim3) -> (u32, u32, u32) {
    let linear = warp_in_cta * 32 + lane;
    let tx = linear % block.x;
    let ty = (linear / block.x) % block.y;
    let tz = linear / (block.x * block.y);
    (tx, ty, tz)
}

/// One operand pre-resolved per warp-instruction: everything warp-uniform
/// (immediates, CTA coordinates, grid/block dimensions) folds to a constant
/// up front, so the 32-lane loop only distinguishes register reads from
/// constants instead of re-matching the full operand enum per lane.
#[derive(Clone, Copy)]
enum LaneSrc {
    /// Missing operand (reads as zero, matching the old `Option` chain).
    Zero,
    /// Register file read; payload is `reg * 32`.
    Reg(usize),
    /// Warp-uniform constant.
    Imm(u32),
    TidX,
    TidY,
    TidZ,
}

fn resolve(op: Option<&Operand>, ctx: &ExecCtx<'_>) -> LaneSrc {
    match op {
        None => LaneSrc::Zero,
        Some(Operand::Reg(r)) => LaneSrc::Reg(r.0 as usize * 32),
        Some(Operand::Imm(bits)) => LaneSrc::Imm(*bits),
        Some(Operand::Special(s)) => match s {
            Special::TidX => LaneSrc::TidX,
            Special::TidY => LaneSrc::TidY,
            Special::TidZ => LaneSrc::TidZ,
            Special::CtaIdX => LaneSrc::Imm(ctx.cta.0),
            Special::CtaIdY => LaneSrc::Imm(ctx.cta.1),
            Special::CtaIdZ => LaneSrc::Imm(ctx.cta.2),
            Special::NTidX => LaneSrc::Imm(ctx.block.x),
            Special::NTidY => LaneSrc::Imm(ctx.block.y),
            Special::NTidZ => LaneSrc::Imm(ctx.block.z),
            Special::NCtaIdX => LaneSrc::Imm(ctx.grid.x),
            Special::NCtaIdY => LaneSrc::Imm(ctx.grid.y),
            Special::NCtaIdZ => LaneSrc::Imm(ctx.grid.z),
        },
    }
}

#[inline(always)]
fn fetch(src: LaneSrc, regs: &[u32], warp_in_cta: u32, lane: u32, block: Dim3) -> u32 {
    match src {
        LaneSrc::Zero => 0,
        LaneSrc::Reg(base) => regs[base + lane as usize],
        LaneSrc::Imm(v) => v,
        LaneSrc::TidX => lane_thread_coords(warp_in_cta, lane, block).0,
        LaneSrc::TidY => lane_thread_coords(warp_in_cta, lane, block).1,
        LaneSrc::TidZ => lane_thread_coords(warp_in_cta, lane, block).2,
    }
}

/// ALU evaluation of one lane. `bits` inputs are raw register contents.
fn alu(op: Opcode, dtype: DType, a: u32, b: u32, c: u32, cmp: Option<CmpOp>, src_dtype: Option<DType>) -> u32 {
    use DType::*;
    let fa = f32::from_bits(a);
    let fb = f32::from_bits(b);
    let fc = f32::from_bits(c);
    let narrow = |v: u32| -> u32 {
        match dtype {
            U16 => v & 0xFFFF,
            S16 => ((v as i32) << 16 >> 16) as u32,
            _ => v,
        }
    };
    match op {
        Opcode::Mov => narrow(a),
        Opcode::Add => match dtype {
            F32 => (fa + fb).to_bits(),
            _ => narrow(a.wrapping_add(b)),
        },
        Opcode::Sub => match dtype {
            F32 => (fa - fb).to_bits(),
            _ => narrow(a.wrapping_sub(b)),
        },
        Opcode::Mul => match dtype {
            F32 => (fa * fb).to_bits(),
            _ => narrow(a.wrapping_mul(b)),
        },
        Opcode::Mad | Opcode::Mad24 => match dtype {
            F32 => (fa * fb + fc).to_bits(),
            _ => narrow(a.wrapping_mul(b).wrapping_add(c)),
        },
        Opcode::Min => match dtype {
            F32 => fa.min(fb).to_bits(),
            S32 | S16 => ((a as i32).min(b as i32)) as u32,
            _ => a.min(b),
        },
        Opcode::Max => match dtype {
            F32 => fa.max(fb).to_bits(),
            S32 | S16 => ((a as i32).max(b as i32)) as u32,
            _ => a.max(b),
        },
        Opcode::Abs => match dtype {
            F32 => fa.abs().to_bits(),
            S32 | S16 => ((a as i32).wrapping_abs()) as u32,
            _ => a,
        },
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => narrow(a.wrapping_shl(b & 31)),
        Opcode::Shr => match dtype {
            S32 | S16 => ((a as i32) >> (b & 31)) as u32,
            _ => a.wrapping_shr(b & 31),
        },
        Opcode::Rcp => (1.0 / fa).to_bits(),
        Opcode::Rsqrt => (1.0 / fa.sqrt()).to_bits(),
        Opcode::Ex2 => fa.exp2().to_bits(),
        Opcode::Cvt => {
            let src = src_dtype.expect("validated cvt has src dtype");
            // Decode source value to a canonical f64, then encode to dest.
            let val: f64 = match src {
                F32 => f32::from_bits(a) as f64,
                S32 => (a as i32) as f64,
                U32 => a as f64,
                U16 => (a & 0xFFFF) as f64,
                S16 => (((a as i32) << 16) >> 16) as f64,
                Pred => (a != 0) as u32 as f64,
            };
            match dtype {
                F32 => (val as f32).to_bits(),
                S32 => (val as i32) as u32,
                U32 => val as u32,
                U16 => (val as u32) & 0xFFFF,
                S16 => (((val as i32) << 16) >> 16) as u32,
                Pred => (val != 0.0) as u32,
            }
        }
        Opcode::Set => {
            let cmp = cmp.expect("validated set has cmp");
            let t = match dtype {
                F32 => cmp.eval_f32(fa, fb),
                S32 | S16 => cmp.eval_s32(a as i32, b as i32),
                _ => cmp.eval_u32(a, b),
            };
            t as u32
        }
        _ => 0,
    }
}

/// Executes one warp-instruction functionally and updates the warp's
/// control state. Returns the outcome facts the SM needs for timing,
/// caching, and power accounting.
///
/// # Panics
///
/// Panics if a lane computes a global address outside every allocation —
/// that is a generated-kernel bug and aborting with the kernel state is the
/// most debuggable behaviour.
pub(crate) fn execute(warp: &mut Warp, program: &KernelProgram, ctx: &mut ExecCtx<'_>) -> ExecOutcome {
    let top = *warp.top();
    let pc = top.pc;
    let inst: &Instruction = &program.instructions()[pc as usize];
    let mut out = ExecOutcome::default();

    // Guard evaluation (for non-branch ops it masks lanes; for branches it
    // is the branch condition).
    let guard_mask = match inst.guard {
        None => top.mask,
        Some((p, sense)) => {
            let bits = warp.preds[p.0 as usize];
            let m = if sense { bits } else { !bits };
            top.mask & m
        }
    };

    match inst.op {
        Opcode::Bra => {
            let taken = guard_mask;
            out.exec_lanes = top.mask.count_ones();
            let target = inst.target.expect("validated bra has target");
            if taken == 0 {
                warp.top_mut().pc += 1;
            } else if taken == top.mask {
                warp.top_mut().pc = target;
                out.redirect = true;
            } else {
                // Divergence: split into fall-through and taken paths that
                // reconverge at the innermost `ssy` point.
                let reconv = warp.pending_reconv;
                let fall = top.mask & !taken;
                warp.top_mut().pc = reconv; // base resumes at reconvergence
                warp.stack.push(StackEntry {
                    mask: fall,
                    pc: pc + 1,
                    reconv,
                });
                warp.stack.push(StackEntry {
                    mask: taken,
                    pc: target,
                    reconv,
                });
                out.redirect = true;
            }
        }
        Opcode::Ssy => {
            warp.pending_reconv = inst.target.expect("validated ssy has target");
            warp.top_mut().pc += 1;
            out.exec_lanes = top.mask.count_ones();
        }
        Opcode::Bar => {
            warp.at_barrier = true;
            warp.top_mut().pc += 1;
            out.did_barrier = true;
            out.exec_lanes = top.mask.count_ones();
        }
        Opcode::Exit => {
            let exited = guard_mask;
            out.exec_lanes = exited.count_ones();
            for entry in &mut warp.stack {
                entry.mask &= !exited;
            }
            if inst.guard.is_some() && guard_mask != top.mask {
                // Some lanes continue.
                warp.top_mut().pc += 1;
            } else {
                // Whole active path exited; unwind to a live entry.
                while warp.stack.len() > 1 && warp.top().mask == 0 {
                    warp.stack.pop();
                }
            }
            if warp.stack.iter().all(|e| e.mask == 0) {
                warp.done = true;
                out.warp_finished = true;
            }
        }
        Opcode::Nop | Opcode::Callp | Opcode::Retp => {
            out.exec_lanes = guard_mask.count_ones().max(1);
            warp.top_mut().pc += 1;
        }
        Opcode::Ld => {
            let space = inst.space.expect("validated ld has space");
            let dst = inst.dst.expect("validated ld has dst");
            out.exec_lanes = guard_mask.count_ones();
            let base = resolve(inst.srcs.first(), ctx);
            let off = inst.offset as u32;
            let dbase = (dst.0 as usize) * 32;
            let wide = inst.dtype.byte_width() != 2;
            let (wic, blk) = (warp.warp_in_cta, ctx.block);
            match space {
                AddrSpace::Const => {
                    out.const_access = true;
                    let mut m = guard_mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let addr = fetch(base, &warp.regs, wic, lane, blk).wrapping_add(off);
                        let v = ctx.params.get((addr / 4) as usize).copied().unwrap_or(0);
                        warp.regs[dbase + lane as usize] = v;
                    }
                }
                AddrSpace::Shared => {
                    let mut m = guard_mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        out.shared_accesses += 1;
                        let addr = fetch(base, &warp.regs, wic, lane, blk).wrapping_add(off) as usize;
                        let v = if wide {
                            u32::from_le_bytes([
                                ctx.smem[addr],
                                ctx.smem[addr + 1],
                                ctx.smem[addr + 2],
                                ctx.smem[addr + 3],
                            ])
                        } else {
                            u16::from_le_bytes([ctx.smem[addr], ctx.smem[addr + 1]]) as u32
                        };
                        warp.regs[dbase + lane as usize] = v;
                    }
                }
                AddrSpace::Global => {
                    let mut lines = std::mem::take(ctx.lines_scratch);
                    lines.clear();
                    let mut m = guard_mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let addr = fetch(base, &warp.regs, wic, lane, blk).wrapping_add(off);
                        let v = if wide {
                            ctx.mem.read_u32(addr)
                        } else {
                            ctx.mem.read_u16(addr) as u32
                        };
                        if let Some(r) = ctx.rec.as_deref_mut() {
                            r.on_global_read(addr, wide, v);
                        }
                        warp.regs[dbase + lane as usize] = v;
                        let line = addr / ctx.line_bytes;
                        if !lines.contains(&line) {
                            lines.push(line);
                        }
                    }
                    out.global_lines = lines;
                }
            }
            warp.top_mut().pc += 1;
        }
        Opcode::St => {
            let space = inst.space.expect("validated st has space");
            out.exec_lanes = guard_mask.count_ones();
            let base = resolve(inst.srcs.first(), ctx);
            let val = resolve(inst.srcs.get(1), ctx);
            let off = inst.offset as u32;
            let wide = inst.dtype.byte_width() != 2;
            let (wic, blk) = (warp.warp_in_cta, ctx.block);
            match space {
                AddrSpace::Shared => {
                    let mut m = guard_mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        out.shared_accesses += 1;
                        let addr = fetch(base, &warp.regs, wic, lane, blk).wrapping_add(off) as usize;
                        let value = fetch(val, &warp.regs, wic, lane, blk);
                        if wide {
                            ctx.smem[addr..addr + 4].copy_from_slice(&value.to_le_bytes());
                        } else {
                            ctx.smem[addr..addr + 2].copy_from_slice(&(value as u16).to_le_bytes());
                        }
                    }
                }
                AddrSpace::Global => {
                    let mut lines = std::mem::take(ctx.lines_scratch);
                    lines.clear();
                    let mut m = guard_mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let addr = fetch(base, &warp.regs, wic, lane, blk).wrapping_add(off);
                        let value = fetch(val, &warp.regs, wic, lane, blk);
                        if wide {
                            ctx.mem.write_u32(addr, value);
                        } else {
                            ctx.mem.write_u16(addr, value as u16);
                        }
                        if let Some(r) = ctx.rec.as_deref_mut() {
                            r.on_global_write(addr, wide, value);
                        }
                        let line = addr / ctx.line_bytes;
                        if !lines.contains(&line) {
                            lines.push(line);
                        }
                    }
                    out.global_lines = lines;
                    out.global_is_store = true;
                }
                AddrSpace::Const => panic!("stores to constant memory are not representable"),
            }
            warp.top_mut().pc += 1;
        }
        Opcode::Set => {
            out.exec_lanes = guard_mask.count_ones();
            let sa = resolve(inst.srcs.first(), ctx);
            let sb = resolve(inst.srcs.get(1), ctx);
            let (wic, blk) = (warp.warp_in_cta, ctx.block);
            let dbase = inst.dst.map(|d| (d.0 as usize) * 32);
            let mut bits_new = 0u32;
            let mut m = guard_mask;
            while m != 0 {
                let lane = m.trailing_zeros();
                m &= m - 1;
                let a = fetch(sa, &warp.regs, wic, lane, blk);
                let b = fetch(sb, &warp.regs, wic, lane, blk);
                let t = alu(Opcode::Set, inst.dtype, a, b, 0, inst.cmp, None);
                if t != 0 {
                    bits_new |= 1 << lane;
                }
                if let Some(dbase) = dbase {
                    warp.regs[dbase + lane as usize] = t;
                }
            }
            if let Some(p) = inst.pdst {
                let old = warp.preds[p.0 as usize];
                warp.preds[p.0 as usize] = (old & !guard_mask) | bits_new;
            }
            warp.top_mut().pc += 1;
        }
        _ => {
            // Plain ALU.
            out.exec_lanes = guard_mask.count_ones();
            if let Some(dst) = inst.dst {
                let sa = resolve(inst.srcs.first(), ctx);
                let sb = resolve(inst.srcs.get(1), ctx);
                let sc = resolve(inst.srcs.get(2), ctx);
                let (wic, blk) = (warp.warp_in_cta, ctx.block);
                let dbase = (dst.0 as usize) * 32;
                let (op, dtype) = (inst.op, inst.dtype);
                let mut m = guard_mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let a = fetch(sa, &warp.regs, wic, lane, blk);
                    let b = fetch(sb, &warp.regs, wic, lane, blk);
                    let c = fetch(sc, &warp.regs, wic, lane, blk);
                    let v = alu(op, dtype, a, b, c, inst.cmp, inst.src_dtype);
                    warp.regs[dbase + lane as usize] = v;
                }
            }
            warp.top_mut().pc += 1;
        }
    }

    warp.reconverge();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_isa::{CmpOp, KernelBuilder, Operand};

    fn ctx<'a>(
        mem: &'a mut GlobalMemory,
        smem: &'a mut [u8],
        params: &'a [u32],
        scratch: &'a mut Vec<u32>,
    ) -> ExecCtx<'a> {
        ExecCtx {
            mem,
            smem,
            params,
            block: Dim3::x(32),
            grid: Dim3::x(1),
            cta: (0, 0, 0),
            line_bytes: 128,
            lines_scratch: scratch,
            rec: None,
        }
    }

    fn run_to_completion(warp: &mut Warp, program: &KernelProgram, ctx: &mut ExecCtx<'_>) -> u32 {
        let mut steps = 0;
        while !warp.done {
            execute(warp, program, ctx);
            steps += 1;
            assert!(steps < 100_000, "kernel did not terminate");
        }
        steps
    }

    #[test]
    fn lane_arithmetic_uses_tid() {
        // out[tid] = tid * 2
        let mut b = KernelBuilder::new("t");
        let tid = b.reg();
        let addr = b.reg();
        let v = b.reg();
        b.tid_x(tid);
        let base = b.load_param(0);
        b.shl(DType::U32, v, tid.into(), Operand::imm_u32(1));
        b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
        b.add(DType::U32, addr, addr.into(), base.into());
        b.st_global(DType::U32, addr, 0, v);
        b.exit();
        let p = b.build().unwrap();

        let mut mem = GlobalMemory::new();
        let out_buf = mem.alloc(32 * 4);
        let params = [out_buf];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, p.register_count(), 1.max(p.pred_count()));
        run_to_completion(&mut w, &p, &mut c);
        for lane in 0..32u32 {
            assert_eq!(mem.read_u32(out_buf + lane * 4), lane * 2);
        }
    }

    #[test]
    fn uniform_loop_terminates_with_correct_sum() {
        // acc = sum(0..10) stored to out[tid].
        let mut b = KernelBuilder::new("loop");
        let i = b.reg();
        let acc = b.reg();
        let p = b.pred();
        b.mov(DType::U32, i, Operand::imm_u32(0));
        b.mov(DType::U32, acc, Operand::imm_u32(0));
        let top = b.place_new_label();
        b.add(DType::U32, acc, acc.into(), i.into());
        b.add(DType::U32, i, i.into(), Operand::imm_u32(1));
        b.set(CmpOp::Lt, DType::U32, p, i.into(), Operand::imm_u32(10));
        b.bra_if(p, true, top);
        let tid = b.reg();
        let addr = b.reg();
        b.tid_x(tid);
        let base = b.load_param(0);
        b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
        b.add(DType::U32, addr, addr.into(), base.into());
        b.st_global(DType::U32, addr, 0, acc);
        b.exit();
        let prog = b.build().unwrap();

        let mut mem = GlobalMemory::new();
        let out = mem.alloc(32 * 4);
        let params = [out];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, prog.register_count(), prog.pred_count().max(1));
        run_to_completion(&mut w, &prog, &mut c);
        assert_eq!(mem.read_u32(out), 45);
        assert_eq!(mem.read_u32(out + 31 * 4), 45);
    }

    #[test]
    fn divergent_branch_reconverges() {
        // if (tid < 16) out = 1 else out = 2; then out += 10 for everyone.
        let mut b = KernelBuilder::new("div");
        let tid = b.reg();
        let v = b.reg();
        let addr = b.reg();
        let p = b.pred();
        b.tid_x(tid);
        let base = b.load_param(0);
        let l_else = b.label();
        let l_join = b.label();
        b.ssy(l_join);
        b.set(CmpOp::Ge, DType::U32, p, tid.into(), Operand::imm_u32(16));
        b.bra_if(p, true, l_else);
        b.mov(DType::U32, v, Operand::imm_u32(1));
        b.bra(l_join);
        b.place(l_else);
        b.mov(DType::U32, v, Operand::imm_u32(2));
        b.place(l_join);
        b.add(DType::U32, v, v.into(), Operand::imm_u32(10));
        b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
        b.add(DType::U32, addr, addr.into(), base.into());
        b.st_global(DType::U32, addr, 0, v);
        b.exit();
        let prog = b.build().unwrap();

        let mut mem = GlobalMemory::new();
        let out = mem.alloc(32 * 4);
        let params = [out];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, prog.register_count(), prog.pred_count().max(1));
        run_to_completion(&mut w, &prog, &mut c);
        for lane in 0..32u32 {
            let expect = if lane < 16 { 11 } else { 12 };
            assert_eq!(mem.read_u32(out + lane * 4), expect, "lane {lane}");
        }
    }

    #[test]
    fn partial_warp_masks_high_lanes() {
        let mut b = KernelBuilder::new("partial");
        let tid = b.reg();
        let addr = b.reg();
        b.tid_x(tid);
        let base = b.load_param(0);
        b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
        b.add(DType::U32, addr, addr.into(), base.into());
        let one = b.reg();
        b.mov(DType::U32, one, Operand::imm_u32(1));
        b.st_global(DType::U32, addr, 0, one);
        b.exit();
        let prog = b.build().unwrap();

        let mut mem = GlobalMemory::new();
        let out = mem.alloc(32 * 4);
        let params = [out];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        // Only 10 active lanes.
        let mut w = Warp::new(0, 0, 10, prog.register_count(), prog.pred_count().max(1));
        run_to_completion(&mut w, &prog, &mut c);
        for lane in 0..32u32 {
            let expect = if lane < 10 { 1 } else { 0 };
            assert_eq!(mem.read_u32(out + lane * 4), expect);
        }
    }

    #[test]
    fn coalesced_loads_touch_one_line() {
        // 32 lanes load out[tid] -> 32 consecutive words = one 128 B line.
        let mut b = KernelBuilder::new("coal");
        let tid = b.reg();
        let addr = b.reg();
        let v = b.reg();
        b.tid_x(tid);
        let base = b.load_param(0);
        b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
        b.add(DType::U32, addr, addr.into(), base.into());
        b.ld_global(DType::F32, v, addr, 0);
        b.exit();
        let prog = b.build().unwrap();

        let mut mem = GlobalMemory::new();
        let buf = mem.alloc(32 * 4);
        let params = [buf];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, prog.register_count(), prog.pred_count().max(1));
        // Step to the load.
        let mut lines = Vec::new();
        while !w.done {
            let o = execute(&mut w, &prog, &mut c);
            if !o.global_lines.is_empty() {
                lines = o.global_lines.clone();
            }
        }
        assert_eq!(lines.len(), 1, "aligned consecutive words coalesce into one line");
    }

    #[test]
    fn strided_loads_touch_many_lines() {
        // lane loads base + tid * 128 -> every lane a different line.
        let mut b = KernelBuilder::new("stride");
        let tid = b.reg();
        let addr = b.reg();
        let v = b.reg();
        b.tid_x(tid);
        let base = b.load_param(0);
        b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(7));
        b.add(DType::U32, addr, addr.into(), base.into());
        b.ld_global(DType::F32, v, addr, 0);
        b.exit();
        let prog = b.build().unwrap();

        let mut mem = GlobalMemory::new();
        let buf = mem.alloc(32 * 128);
        let params = [buf];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, prog.register_count(), prog.pred_count().max(1));
        let mut max_lines = 0;
        while !w.done {
            let o = execute(&mut w, &prog, &mut c);
            max_lines = max_lines.max(o.global_lines.len());
        }
        assert_eq!(max_lines, 32);
    }

    #[test]
    fn f32_mad_matches_reference() {
        let mut b = KernelBuilder::new("mad");
        let acc = b.reg();
        b.mov(DType::F32, acc, Operand::imm_f32(1.5));
        b.mad(DType::F32, acc, acc.into(), Operand::imm_f32(2.0), Operand::imm_f32(0.25));
        b.exit();
        let prog = b.build().unwrap();
        let mut mem = GlobalMemory::new();
        let _ = mem.alloc(64);
        let params = [];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, prog.register_count(), 1);
        run_to_completion(&mut w, &prog, &mut c);
        assert_eq!(f32::from_bits(w.regs[0]), 1.5 * 2.0 + 0.25);
    }

    #[test]
    fn u16_arithmetic_wraps_at_16_bits() {
        let mut b = KernelBuilder::new("u16");
        let r = b.reg();
        b.mov(DType::U32, r, Operand::imm_u32(0xFFFF));
        b.add(DType::U16, r, r.into(), Operand::imm_u32(1));
        b.exit();
        let prog = b.build().unwrap();
        let mut mem = GlobalMemory::new();
        let _ = mem.alloc(64);
        let params = [];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, prog.register_count(), 1);
        run_to_completion(&mut w, &prog, &mut c);
        assert_eq!(w.regs[0], 0);
    }

    #[test]
    fn shared_memory_round_trip() {
        let mut b = KernelBuilder::new("smem");
        b.set_smem_bytes(256);
        let tid = b.reg();
        let addr = b.reg();
        let v = b.reg();
        b.tid_x(tid);
        b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
        b.st_shared(DType::U32, addr, 0, tid);
        b.bar();
        b.ld_shared(DType::U32, v, addr, 0);
        b.exit();
        let prog = b.build().unwrap();
        let mut mem = GlobalMemory::new();
        let _ = mem.alloc(64);
        let params = [];
        let mut smem = vec![0u8; 256];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, prog.register_count(), 1);
        while !w.done {
            let o = execute(&mut w, &prog, &mut c);
            if o.did_barrier {
                w.at_barrier = false; // single-warp CTA: release immediately
            }
        }
        for lane in 0..32usize {
            assert_eq!(w.regs[v.0 as usize * 32 + lane], lane as u32);
        }
    }

    #[test]
    fn const_params_are_readable() {
        let mut b = KernelBuilder::new("cmem");
        let p0 = b.load_param(0);
        let p1 = b.load_param(1);
        let sum = b.reg();
        b.add(DType::U32, sum, p0.into(), p1.into());
        b.exit();
        let prog = b.build().unwrap();
        let mut mem = GlobalMemory::new();
        let _ = mem.alloc(64);
        let params = [40, 2];
        let mut smem = [];
        let mut scratch = Vec::new();
        let mut c = ctx(&mut mem, &mut smem, &params, &mut scratch);
        let mut w = Warp::new(0, 0, 32, prog.register_count(), 1);
        run_to_completion(&mut w, &prog, &mut c);
        assert_eq!(w.regs[sum.0 as usize * 32], 42);
    }
}
