//! Set-associative cache model with LRU replacement.

use crate::config::CacheGeometry;
use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    valid: bool,
    last_used: u64,
}

/// A set-associative, LRU cache over line addresses.
///
/// Write policy is parameterized: the per-SM L1D is write-through without
/// write-allocate (the GPU convention), the L2 is write-allocate.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    allocate_on_write: bool,
    sets: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(geometry: CacheGeometry, allocate_on_write: bool) -> Self {
        let lines = (geometry.num_sets() * geometry.assoc) as usize;
        Cache {
            geometry,
            allocate_on_write,
            sets: vec![
                Line {
                    tag: 0,
                    valid: false,
                    last_used: 0,
                };
                lines
            ],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Total line slots (sets x ways) — used to size memo-table accounting.
    pub(crate) fn slot_count(&self) -> usize {
        self.sets.len()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up `line_addr` (a byte address already divided by the line
    /// size). Returns whether it hit; misses (and write-allocating writes)
    /// fill the LRU way.
    pub fn access(&mut self, line_addr: u32, write: bool) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let num_sets = self.geometry.num_sets();
        let set = (line_addr % num_sets) as usize;
        let assoc = self.geometry.assoc as usize;
        let ways = &mut self.sets[set * assoc..(set + 1) * assoc];

        for way in ways.iter_mut() {
            if way.valid && way.tag == line_addr {
                way.last_used = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        if !write || self.allocate_on_write {
            // Fill the invalid or least-recently-used way.
            let victim = ways
                .iter_mut()
                .min_by_key(|w| if w.valid { w.last_used } else { 0 })
                .expect("cache has at least one way");
            victim.tag = line_addr;
            victim.valid = true;
            victim.last_used = self.tick;
        }
        false
    }

    /// Invalidates all contents (between kernels nothing is flushed —
    /// GPUs keep caches warm — but tests use this).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.sets {
            line.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 128 B lines = 1 KiB.
        Cache::new(CacheGeometry::new(1024, 128, 2), true)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(7, false));
        assert!(c.access(7, false));
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines 0, 4, 8 map to set 0 (4 sets).
        c.access(0, false);
        c.access(4, false);
        c.access(0, false); // 0 is now MRU
        c.access(8, false); // evicts 4
        assert!(c.access(0, false), "0 should survive");
        assert!(!c.access(4, false), "4 should have been evicted");
    }

    #[test]
    fn write_no_allocate_skips_fill() {
        let mut c = Cache::new(CacheGeometry::new(1024, 128, 2), false);
        assert!(!c.access(3, true)); // write miss, no fill
        assert!(!c.access(3, false)); // still a miss
        assert!(c.access(3, false)); // read allocated it
    }

    #[test]
    fn write_allocate_fills() {
        let mut c = tiny();
        assert!(!c.access(3, true));
        assert!(c.access(3, false));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0, false);
        c.access(1, false);
        c.access(2, false);
        c.access(3, false);
        // All in different sets; all should hit now.
        for line in 0..4 {
            assert!(c.access(line, false));
        }
    }

    #[test]
    fn invariant_hits_plus_misses_equals_accesses() {
        let mut c = tiny();
        for i in 0..100u32 {
            c.access(i % 13, (i % 3) == 0);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
    }

    #[test]
    fn invalidate_clears_contents_not_stats() {
        let mut c = tiny();
        c.access(5, false);
        c.invalidate_all();
        assert!(!c.access(5, false));
        assert_eq!(c.stats().accesses, 2);
    }
}
