//! Warp scheduler policies: GTO, LRR, and two-level (TLV).
//!
//! The scheduler produces a *candidate order* each cycle; the SM walks it
//! and issues the first warps that pass the scoreboard/port checks. GTO and
//! TLV additionally maintain state (current warp, active set) and report
//! "queue-management events" — the cycles the paper's Observation 12 blames
//! for GTO/TLV losing to plain round-robin on cache-friendly convolution
//! layers.

use crate::config::SchedulerPolicy;

/// Stateful warp scheduler for one SM.
#[derive(Debug, Clone)]
pub(crate) struct Scheduler {
    policy: SchedulerPolicy,
    lrr_next: usize,
    gto_current: Option<usize>,
    tlv_active: Vec<usize>,
    tlv_suspended: Vec<usize>,
    tlv_capacity: usize,
}

impl Scheduler {
    pub fn new(policy: SchedulerPolicy, tlv_capacity: usize) -> Self {
        Scheduler {
            policy,
            lrr_next: 0,
            gto_current: None,
            tlv_active: Vec::new(),
            tlv_suspended: Vec::new(),
            tlv_capacity: tlv_capacity.max(1),
        }
    }

    #[allow(dead_code)]
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Candidate issue order over `occupied` warp slots (`(slot, age)`
    /// pairs, unfinished warps only). The hot path uses
    /// [`order_into`](Self::order_into) with cached orders; this
    /// allocating variant remains for tests and external inspection.
    #[allow(dead_code)]
    pub fn candidate_order(&self, occupied: &[(usize, u64)]) -> Vec<usize> {
        let mut out = Vec::new();
        self.candidate_order_into(occupied, &mut out);
        out
    }

    /// Allocation- and sort-free ordering used by the SM's hot loop:
    /// `age_order` holds occupied slots oldest-first, `slot_asc` the same
    /// slots in ascending slot order (both maintained incrementally by the
    /// SM). Writes the candidate order into `out`.
    pub fn order_into(&self, age_order: &[usize], slot_asc: &[usize], out: &mut Vec<usize>) {
        out.clear();
        match self.policy {
            SchedulerPolicy::Lrr => {
                let pivot = slot_asc.partition_point(|&s| s < self.lrr_next);
                out.extend_from_slice(&slot_asc[pivot..]);
                out.extend_from_slice(&slot_asc[..pivot]);
            }
            SchedulerPolicy::Gto => {
                if let Some(cur) = self.gto_current {
                    if age_order.contains(&cur) {
                        out.push(cur);
                    }
                }
                out.extend(age_order.iter().copied().filter(|&s| Some(s) != self.gto_current));
            }
            SchedulerPolicy::Tlv => {
                out.extend(self.tlv_active.iter().copied().filter(|s| age_order.contains(s)));
                if out.len() < self.tlv_capacity {
                    let room = self.tlv_capacity - out.len();
                    let mut taken = 0;
                    for &s in age_order {
                        if taken >= room {
                            break;
                        }
                        if !out.contains(&s) && !self.tlv_suspended.contains(&s) {
                            out.push(s);
                            taken += 1;
                        }
                    }
                    if taken < room {
                        // Suspended warps re-enter in FIFO order; warps
                        // that fail to issue are rotated to the back (see
                        // `note_blocked`) so a barrier-parked warp cannot
                        // starve the warps that would release it.
                        for &s in &self.tlv_suspended {
                            if taken >= room {
                                break;
                            }
                            if !out.contains(&s) && age_order.contains(&s) {
                                out.push(s);
                                taken += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Allocation-free variant of [`candidate_order`](Self::candidate_order):
    /// writes into `out` (cleared first).
    #[allow(dead_code)]
    pub fn candidate_order_into(&self, occupied: &[(usize, u64)], out: &mut Vec<usize>) {
        out.clear();
        let order: Vec<usize> = match self.policy {
            SchedulerPolicy::Lrr => {
                let mut slots: Vec<usize> = occupied.iter().map(|&(s, _)| s).collect();
                slots.sort_unstable();
                let pivot = slots.partition_point(|&s| s < self.lrr_next);
                let mut order = Vec::with_capacity(slots.len());
                order.extend_from_slice(&slots[pivot..]);
                order.extend_from_slice(&slots[..pivot]);
                order
            }
            SchedulerPolicy::Gto => {
                let mut rest: Vec<(usize, u64)> = occupied.to_vec();
                rest.sort_by_key(|&(_, age)| age);
                let mut order = Vec::with_capacity(rest.len() + 1);
                if let Some(cur) = self.gto_current {
                    if occupied.iter().any(|&(s, _)| s == cur) {
                        order.push(cur);
                    }
                }
                for (s, _) in rest {
                    if Some(s) != self.gto_current {
                        order.push(s);
                    }
                }
                order
            }
            SchedulerPolicy::Tlv => {
                let mut order: Vec<usize> = self
                    .tlv_active
                    .iter()
                    .copied()
                    .filter(|s| occupied.iter().any(|&(o, _)| o == *s))
                    .collect();
                if order.len() < self.tlv_capacity {
                    // Fill vacancies with the oldest pending warps; warps
                    // recently suspended on a memory stall come last so a
                    // swap actually brings fresh work in.
                    let mut pending: Vec<(usize, u64)> = occupied
                        .iter()
                        .copied()
                        .filter(|&(s, _)| !order.contains(&s) && !self.tlv_suspended.contains(&s))
                        .collect();
                    pending.sort_by_key(|&(_, age)| age);
                    let mut suspended: Vec<(usize, u64)> = occupied
                        .iter()
                        .copied()
                        .filter(|&(s, _)| self.tlv_suspended.contains(&s))
                        .collect();
                    suspended.sort_by_key(|&(_, age)| age);
                    pending.extend(suspended);
                    for (s, _) in pending.into_iter().take(self.tlv_capacity - order.len()) {
                        order.push(s);
                    }
                }
                order
            }
        };
        out.extend(order);
    }

    /// Records that `slot` issued this cycle.
    pub fn note_issue(&mut self, slot: usize) {
        match self.policy {
            SchedulerPolicy::Lrr => self.lrr_next = slot + 1,
            SchedulerPolicy::Gto => self.gto_current = Some(slot),
            SchedulerPolicy::Tlv => {
                self.tlv_suspended.retain(|&s| s != slot);
                if let Some(pos) = self.tlv_active.iter().position(|&s| s == slot) {
                    // Rotate within the active set (round-robin).
                    let s = self.tlv_active.remove(pos);
                    self.tlv_active.push(s);
                } else {
                    if self.tlv_active.len() >= self.tlv_capacity {
                        self.tlv_active.remove(0);
                    }
                    self.tlv_active.push(slot);
                }
            }
        }
    }

    /// Records that the scheduler's preferred warp stalled on a
    /// long-latency (memory) operation. Returns `true` when this forces a
    /// queue-management event the pipeline pays for (moving the warp
    /// between ready and pending queues) — never for LRR, which has no
    /// queues to manage.
    pub fn note_memory_stall(&mut self, slot: usize) -> bool {
        match self.policy {
            SchedulerPolicy::Lrr => false,
            SchedulerPolicy::Gto => {
                if self.gto_current == Some(slot) {
                    self.gto_current = None;
                    true
                } else {
                    false
                }
            }
            SchedulerPolicy::Tlv => {
                if let Some(pos) = self.tlv_active.iter().position(|&s| s == slot) {
                    self.tlv_active.remove(pos);
                    self.tlv_suspended.push(slot);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records that a candidate failed to issue; rotates it to the back
    /// of the suspended queue so other pending warps get the next slot.
    pub fn note_blocked(&mut self, slot: usize) {
        if let Some(pos) = self.tlv_suspended.iter().position(|&s| s == slot) {
            let s = self.tlv_suspended.remove(pos);
            self.tlv_suspended.push(s);
        }
    }

    /// Debug snapshot of the two-level state.
    pub fn debug_tlv(&self) -> String {
        format!("tlv_active={:?} tlv_suspended={:?} gto_cur={:?} lrr_next={}", self.tlv_active, self.tlv_suspended, self.gto_current, self.lrr_next)
    }

    /// Forgets a finished warp.
    pub fn note_warp_finished(&mut self, slot: usize) {
        if self.gto_current == Some(slot) {
            self.gto_current = None;
        }
        self.tlv_active.retain(|&s| s != slot);
        self.tlv_suspended.retain(|&s| s != slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(slots: &[usize]) -> Vec<(usize, u64)> {
        slots.iter().map(|&s| (s, s as u64)).collect()
    }

    #[test]
    fn lrr_rotates_after_issue() {
        let mut s = Scheduler::new(SchedulerPolicy::Lrr, 6);
        let o = occ(&[0, 1, 2, 3]);
        assert_eq!(s.candidate_order(&o), vec![0, 1, 2, 3]);
        s.note_issue(1);
        assert_eq!(s.candidate_order(&o), vec![2, 3, 0, 1]);
    }

    #[test]
    fn gto_prefers_current_then_oldest() {
        let mut s = Scheduler::new(SchedulerPolicy::Gto, 6);
        let o = vec![(0, 5u64), (1, 2), (2, 9)];
        // No current: oldest (age 2 -> slot 1) first.
        assert_eq!(s.candidate_order(&o), vec![1, 0, 2]);
        s.note_issue(2);
        // Greedy: slot 2 first now.
        assert_eq!(s.candidate_order(&o), vec![2, 1, 0]);
    }

    #[test]
    fn gto_memory_stall_clears_current_and_reports_event() {
        let mut s = Scheduler::new(SchedulerPolicy::Gto, 6);
        s.note_issue(3);
        assert!(s.note_memory_stall(3));
        assert!(!s.note_memory_stall(3), "second report is not a new event");
        let o = occ(&[1, 3]);
        assert_eq!(s.candidate_order(&o), vec![1, 3]); // back to oldest-first
    }

    #[test]
    fn lrr_never_reports_queue_events() {
        let mut s = Scheduler::new(SchedulerPolicy::Lrr, 6);
        s.note_issue(0);
        assert!(!s.note_memory_stall(0));
    }

    #[test]
    fn tlv_limits_active_set() {
        let mut s = Scheduler::new(SchedulerPolicy::Tlv, 2);
        let o = occ(&[0, 1, 2, 3]);
        let order = s.candidate_order(&o);
        // Empty active set: filled with the two oldest.
        assert_eq!(order, vec![0, 1]);
        s.note_issue(0);
        s.note_issue(1);
        let order = s.candidate_order(&o);
        assert_eq!(order.len(), 2);
        assert!(order.contains(&0) && order.contains(&1));
    }

    #[test]
    fn tlv_swaps_out_stalled_warp() {
        let mut s = Scheduler::new(SchedulerPolicy::Tlv, 2);
        let o = occ(&[0, 1, 2]);
        s.note_issue(0);
        s.note_issue(1);
        assert!(s.note_memory_stall(0));
        let order = s.candidate_order(&o);
        assert!(order.contains(&2), "pending warp promoted: {order:?}");
        assert!(order.contains(&1));
    }

    #[test]
    fn finished_warp_is_forgotten() {
        let mut s = Scheduler::new(SchedulerPolicy::Gto, 6);
        s.note_issue(4);
        s.note_warp_finished(4);
        let o = occ(&[1, 2]);
        assert_eq!(s.candidate_order(&o), vec![1, 2]);
    }

    #[test]
    fn orders_cover_all_or_capacity_warps() {
        for policy in SchedulerPolicy::ALL {
            let s = Scheduler::new(policy, 6);
            let o = occ(&[0, 1, 2, 3, 4]);
            let order = s.candidate_order(&o);
            match policy {
                SchedulerPolicy::Tlv => assert_eq!(order.len(), 5),
                _ => assert_eq!(order.len(), 5),
            }
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), order.len(), "no duplicates in {order:?}");
        }
    }
}
