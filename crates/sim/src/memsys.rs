//! The shared memory hierarchy behind the SMs: L2 cache and DRAM with a
//! bandwidth-limited channel model.

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::stats::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of fresh hierarchy state tags. Tag 0 is never issued, tag 1 is
/// reserved for pristine hierarchies, so every mutated state gets a
/// process-unique tag.
static NEXT_TAG: AtomicU64 = AtomicU64::new(2);

/// L2 + DRAM service model shared by all SMs.
///
/// Requests are line-granular. An L2 hit completes after the configured L2
/// latency; a miss additionally waits for the DRAM channel (which serves
/// one line at the configured bytes/cycle) plus DRAM latency.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l2: Cache,
    l2_latency: u32,
    dram_latency: u32,
    line_cycles: u64,
    dram_busy_until: u64,
    dram_accesses: u64,
    /// Identity tag for the memoization layer: two `MemorySystem`s with
    /// equal tags are guaranteed to hold equal cache/channel state. Fresh
    /// hierarchies share tag 1; every live launch stamps a new unique tag
    /// before running (see [`refresh_tag`](Self::refresh_tag)), and memo
    /// replays install recorded clones carrying the recorded post tag.
    state_tag: u64,
}

/// Outcome of one line request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Cycle at which the data is available at the requesting SM.
    pub completion_cycle: u64,
    /// Whether the L2 supplied the line.
    pub l2_hit: bool,
}

impl MemorySystem {
    /// Builds the hierarchy from a GPU configuration.
    pub fn new(config: &GpuConfig) -> Self {
        let line_cycles = (config.l2.line_bytes as u64).div_ceil(config.dram_bytes_per_cycle.max(1) as u64);
        MemorySystem {
            l2: Cache::new(config.l2, true),
            l2_latency: config.l2_latency,
            dram_latency: config.dram_latency,
            line_cycles,
            dram_busy_until: 0,
            dram_accesses: 0,
            state_tag: 1,
        }
    }

    /// Current state identity tag (equal tags imply equal state; a fresh
    /// hierarchy is tag 1, which any other fresh hierarchy of the same
    /// configuration shares).
    pub(crate) fn state_tag(&self) -> u64 {
        self.state_tag
    }

    /// Stamps a process-unique tag. Called at the start of every live
    /// (non-replayed) launch, *before* simulation mutates the hierarchy,
    /// so that an abandoned launch can never leave a stale tag claiming
    /// unmutated state.
    pub(crate) fn refresh_tag(&mut self) {
        self.state_tag = NEXT_TAG.fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate heap footprint of a clone, for memo-table budgeting.
    pub(crate) fn approx_clone_bytes(&self) -> usize {
        self.l2.slot_count() * std::mem::size_of::<u64>() * 3 + 128
    }

    /// Services one line request issued at `now`.
    pub fn access(&mut self, now: u64, line_addr: u32, write: bool) -> MemResponse {
        let hit = self.l2.access(line_addr, write);
        if hit {
            MemResponse {
                completion_cycle: now + self.l2_latency as u64,
                l2_hit: true,
            }
        } else {
            self.dram_accesses += 1;
            let service_start = (now + self.l2_latency as u64).max(self.dram_busy_until);
            self.dram_busy_until = service_start + self.line_cycles;
            MemResponse {
                completion_cycle: service_start + self.dram_latency as u64,
                l2_hit: false,
            }
        }
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// DRAM line transactions serviced.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Resets counters and the channel-queue clock for a new launch
    /// (cache contents stay warm, like a real device between kernels,
    /// but each launch starts its own cycle domain at zero).
    pub fn reset_stats(&mut self) {
        self.l2.reset_stats();
        self.dram_accesses = 0;
        self.dram_busy_until = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    #[test]
    fn l2_hit_is_faster_than_miss() {
        let cfg = GpuConfig::gp102();
        let mut m = MemorySystem::new(&cfg);
        let miss = m.access(0, 42, false);
        assert!(!miss.l2_hit);
        let hit = m.access(1000, 42, false);
        assert!(hit.l2_hit);
        assert!(hit.completion_cycle - 1000 < miss.completion_cycle);
    }

    #[test]
    fn dram_bandwidth_serializes_misses() {
        let cfg = GpuConfig::tx1(); // narrow DRAM: 26 B/cycle, 128 B lines
        let mut m = MemorySystem::new(&cfg);
        let a = m.access(0, 1, false);
        let b = m.access(0, 2, false);
        let c = m.access(0, 3, false);
        assert!(b.completion_cycle > a.completion_cycle);
        assert!(c.completion_cycle > b.completion_cycle);
        // Spacing equals the line transfer time.
        assert_eq!(
            c.completion_cycle - b.completion_cycle,
            b.completion_cycle - a.completion_cycle
        );
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cfg = GpuConfig::gp102();
        let mut m = MemorySystem::new(&cfg);
        m.access(0, 7, false);
        m.access(0, 7, false);
        let s = m.l2_stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(m.dram_accesses(), 1);
    }

    #[test]
    fn reset_clears_counters_only() {
        let cfg = GpuConfig::gp102();
        let mut m = MemorySystem::new(&cfg);
        m.access(0, 9, false);
        m.reset_stats();
        assert_eq!(m.l2_stats().accesses, 0);
        // Contents still warm: next access hits.
        assert!(m.access(0, 9, false).l2_hit);
    }
}
