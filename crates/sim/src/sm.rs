//! The streaming-multiprocessor (SM) model: per-cycle issue, scoreboard,
//! functional-unit ports, L1D, MSHRs, barrier handling, stall attribution,
//! and per-event energy charging.

use crate::cache::Cache;
use crate::config::{CacheGeometry, GpuConfig, PowerConstants};
use crate::decode::{DecodedInst, DTYPE_ORDER};
use crate::exec::{self, ExecCtx, PendKind, Warp};
use crate::mem::GlobalMemory;
use crate::memo::MemoRecorder;
use crate::memsys::MemorySystem;
use crate::power::{Component, PowerMeter};
use crate::sched::Scheduler;
use crate::stats::{StallBreakdown, StallReason};
use std::collections::BTreeMap;
use tango_isa::{AddrSpace, DType, Dim3, FuncUnit, KernelProgram, Opcode};

/// Resident thread-block bookkeeping.
#[derive(Debug)]
struct CtaRt {
    coords: (u32, u32, u32),
    smem: Vec<u8>,
    threads: u32,
    warps_total: u32,
    warps_done: u32,
    barrier_arrived: u32,
}

/// Statistics accumulated across the launch (shared by all SMs).
///
/// Per-opcode/dtype counters are flat arrays indexed by discriminant (the
/// hot path increments one slot per issue instead of probing a map) and
/// fold back into the `KernelStats` `BTreeMap`s at launch finish — the
/// map iteration order is the discriminant order either way, so reports
/// are byte-identical.
#[derive(Debug, Default)]
pub(crate) struct LaunchAgg {
    pub warp_instructions: u64,
    pub thread_instructions: u64,
    pub op_counts: [u64; Opcode::ALL.len()],
    pub dtype_counts: [u64; DTYPE_ORDER.len()],
    pub stalls: StallBreakdown,
    pub const_accesses: u64,
    pub shared_accesses: u64,
}

impl LaunchAgg {
    /// Folds the flat opcode counters into the reporting map (zero entries
    /// omitted, exactly as the entry-API accumulation used to).
    pub fn op_counts_map(&self) -> BTreeMap<Opcode, u64> {
        Opcode::ALL
            .iter()
            .zip(self.op_counts.iter())
            .filter(|(_, &n)| n > 0)
            .map(|(&op, &n)| (op, n))
            .collect()
    }

    /// Folds the flat dtype counters into the reporting map.
    pub fn dtype_counts_map(&self) -> BTreeMap<DType, u64> {
        DTYPE_ORDER
            .iter()
            .zip(self.dtype_counts.iter())
            .filter(|(_, &n)| n > 0)
            .map(|(&t, &n)| (t, n))
            .collect()
    }
}

/// Everything an SM needs from the outside during one cycle.
pub(crate) struct SmEnv<'a> {
    pub cycle: u64,
    /// Machine cycles this call represents (>= 1; larger after a skip).
    pub weight: u64,
    pub mem: &'a mut GlobalMemory,
    pub memsys: &'a mut MemorySystem,
    pub meter: &'a mut PowerMeter,
    pub agg: &'a mut LaunchAgg,
    pub program: &'a KernelProgram,
    /// Flat pre-decoded form of `program` (index-parallel).
    pub decoded: &'a [DecodedInst],
    pub params: &'a [u32],
    pub grid: Dim3,
    pub block: Dim3,
    pub line_bytes: u32,
    /// Launch memo recorder, when this launch is being recorded.
    pub rec: Option<&'a mut MemoRecorder>,
}

/// One streaming multiprocessor.
pub(crate) struct Sm {
    cfg: SmCfg,
    power: PowerConstants,
    pub(crate) l1d: Option<Cache>,
    warps: Vec<Option<Warp>>,
    ctas: Vec<Option<CtaRt>>,
    mshr: Vec<u64>,
    sched: Scheduler,
    sched_block_until: u64,
    const_warm: Vec<bool>,
    resident_threads: u32,
    pub(crate) peak_threads: u32,
    order_scratch: Vec<usize>,
    /// Occupied warp slots, oldest-first (ages are monotone, so accepts
    /// append and finishes remove — no sorting in the hot loop).
    age_order: Vec<usize>,
    /// Occupied warp slots in ascending slot order (LRR's rotation base).
    slot_asc: Vec<usize>,
    /// Cycles of stall samples owed since the last sampling pass.
    sample_debt: u64,
    /// Live warp count (`is_active` in O(1)).
    resident_warps: u32,
    /// Reused line-coalescing buffer handed to the interpreter (round-trips
    /// through `ExecOutcome::global_lines` on every global memory op).
    line_scratch: Vec<u32>,
}

/// How often (in weighted cycles) the stall sampler classifies every
/// resident warp. Zero-issue cycles always sample (their classification
/// doubles as the event-skip hint), so only dense issue regions are
/// decimated — fractions are preserved via sample weights.
const SAMPLE_PERIOD: u64 = 16;

/// The scalar knobs an SM consults every cycle (copied out of `GpuConfig`
/// so the env borrow stays small).
#[derive(Debug, Clone, Copy)]
struct SmCfg {
    issue_width: u32,
    sp_width: u32,
    sfu_width: u32,
    ldst_width: u32,
    alu_latency: u32,
    sfu_latency: u32,
    shared_latency: u32,
    const_latency: u32,
    l1_latency: u32,
    l2_latency: u32,
    mshrs: usize,
    fetch_bubble: u32,
    requeue_penalty: u32,
}

impl Sm {
    pub fn new(
        config: &GpuConfig,
        l1_geometry: Option<CacheGeometry>,
        cta_slots: u32,
        warps_per_cta: u32,
        param_count: usize,
        scheduler: Scheduler,
    ) -> Self {
        let warp_slots = (cta_slots * warps_per_cta) as usize;
        Sm {
            cfg: SmCfg {
                issue_width: config.issue_width,
                sp_width: config.sp_width,
                sfu_width: config.sfu_width,
                ldst_width: config.ldst_width,
                alu_latency: config.alu_latency,
                sfu_latency: config.sfu_latency,
                shared_latency: config.shared_latency,
                const_latency: config.const_latency,
                l1_latency: config.l1_latency,
                l2_latency: config.l2_latency,
                mshrs: config.mshrs_per_sm as usize,
                fetch_bubble: config.fetch_bubble,
                requeue_penalty: config.requeue_penalty,
            },
            power: config.power,
            l1d: l1_geometry.map(|g| Cache::new(g, false)),
            warps: (0..warp_slots).map(|_| None).collect(),
            ctas: (0..cta_slots as usize).map(|_| None).collect(),
            mshr: Vec::new(),
            sched: scheduler,
            sched_block_until: 0,
            const_warm: vec![false; param_count],
            resident_threads: 0,
            peak_threads: 0,
            order_scratch: Vec::new(),
            age_order: Vec::new(),
            slot_asc: Vec::new(),
            sample_debt: 0,
            resident_warps: 0,
            line_scratch: Vec::new(),
        }
    }

    /// Whether a CTA slot is free.
    pub fn has_room(&self) -> bool {
        self.ctas.iter().any(Option::is_none)
    }

    /// Whether any warp is resident.
    pub fn is_active(&self) -> bool {
        self.resident_warps > 0
    }

    /// Installs a CTA and its warps.
    ///
    /// # Panics
    ///
    /// Panics if no CTA slot is free (callers check [`has_room`](Self::has_room)).
    pub fn accept_cta(&mut self, coords: (u32, u32, u32), program: &KernelProgram, block: Dim3, smem_bytes: u32) {
        let cta_slot = self
            .ctas
            .iter()
            .position(Option::is_none)
            .expect("accept_cta requires a free slot");
        let threads = block.count() as u32;
        let warps_total = threads.div_ceil(32);
        self.ctas[cta_slot] = Some(CtaRt {
            coords,
            smem: vec![0; smem_bytes.max(4) as usize],
            threads,
            warps_total,
            warps_done: 0,
            barrier_arrived: 0,
        });
        let reg_count = program.register_count().max(1);
        let pred_count = program.pred_count().max(1);
        for w in 0..warps_total {
            let lanes = (threads - w * 32).min(32);
            let warp = Warp::new(cta_slot, w, lanes, reg_count, pred_count);
            let slot = self
                .warps
                .iter()
                .position(Option::is_none)
                .expect("warp slots sized for max residency");
            self.warps[slot] = Some(warp);
            self.resident_warps += 1;
            self.age_order.push(slot); // ages are monotone: stays sorted
            let at = self.slot_asc.partition_point(|&s| s < slot);
            self.slot_asc.insert(at, slot);
        }
        self.resident_threads += threads;
        self.peak_threads = self.peak_threads.max(self.resident_threads);
    }

    fn classify_pend(kind: PendKind) -> StallReason {
        match kind {
            PendKind::Mem | PendKind::Shared => StallReason::MemoryDependency,
            PendKind::Const => StallReason::ConstantMemoryDependency,
            _ => StallReason::ExecDependency,
        }
    }

    /// Scoreboard + structural check. `None` means the warp can issue now;
    /// otherwise returns the stall reason plus the earliest cycle at which
    /// the blocking condition can clear (`u64::MAX` for event-driven
    /// conditions like barriers, whose release is another warp's progress).
    fn check_issue(&self, slot: usize, env: &SmEnv<'_>, ports: &Ports) -> Option<(StallReason, u64)> {
        let warp = self.warps[slot].as_ref().expect("checked occupied");
        if warp.at_barrier {
            return Some((StallReason::Sync, u64::MAX));
        }
        if warp.fetch_ready > env.cycle {
            return Some((StallReason::InstFetch, warp.fetch_ready));
        }
        let d = &env.decoded[warp.pc() as usize];
        if let Some(p) = d.guard {
            let ready = warp.pred_ready[p as usize];
            if ready > env.cycle {
                return Some((StallReason::ExecDependency, ready));
            }
        }
        for &r in &d.reads[..d.nreads as usize] {
            let ready = warp.reg_ready[r as usize];
            if ready > env.cycle {
                return Some((Self::classify_pend(warp.reg_pend[r as usize]), ready));
            }
        }
        if let Some(dr) = d.dst {
            let ready = warp.reg_ready[dr as usize];
            if ready > env.cycle {
                return Some((Self::classify_pend(warp.reg_pend[dr as usize]), ready));
            }
        }
        if let Some(p) = d.pdst {
            let ready = warp.pred_ready[p as usize];
            if ready > env.cycle {
                return Some((StallReason::ExecDependency, ready));
            }
        }
        match d.unit {
            FuncUnit::Sp => {
                if ports.sp >= self.cfg.sp_width {
                    return Some((StallReason::PipeBusy, env.cycle + 1));
                }
            }
            FuncUnit::Sfu => {
                if ports.sfu >= self.cfg.sfu_width {
                    return Some((StallReason::PipeBusy, env.cycle + 1));
                }
            }
            FuncUnit::LdSt => {
                if ports.ldst >= self.cfg.ldst_width {
                    return Some((StallReason::PipeBusy, env.cycle + 1));
                }
            }
            FuncUnit::Ctrl => {}
        }
        if d.is_global_mem && self.mshr.len() >= self.cfg.mshrs {
            let drain = self.mshr.iter().copied().min().unwrap_or(env.cycle + 1);
            return Some((StallReason::MemoryThrottle, drain));
        }
        None
    }

    /// Issues one warp-instruction: functional execution, timing update,
    /// cache traffic, and energy charges.
    fn issue(&mut self, slot: usize, env: &mut SmEnv<'_>, ports: &mut Ports) {
        let mut warp = self.warps[slot].take().expect("checked occupied");
        let pc = warp.pc() as usize;
        let d = env.decoded[pc];
        let op = d.op;
        let dtype = d.dtype;
        let unit = d.unit;
        let dst = d.dst;
        let pdst = d.pdst;
        let reg_srcs = d.nreads as u32;
        let const_param_index = d.const_param_index;

        let cta_slot = warp.cta_slot;
        let mut out = {
            let cta = self.ctas[cta_slot].as_mut().expect("warp's CTA is resident");
            let mut ectx = ExecCtx {
                mem: env.mem,
                smem: &mut cta.smem,
                params: env.params,
                block: env.block,
                grid: env.grid,
                cta: cta.coords,
                line_bytes: env.line_bytes,
                lines_scratch: &mut self.line_scratch,
                rec: env.rec.as_deref_mut(),
            };
            exec::execute(&mut warp, env.program, &mut ectx)
        };

        // Port usage.
        match unit {
            FuncUnit::Sp => ports.sp += 1,
            FuncUnit::Sfu => ports.sfu += 1,
            FuncUnit::LdSt => ports.ldst += 1,
            FuncUnit::Ctrl => {}
        }

        // Instruction counters.
        let lanes = out.exec_lanes.max(1) as u64;
        env.agg.warp_instructions += 1;
        env.agg.thread_instructions += lanes;
        env.agg.op_counts[op as usize] += lanes;
        env.agg.dtype_counts[dtype as usize] += lanes;

        // Per-issue energy.
        let p = &self.power;
        let lane_frac = (lanes as f64 / 32.0).max(1.0 / 32.0);
        env.meter.charge_nj(Component::Ibp, p.ibp_nj);
        env.meter.charge_nj(Component::Icp, p.icp_nj);
        env.meter.charge_nj(Component::Schedp, p.sched_nj);
        env.meter.charge_nj(Component::Pipep, p.pipe_nj);
        let rf_accesses = (reg_srcs + dst.map(|_| 1).unwrap_or(0)) as f64;
        if rf_accesses > 0.0 {
            env.meter.charge_nj(Component::Rfp, p.rf_access_nj * rf_accesses * lane_frac);
        }
        match unit {
            FuncUnit::Sp => {
                if dtype.is_float() {
                    env.meter.charge_nj(Component::Fpup, p.fpu_nj * lane_frac);
                } else {
                    env.meter.charge_nj(Component::Spp, p.sp_nj * lane_frac);
                }
            }
            FuncUnit::Sfu => env.meter.charge_nj(Component::Sfup, p.sfu_nj * lane_frac),
            _ => {}
        }

        // Timing.
        match op {
            Opcode::Ld | Opcode::St => match d.space.expect("validated memory op") {
                AddrSpace::Global => {
                    let is_store = out.global_is_store;
                    let mut completion = env.cycle + self.cfg.l1_latency as u64;
                    for &line in &out.global_lines {
                        let l1_hit = match self.l1d.as_mut() {
                            Some(l1) => {
                                env.meter.charge_nj(Component::Dcp, p.l1_nj);
                                l1.access(line, is_store)
                            }
                            None => false,
                        };
                        if l1_hit && !is_store {
                            completion = completion.max(env.cycle + self.cfg.l1_latency as u64);
                        } else {
                            let resp = env.memsys.access(env.cycle, line, is_store);
                            env.meter.charge_nj(Component::L2cp, p.l2_nj);
                            if !resp.l2_hit {
                                env.meter.charge_nj(Component::Mcp, p.mc_nj);
                                env.meter.charge_nj(Component::Nocp, p.noc_nj);
                                env.meter.charge_nj(Component::Dramp, p.dram_nj);
                            }
                            completion = completion.max(resp.completion_cycle);
                            self.mshr.push(resp.completion_cycle);
                        }
                    }
                    if let Some(dr) = dst {
                        warp.reg_ready[dr as usize] = completion;
                        warp.reg_pend[dr as usize] = PendKind::Mem;
                    }
                }
                AddrSpace::Shared => {
                    env.agg.shared_accesses += out.shared_accesses as u64;
                    env.meter
                        .charge_nj(Component::Shrdp, p.shared_nj * out.shared_accesses as f64 / 8.0);
                    if let Some(dr) = dst {
                        warp.reg_ready[dr as usize] = env.cycle + self.cfg.shared_latency as u64;
                        warp.reg_pend[dr as usize] = PendKind::Shared;
                    }
                }
                AddrSpace::Const => {
                    env.agg.const_accesses += 1;
                    env.meter.charge_nj(Component::Ccp, p.const_nj);
                    let warm = const_param_index
                        .map(|i| {
                            let w = self.const_warm.get(i).copied().unwrap_or(true);
                            if let Some(flag) = self.const_warm.get_mut(i) {
                                *flag = true;
                            }
                            w
                        })
                        .unwrap_or(true);
                    let lat = if warm { self.cfg.const_latency } else { self.cfg.l2_latency };
                    if let Some(dr) = dst {
                        warp.reg_ready[dr as usize] = env.cycle + lat as u64;
                        warp.reg_pend[dr as usize] = PendKind::Const;
                    }
                }
            },
            _ => {
                let lat = match unit {
                    FuncUnit::Sfu => self.cfg.sfu_latency,
                    _ => self.cfg.alu_latency,
                };
                if let Some(dr) = dst {
                    warp.reg_ready[dr as usize] = env.cycle + lat as u64;
                    warp.reg_pend[dr as usize] = PendKind::Alu;
                }
                if let Some(pr) = pdst {
                    warp.pred_ready[pr as usize] = env.cycle + lat as u64;
                }
            }
        }

        // Hand the line buffer back for the next memory instruction.
        if d.is_global_mem {
            self.line_scratch = std::mem::take(&mut out.global_lines);
        }

        if out.redirect {
            warp.fetch_ready = env.cycle + self.cfg.fetch_bubble as u64;
        }

        let finished = out.warp_finished;
        if finished {
            self.sched.note_warp_finished(slot);
            self.resident_warps -= 1;
            self.age_order.retain(|&s| s != slot);
            self.slot_asc.retain(|&s| s != slot);
            // Drop the warp; its slot frees up.
        } else {
            self.warps[slot] = Some(warp);
        }

        if out.did_barrier || finished {
            let cta = self.ctas[cta_slot].as_mut().expect("cta resident");
            if out.did_barrier {
                cta.barrier_arrived += 1;
            }
            if finished {
                cta.warps_done += 1;
            }
            self.maybe_release_barrier(cta_slot);
            let cta_done = {
                let cta = self.ctas[cta_slot].as_ref().expect("cta resident");
                cta.warps_done == cta.warps_total
            };
            if cta_done {
                let cta = self.ctas[cta_slot].take().expect("cta resident");
                self.resident_threads -= cta.threads;
            }
        }
    }

    fn maybe_release_barrier(&mut self, cta_slot: usize) {
        let Some(cta) = self.ctas[cta_slot].as_mut() else {
            return;
        };
        let live = cta.warps_total - cta.warps_done;
        if live > 0 && cta.barrier_arrived >= live {
            cta.barrier_arrived = 0;
            for w in self.warps.iter_mut().flatten() {
                if w.cta_slot == cta_slot {
                    w.at_barrier = false;
                }
            }
        }
    }

    /// Runs one cycle. `env.weight` is the number of machine cycles this
    /// call represents (1 in dense regions; more after an event skip) and
    /// weights the stall-sampling counters.
    ///
    /// Returns `(still_active, next_event_cycle)`: the earliest future
    /// cycle at which this SM's state can change. When no SM can issue,
    /// the launch loop jumps straight to the minimum of these hints
    /// instead of ticking every stalled cycle.
    pub fn cycle(&mut self, env: &mut SmEnv<'_>) -> (bool, u64) {
        if !self.is_active() {
            return (false, u64::MAX);
        }
        let cycle = env.cycle;
        if !self.mshr.is_empty() {
            self.mshr.retain(|&c| c > cycle);
        }

        let mut ports = Ports::default();
        let mut issued_slots: Vec<usize> = Vec::with_capacity(self.cfg.issue_width as usize);
        let mut next_event = u64::MAX;

        if cycle >= self.sched_block_until {
            let mut order = std::mem::take(&mut self.order_scratch);
            self.sched.order_into(&self.age_order, &self.slot_asc, &mut order);
            for &slot in &order {
                if issued_slots.len() >= self.cfg.issue_width as usize {
                    break;
                }
                if self.warps[slot].is_none() {
                    continue; // finished earlier this same cycle
                }
                match self.check_issue(slot, env, &ports) {
                    None => {
                        self.issue(slot, env, &mut ports);
                        issued_slots.push(slot);
                        self.sched.note_issue(slot);
                    }
                    Some((reason, _hint)) => {
                        // Long-latency stalls (memory, barriers) force GTO/
                        // TLV to move the warp between queues; barriers in
                        // particular MUST leave TLV's active set or the
                        // releasing warps would never be scheduled.
                        if matches!(
                            reason,
                            StallReason::MemoryDependency | StallReason::MemoryThrottle | StallReason::Sync
                        ) && self.sched.note_memory_stall(slot)
                        {
                            self.sched_block_until = cycle + self.cfg.requeue_penalty as u64;
                        }
                        self.sched.note_blocked(slot);
                    }
                }
            }
            self.order_scratch = order;
        } else {
            next_event = next_event.min(self.sched_block_until);
        }

        // Warp-state sampling (Figure 7) and event hints for the skip
        // logic. Zero-issue cycles must classify every warp to find the
        // next event; dense regions sample every SAMPLE_PERIOD weighted
        // cycles and carry the debt in the sample weights.
        self.sample_debt += env.weight;
        let need_hints = issued_slots.is_empty();
        if need_hints || self.sample_debt >= SAMPLE_PERIOD {
            let weight = self.sample_debt;
            self.sample_debt = 0;
            for i in 0..self.age_order.len() {
                let slot = self.age_order[i];
                if self.warps[slot].is_none() || issued_slots.contains(&slot) {
                    continue;
                }
                match self.check_issue(slot, env, &ports) {
                    Some((reason, hint)) => {
                        env.agg.stalls.record_n(reason, weight);
                        next_event = next_event.min(hint.max(cycle + 1));
                    }
                    None => {
                        env.agg.stalls.record_n(StallReason::NotSelected, weight);
                        next_event = next_event.min(cycle + 1);
                    }
                }
            }
        }

        if !issued_slots.is_empty() {
            next_event = cycle + 1;
        }
        (self.is_active(), next_event)
    }
}

impl Sm {
    /// Hang diagnosis helper (enabled by TANGO_DEBUG_HANG).
    pub fn debug_state(&self, cycle: u64, program: &KernelProgram) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "age_order={:?} {} block_until={} ", self.age_order, self.sched.debug_tlv(), self.sched_block_until);
        for (slot, w) in self.warps.iter().enumerate() {
            if let Some(w) = w.as_ref() {
                let pc = w.pc() as usize;
                let _ = write!(
                    out,
                    "[w{} pc={} {} bar={} mask={:x} fr={}] ",
                    slot,
                    pc,
                    program.instructions()[pc].op,
                    w.at_barrier,
                    w.mask_debug(),
                    w.fetch_ready.saturating_sub(cycle),
                );
            }
        }
        out
    }
}

#[derive(Debug, Default)]
struct Ports {
    sp: u32,
    sfu: u32,
    ldst: u32,
}
