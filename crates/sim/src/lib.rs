//! An execution-driven SIMT GPU architecture simulator.
//!
//! This crate is the reproduction's stand-in for GPGPU-Sim (plus the real
//! GK210/TX1 boards) in the Tango paper: it runs kernel programs written in
//! the [`tango_isa`] virtual ISA on a cycle-level model of a GPU —
//! streaming multiprocessors with scoreboarded in-order warps, GTO/LRR/TLV
//! warp schedulers, a SIMT divergence stack, per-SM L1D caches with MSHRs,
//! a shared L2, a bandwidth-limited DRAM channel, nvprof-style stall
//! attribution, and a GPUWattch-style component power model.
//!
//! The simulator is *execution-driven*: issued instructions really execute
//! (device memory is read and written, the arithmetic happens), so kernel
//! outputs are checked against the `tango-tensor` reference operators while
//! timing and power statistics are collected from the very same run.
//!
//! # Example
//!
//! ```
//! use tango_isa::{DType, Dim3, KernelBuilder, Operand};
//! use tango_sim::{Gpu, GpuConfig, SimOptions};
//!
//! // A kernel that doubles a buffer in place.
//! let mut b = KernelBuilder::new("double");
//! let tid = b.global_tid_x();
//! let addr = b.reg();
//! let v = b.reg();
//! let base = b.load_param(0);
//! b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
//! b.add(DType::U32, addr, addr.into(), base.into());
//! b.ld_global(DType::F32, v, addr, 0);
//! b.add(DType::F32, v, v.into(), v.into());
//! b.st_global(DType::F32, addr, 0, v);
//! b.exit();
//! let program = b.build()?;
//!
//! let mut gpu = Gpu::new(GpuConfig::gp102());
//! let buf = gpu.upload_f32s(&[1.0, 2.0, 3.0, 4.0]);
//! let stats = gpu.launch(&program, Dim3::x(1), Dim3::x(4), &[buf], 0, &SimOptions::new());
//! assert_eq!(gpu.download_f32s(buf, 4), vec![2.0, 4.0, 6.0, 8.0]);
//! assert!(stats.ipc() > 0.0);
//! # Ok::<(), tango_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod decode;
mod exec;
mod gpu;
mod mem;
mod memo;
mod memsys;
mod power;
mod sched;
mod sm;
mod stats;

pub use cache::Cache;
pub use config::{CacheGeometry, GpuConfig, PowerConstants, SchedulerPolicy, SimOptions};
pub use gpu::{Gpu, LaunchFrame, StepStatus};
pub use mem::GlobalMemory;
pub use memo::table_stats as memo_table_stats;
pub use memsys::{MemResponse, MemorySystem};
pub use power::{Component, EnergyBreakdown, PowerMeter};
pub use stats::{CacheStats, KernelStats, StallBreakdown, StallReason};
