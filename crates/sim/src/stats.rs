//! Statistics collected per kernel launch.
//!
//! The categories deliberately mirror the paper's figures: stall reasons
//! use the `nvprof` taxonomy of Figure 7, power components use the
//! GPUWattch legend of Figure 5, and operation/data-type histograms feed
//! Figures 8-10.

use crate::power::EnergyBreakdown;
use std::collections::BTreeMap;
use std::fmt;
use tango_isa::{DType, Opcode};

/// Why a resident warp could not issue in a given cycle (the `nvprof`
/// stall-reason taxonomy of the paper's Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallReason {
    /// Next instruction not yet fetched (branch redirect bubble).
    InstFetch,
    /// Waiting on the result of an arithmetic instruction.
    ExecDependency,
    /// Waiting on the result of a memory load.
    MemoryDependency,
    /// Waiting on the texture unit (unused by these kernels).
    Texture,
    /// Waiting at a block-wide barrier.
    Sync,
    /// Miscellaneous (e.g. drained warp slots at kernel tail).
    Other,
    /// Waiting on a constant-cache fill.
    ConstantMemoryDependency,
    /// Required functional-unit issue port is full this cycle.
    PipeBusy,
    /// Memory subsystem cannot accept more requests (MSHRs full).
    MemoryThrottle,
    /// Warp was ready but the scheduler issued other warps.
    NotSelected,
}

impl StallReason {
    /// All reasons in the stacking order of the paper's Figure 7.
    pub const ALL: [StallReason; 10] = [
        StallReason::InstFetch,
        StallReason::ExecDependency,
        StallReason::MemoryDependency,
        StallReason::Texture,
        StallReason::Sync,
        StallReason::Other,
        StallReason::ConstantMemoryDependency,
        StallReason::PipeBusy,
        StallReason::MemoryThrottle,
        StallReason::NotSelected,
    ];

    /// The `nvprof` metric suffix (`inst_fetch`, `memory_throttle`, ...).
    pub fn name(self) -> &'static str {
        match self {
            StallReason::InstFetch => "inst_fetch",
            StallReason::ExecDependency => "exec_dependency",
            StallReason::MemoryDependency => "memory_dependency",
            StallReason::Texture => "texture",
            StallReason::Sync => "sync",
            StallReason::Other => "other",
            StallReason::ConstantMemoryDependency => "constant_memory_dependency",
            StallReason::PipeBusy => "pipe_busy",
            StallReason::MemoryThrottle => "memory_throttle",
            StallReason::NotSelected => "not_selected",
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-reason stall-cycle sample counts.
///
/// One sample is recorded per resident, unissued warp per cycle, matching
/// how `nvprof` derives its `stall_*` percentages from warp-state sampling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    counts: [u64; 10],
}

impl StallBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        StallBreakdown::default()
    }

    /// Records one sample.
    pub fn record(&mut self, reason: StallReason) {
        self.counts[Self::index(reason)] += 1;
    }

    /// Records `n` samples of the same reason (weighted sampling under
    /// event skipping).
    pub fn record_n(&mut self, reason: StallReason, n: u64) {
        self.counts[Self::index(reason)] += n;
    }

    /// Sample count for one reason.
    pub fn count(&self, reason: StallReason) -> u64 {
        self.counts[Self::index(reason)]
    }

    /// Total samples across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of samples attributed to `reason` (0 when no samples).
    pub fn fraction(&self, reason: StallReason) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(reason) as f64 / total as f64
        }
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }

    /// Scales all counts by `factor` (CTA sampling extrapolation).
    pub fn scale(&mut self, factor: f64) {
        for c in &mut self.counts {
            *c = (*c as f64 * factor).round() as u64;
        }
    }

    /// Iterates `(reason, count)` pairs in Figure 7 order.
    pub fn iter(&self) -> impl Iterator<Item = (StallReason, u64)> + '_ {
        StallReason::ALL.iter().map(|&r| (r, self.count(r)))
    }

    fn index(reason: StallReason) -> usize {
        StallReason::ALL.iter().position(|&r| r == reason).expect("reason in ALL")
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total line accesses.
    pub accesses: u64,
    /// Line hits.
    pub hits: u64,
    /// Line misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio (0 when the cache saw no traffic).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Scales all counters by `factor`.
    pub fn scale(&mut self, factor: f64) {
        self.accesses = (self.accesses as f64 * factor).round() as u64;
        self.hits = (self.hits as f64 * factor).round() as u64;
        self.misses = (self.misses as f64 * factor).round() as u64;
    }
}

/// Everything measured about one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Simulated core cycles from launch to completion.
    pub cycles: u64,
    /// Warp-instructions issued.
    pub warp_instructions: u64,
    /// Thread-instructions executed (warp-instructions weighted by active
    /// lanes) — the counts Figures 8-10 break down.
    pub thread_instructions: u64,
    /// Dynamic opcode histogram (thread-instruction granularity).
    pub op_counts: BTreeMap<Opcode, u64>,
    /// Dynamic data-type histogram (thread-instruction granularity).
    pub dtype_counts: BTreeMap<DType, u64>,
    /// Warp stall-reason samples.
    pub stalls: StallBreakdown,
    /// L1D counters (zeroed when the L1D is bypassed).
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// DRAM line transactions.
    pub dram_accesses: u64,
    /// Constant-cache accesses.
    pub const_accesses: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// Registers per thread (compiler allocation, Table III).
    pub regs_per_thread: u32,
    /// Peak live registers per thread (dataflow analysis, Figure 12).
    pub live_regs_per_thread: u32,
    /// Peak resident threads observed on any SM.
    pub max_resident_threads: u32,
    /// Declared shared memory per CTA in bytes.
    pub smem_bytes: u32,
    /// Constant memory footprint in bytes.
    pub cmem_bytes: u32,
    /// Energy by hardware component.
    pub energy: EnergyBreakdown,
    /// Maximum windowed average power in watts.
    pub peak_power_w: f64,
    /// Whole-kernel average power in watts.
    pub avg_power_w: f64,
    /// Wall-clock kernel time in seconds at the configured core clock.
    pub time_s: f64,
    /// CTAs the launch comprised.
    pub ctas_total: u64,
    /// CTAs simulated in detail (< `ctas_total` under CTA sampling).
    pub ctas_simulated: u64,
}

impl KernelStats {
    /// Allocated register-file bytes per SM at peak residency
    /// (Figure 12's "Max Allocated Registers").
    pub fn allocated_reg_bytes_per_sm(&self) -> u64 {
        self.regs_per_thread as u64 * self.max_resident_threads as u64 * 4
    }

    /// Live register-file bytes per SM at peak residency
    /// (Figure 12's "Max Live Registers").
    pub fn live_reg_bytes_per_sm(&self) -> u64 {
        self.live_regs_per_thread as u64 * self.max_resident_threads as u64 * 4
    }

    /// Instructions per cycle (warp granularity).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_instructions as f64 / self.cycles as f64
        }
    }

    /// Scales the extensive statistics by `factor` — used to extrapolate
    /// CTA-sampled launches to the full grid. Intensive statistics
    /// (ratios, per-thread register counts, peak power) are left alone.
    pub fn scale(&mut self, factor: f64) {
        self.scale_split(factor, factor);
    }

    /// Extrapolates a CTA-sampled launch with separate factors for event
    /// counts (`count_factor` = total/simulated CTAs) and for time
    /// (`cycle_factor` = machine-wave ratio): a grid that still fits the
    /// machine's residency does not take proportionally longer, it runs
    /// wider.
    pub fn scale_split(&mut self, count_factor: f64, cycle_factor: f64) {
        let factor = count_factor;
        if (factor - 1.0).abs() < f64::EPSILON && (cycle_factor - 1.0).abs() < f64::EPSILON {
            return;
        }
        self.cycles = (self.cycles as f64 * cycle_factor).round() as u64;
        self.warp_instructions = (self.warp_instructions as f64 * factor).round() as u64;
        self.thread_instructions = (self.thread_instructions as f64 * factor).round() as u64;
        for v in self.op_counts.values_mut() {
            *v = (*v as f64 * factor).round() as u64;
        }
        for v in self.dtype_counts.values_mut() {
            *v = (*v as f64 * factor).round() as u64;
        }
        self.stalls.scale(factor);
        self.l1d.scale(factor);
        self.l2.scale(factor);
        self.dram_accesses = (self.dram_accesses as f64 * factor).round() as u64;
        self.const_accesses = (self.const_accesses as f64 * factor).round() as u64;
        self.shared_accesses = (self.shared_accesses as f64 * factor).round() as u64;
        self.energy.scale(factor);
        self.time_s *= cycle_factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_breakdown_records_and_fractions() {
        let mut s = StallBreakdown::new();
        s.record(StallReason::PipeBusy);
        s.record(StallReason::PipeBusy);
        s.record(StallReason::MemoryThrottle);
        assert_eq!(s.total(), 3);
        assert_eq!(s.count(StallReason::PipeBusy), 2);
        assert!((s.fraction(StallReason::PipeBusy) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.fraction(StallReason::Sync), 0.0);
    }

    #[test]
    fn stall_iter_covers_all_reasons() {
        let s = StallBreakdown::new();
        assert_eq!(s.iter().count(), 10);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = StallBreakdown::new();
        a.record(StallReason::Sync);
        let mut b = StallBreakdown::new();
        b.record(StallReason::Sync);
        b.record(StallReason::Other);
        a.merge(&b);
        assert_eq!(a.count(StallReason::Sync), 2);
        a.scale(3.0);
        assert_eq!(a.count(StallReason::Sync), 6);
        assert_eq!(a.count(StallReason::Other), 3);
    }

    #[test]
    fn cache_miss_ratio() {
        let c = CacheStats {
            accesses: 10,
            hits: 9,
            misses: 1,
        };
        assert!((c.miss_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn empty_breakdown_has_zero_fraction_everywhere() {
        let s = StallBreakdown::new();
        for r in StallReason::ALL {
            assert_eq!(s.fraction(r), 0.0);
        }
    }
}
