//! Simulated device (global) memory with a bump allocator and
//! footprint tracking.

use std::fmt;

/// Byte-addressed simulated device memory.
///
/// Allocation is append-only within a kernel sequence (networks allocate
/// weights once, then ping-pong activation buffers); the high-water mark is
/// the "Max Device Memory Usage" the paper's Figure 11 reports via
/// `nvprof`.
#[derive(Clone, Default)]
pub struct GlobalMemory {
    data: Vec<u8>,
    next: u32,
    high_water: u32,
}

impl GlobalMemory {
    /// Alignment of every allocation, matching `cudaMalloc`'s 256-byte
    /// guarantee.
    pub const ALIGN: u32 = 256;

    /// An empty memory.
    pub fn new() -> Self {
        GlobalMemory {
            data: Vec::new(),
            // Keep address 0 unused so it can act as a null sentinel.
            next: Self::ALIGN,
            high_water: 0,
        }
    }

    /// Allocates `bytes` and returns the base address.
    ///
    /// # Panics
    ///
    /// Panics if the 4 GiB simulated address space is exhausted.
    pub fn alloc(&mut self, bytes: u32) -> u32 {
        let base = self.next;
        let end = base
            .checked_add(bytes)
            .and_then(|e| e.checked_next_multiple_of(Self::ALIGN))
            .expect("simulated device memory exhausted (4 GiB)");
        self.next = end;
        self.high_water = self.high_water.max(end);
        if self.data.len() < end as usize {
            self.data.resize(end as usize, 0);
        }
        base
    }

    /// Releases everything allocated after `mark` (obtained from
    /// [`mark`](Self::mark)). Networks use this to reuse activation
    /// scratch space between layers while keeping weights resident —
    /// the high-water mark is unaffected.
    pub fn release_to(&mut self, mark: u32) {
        assert!(mark <= self.next, "release_to mark {mark} beyond allocation point {}", self.next);
        self.next = mark.max(Self::ALIGN);
    }

    /// Current allocation point, for use with [`release_to`](Self::release_to).
    pub fn mark(&self) -> u32 {
        self.next
    }

    /// Peak bytes ever allocated (Figure 11's metric).
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water as u64
    }

    /// Currently allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.next.saturating_sub(Self::ALIGN) as u64
    }

    fn check(&self, addr: u32, bytes: u32) {
        assert!(
            (addr as usize) + (bytes as usize) <= self.data.len() && addr >= Self::ALIGN,
            "device memory access out of bounds: addr {addr:#x} len {bytes} (allocated {:#x})",
            self.data.len()
        );
    }

    /// Backing-store size in bytes (the largest valid address bound).
    pub(crate) fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bounds-checked word read that returns `None` instead of panicking —
    /// memo-replay probe verification must tolerate a memory that shrank or
    /// was laid out differently since the recording.
    pub(crate) fn try_read_u32(&self, addr: u32) -> Option<u32> {
        let i = addr as usize;
        if addr < Self::ALIGN || i + 4 > self.data.len() {
            return None;
        }
        Some(u32::from_le_bytes([self.data[i], self.data[i + 1], self.data[i + 2], self.data[i + 3]]))
    }

    /// Reads a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside every allocation (a kernel bug).
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.check(addr, 4);
        let i = addr as usize;
        u32::from_le_bytes([self.data[i], self.data[i + 1], self.data[i + 2], self.data[i + 3]])
    }

    /// Writes a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside every allocation (a kernel bug).
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.check(addr, 4);
        let i = addr as usize;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a 16-bit word.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of bounds.
    pub fn read_u16(&self, addr: u32) -> u16 {
        self.check(addr, 2);
        let i = addr as usize;
        u16::from_le_bytes([self.data[i], self.data[i + 1]])
    }

    /// Writes a 16-bit word.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of bounds.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        self.check(addr, 2);
        let i = addr as usize;
        self.data[i..i + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Copies a float slice into device memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_f32s(&mut self, addr: u32, values: &[f32]) {
        self.check(addr, (values.len() * 4) as u32);
        let base = addr as usize;
        for (k, v) in values.iter().enumerate() {
            self.data[base + k * 4..base + k * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads `len` floats starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_f32s(&self, addr: u32, len: usize) -> Vec<f32> {
        (0..len).map(|k| f32::from_bits(self.read_u32(addr + (k as u32) * 4))).collect()
    }
}

impl fmt::Debug for GlobalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalMemory")
            .field("allocated", &self.allocated_bytes())
            .field("high_water", &self.high_water_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert_eq!(a % GlobalMemory::ALIGN, 0);
        assert_eq!(b % GlobalMemory::ALIGN, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(16);
        m.write_f32s(a, &[1.5, -2.25]);
        assert_eq!(m.read_f32s(a, 2), vec![1.5, -2.25]);
        m.write_u16(a + 8, 0xBEEF);
        assert_eq!(m.read_u16(a + 8), 0xBEEF);
    }

    #[test]
    fn high_water_survives_release() {
        let mut m = GlobalMemory::new();
        let _weights = m.alloc(1024);
        let mark = m.mark();
        let _scratch = m.alloc(4096);
        let peak = m.high_water_bytes();
        m.release_to(mark);
        let _scratch2 = m.alloc(128);
        assert_eq!(m.high_water_bytes(), peak);
        assert!(m.allocated_bytes() < peak);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let m = GlobalMemory::new();
        m.read_u32(4096);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn null_page_is_protected() {
        let mut m = GlobalMemory::new();
        let _ = m.alloc(64);
        m.read_u32(0);
    }
}
