//! GPU configurations (the paper's Table II) and per-run simulation options.

use std::fmt;

/// Warp scheduler policy (the paper's Figure 15/16 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing the same warp until it stalls, then
    /// pick the oldest ready warp. GPGPU-Sim's (and the paper's) default.
    #[default]
    Gto,
    /// Loose round-robin over ready warps.
    Lrr,
    /// Two-level: a small active set scheduled round-robin; warps that hit a
    /// long-latency stall are swapped out for pending warps.
    Tlv,
}

impl SchedulerPolicy {
    /// All policies in the order the paper plots them.
    pub const ALL: [SchedulerPolicy; 3] = [SchedulerPolicy::Gto, SchedulerPolicy::Lrr, SchedulerPolicy::Tlv];

    /// Lower-case name as used in GPGPU-Sim configs (`gto`, `lrr`, `tlv`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerPolicy::Gto => "gto",
            SchedulerPolicy::Lrr => "lrr",
            SchedulerPolicy::Tlv => "tlv",
        }
    }
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Set associativity.
    pub assoc: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or the capacity is not divisible into
    /// whole sets.
    pub fn new(size_bytes: u32, line_bytes: u32, assoc: u32) -> Self {
        assert!(size_bytes > 0 && line_bytes > 0 && assoc > 0, "cache geometry fields must be positive");
        assert_eq!(
            size_bytes % (line_bytes * assoc),
            0,
            "cache size must be a whole number of sets"
        );
        CacheGeometry {
            size_bytes,
            line_bytes,
            assoc,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// Full architectural configuration of a simulated GPU.
///
/// Presets mirror the paper's Table II: a Pascal GP102 (the GPGPU-Sim
/// configuration the detailed statistics use), a Kepler GK210 server GPU,
/// and a Maxwell Tegra X1 mobile GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Marketing/architecture name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SIMD width of a warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_ctas_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Warp-instructions the SM can issue per cycle (total across its
    /// schedulers).
    pub issue_width: u32,
    /// SP/ALU warp-instructions accepted per cycle.
    pub sp_width: u32,
    /// SFU warp-instructions accepted per cycle.
    pub sfu_width: u32,
    /// Load/store warp-instructions accepted per cycle.
    pub ldst_width: u32,
    /// ALU result latency in cycles.
    pub alu_latency: u32,
    /// SFU result latency in cycles.
    pub sfu_latency: u32,
    /// Shared-memory load latency in cycles.
    pub shared_latency: u32,
    /// Constant-cache hit latency in cycles.
    pub const_latency: u32,
    /// L1D hit latency in cycles.
    pub l1_latency: u32,
    /// L2 hit latency in cycles (from the SM, including interconnect).
    pub l2_latency: u32,
    /// DRAM access latency in cycles (on top of L2).
    pub dram_latency: u32,
    /// DRAM bandwidth in bytes per core cycle.
    pub dram_bytes_per_cycle: u32,
    /// Outstanding-miss registers (MSHRs) per SM.
    pub mshrs_per_sm: u32,
    /// Default per-SM L1 data cache (`None` disables the L1D entirely,
    /// the paper's "No L1" configuration).
    pub l1d: Option<CacheGeometry>,
    /// Shared L2 cache.
    pub l2: CacheGeometry,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Default warp scheduler.
    pub scheduler: SchedulerPolicy,
    /// Extra cycles charged when GTO/TLV move a warp between the ready and
    /// pending queues on a long-latency stall. The paper's Observation 12
    /// attributes LRR's advantage on convolution layers to exactly this
    /// queue-management overhead; `bench/ablations` sweeps it.
    pub requeue_penalty: u32,
    /// Branch redirect (instruction fetch) bubble in cycles.
    pub fetch_bubble: u32,
    /// Board-level power constants for this device class.
    pub power: PowerConstants,
}

impl GpuConfig {
    /// Pascal GP102 — the architecture simulator configuration
    /// (GPGPU-Sim development branch, Table II "Simulator" column).
    pub fn gp102() -> Self {
        GpuConfig {
            name: "Pascal GP102 (simulator)".into(),
            num_sms: 28,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_ctas_per_sm: 32,
            registers_per_sm: 65536,
            shared_mem_per_sm: 96 * 1024,
            issue_width: 4,
            sp_width: 2,
            sfu_width: 1,
            ldst_width: 4,
            alu_latency: 6,
            sfu_latency: 18,
            shared_latency: 24,
            const_latency: 8,
            l1_latency: 28,
            l2_latency: 190,
            dram_latency: 350,
            dram_bytes_per_cycle: 320,
            mshrs_per_sm: 24,
            l1d: Some(CacheGeometry::new(64 * 1024, 128, 8)),
            l2: CacheGeometry::new(3 * 1024 * 1024, 128, 16),
            clock_ghz: 1.48,
            scheduler: SchedulerPolicy::Gto,
            requeue_penalty: 6,
            fetch_bubble: 2,
            power: PowerConstants::server(),
        }
    }

    /// Kepler GK210 — the server GPU (one die of a Tesla K80).
    pub fn gk210() -> Self {
        GpuConfig {
            name: "Kepler GK210".into(),
            num_sms: 15,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_ctas_per_sm: 16,
            registers_per_sm: 65536,
            shared_mem_per_sm: 128 * 1024,
            issue_width: 4,
            sp_width: 3,
            sfu_width: 1,
            ldst_width: 2,
            alu_latency: 9,
            sfu_latency: 24,
            shared_latency: 28,
            const_latency: 8,
            l1_latency: 32,
            l2_latency: 210,
            dram_latency: 380,
            dram_bytes_per_cycle: 340,
            mshrs_per_sm: 16,
            l1d: Some(CacheGeometry::new(128 * 1024, 128, 8)),
            l2: CacheGeometry::new(1536 * 1024, 128, 16),
            clock_ghz: 0.745,
            scheduler: SchedulerPolicy::Gto,
            requeue_penalty: 6,
            fetch_bubble: 2,
            power: PowerConstants::server(),
        }
    }

    /// Maxwell Tegra X1 — the mobile GPU (Jetson TX1).
    pub fn tx1() -> Self {
        GpuConfig {
            name: "Maxwell Tegra X1".into(),
            num_sms: 2,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_ctas_per_sm: 32,
            registers_per_sm: 32768,
            shared_mem_per_sm: 48 * 1024,
            issue_width: 4,
            sp_width: 2,
            sfu_width: 1,
            ldst_width: 2,
            alu_latency: 6,
            sfu_latency: 20,
            shared_latency: 24,
            const_latency: 8,
            l1_latency: 28,
            l2_latency: 160,
            dram_latency: 300,
            dram_bytes_per_cycle: 26,
            mshrs_per_sm: 16,
            l1d: Some(CacheGeometry::new(48 * 1024, 128, 6)),
            l2: CacheGeometry::new(256 * 1024, 128, 16),
            clock_ghz: 0.998,
            scheduler: SchedulerPolicy::Gto,
            requeue_penalty: 6,
            fetch_bubble: 2,
            power: PowerConstants::mobile(),
        }
    }

    /// Maximum warps per CTA of `threads` threads.
    pub fn warps_per_cta(&self, cta_threads: u32) -> u32 {
        cta_threads.div_ceil(self.warp_size)
    }

    /// How many CTAs of the given shape fit on one SM, limited by the CTA
    /// slot count, thread count, register file, and shared memory.
    pub fn ctas_per_sm(&self, cta_threads: u32, regs_per_thread: u32, smem_bytes: u32) -> u32 {
        let by_slots = self.max_ctas_per_sm;
        let by_threads = self.max_threads_per_sm / cta_threads.max(1);
        let by_regs = if regs_per_thread == 0 {
            u32::MAX
        } else {
            self.registers_per_sm / (regs_per_thread * cta_threads).max(1)
        };
        let by_smem = self
            .shared_mem_per_sm
            .checked_div(smem_bytes)
            .unwrap_or(u32::MAX);
        by_slots.min(by_threads).min(by_regs).min(by_smem).max(1)
    }
}

/// Energy/power constants for the component-level power model
/// (GPUWattch-style; see `power.rs` for how they are applied).
///
/// All dynamic energies are in nanojoules per event; static powers in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConstants {
    /// Register-file energy per 32-lane operand access.
    pub rf_access_nj: f64,
    /// Instruction-buffer energy per issued warp-instruction.
    pub ibp_nj: f64,
    /// Instruction-cache energy per issued warp-instruction.
    pub icp_nj: f64,
    /// Scheduler energy per issued warp-instruction.
    pub sched_nj: f64,
    /// Pipeline (register staging, result bus) energy per issued
    /// warp-instruction.
    pub pipe_nj: f64,
    /// Integer/simple-ALU execution energy per warp-instruction.
    pub sp_nj: f64,
    /// FP32 execution energy per warp-instruction.
    pub fpu_nj: f64,
    /// SFU execution energy per warp-instruction.
    pub sfu_nj: f64,
    /// L1D energy per line access.
    pub l1_nj: f64,
    /// Texture-cache energy per access (unused by these kernels but kept
    /// for the Figure 5 legend).
    pub tex_nj: f64,
    /// Constant-cache energy per access.
    pub const_nj: f64,
    /// Shared-memory energy per access.
    pub shared_nj: f64,
    /// L2 energy per line access.
    pub l2_nj: f64,
    /// Memory-controller energy per DRAM transaction.
    pub mc_nj: f64,
    /// Interconnect energy per DRAM transaction.
    pub noc_nj: f64,
    /// DRAM energy per line transferred.
    pub dram_nj: f64,
    /// Static power of one idle SM, in watts.
    pub idle_sm_w: f64,
    /// Leakage overhead of one *active* SM beyond its dynamic energy.
    pub active_sm_w: f64,
    /// Constant board/baseline power in watts.
    pub const_w: f64,
}

impl PowerConstants {
    /// Server-class constants (Kepler/Pascal discrete boards). Calibrated
    /// so the suite's peak power lands in the paper's 50-250 W band.
    pub fn server() -> Self {
        PowerConstants {
            rf_access_nj: 0.30,
            ibp_nj: 0.07,
            icp_nj: 0.07,
            sched_nj: 0.09,
            pipe_nj: 0.16,
            sp_nj: 0.16,
            fpu_nj: 0.28,
            sfu_nj: 0.65,
            l1_nj: 0.22,
            tex_nj: 0.22,
            const_nj: 0.05,
            shared_nj: 0.16,
            l2_nj: 2.2,
            mc_nj: 1.6,
            noc_nj: 1.2,
            dram_nj: 26.0,
            idle_sm_w: 1.0,
            active_sm_w: 1.2,
            const_w: 6.0,
        }
    }

    /// Mobile-class constants (Tegra X1).
    pub fn mobile() -> Self {
        PowerConstants {
            rf_access_nj: 0.12,
            ibp_nj: 0.035,
            icp_nj: 0.035,
            sched_nj: 0.045,
            pipe_nj: 0.08,
            sp_nj: 0.08,
            fpu_nj: 0.14,
            sfu_nj: 0.33,
            l1_nj: 0.11,
            tex_nj: 0.11,
            const_nj: 0.025,
            shared_nj: 0.08,
            l2_nj: 0.9,
            mc_nj: 0.65,
            noc_nj: 0.5,
            dram_nj: 10.0,
            idle_sm_w: 0.45,
            active_sm_w: 0.8,
            const_w: 2.2,
        }
    }
}

/// Per-launch simulation options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Scheduler override (`None` uses the config default).
    pub scheduler: Option<SchedulerPolicy>,
    /// L1D capacity override in bytes. `None` keeps the config default;
    /// `Some(0)` bypasses the L1D (the paper's "No L1" bar).
    pub l1d_bytes: Option<u32>,
    /// If set, at most this many CTAs per kernel are simulated in detail
    /// and all statistics are scaled by `total/simulated`. Sound for the
    /// suite's kernels because every CTA of a layer runs the identical
    /// program over a shifted data window (see DESIGN.md).
    pub cta_sample_limit: Option<u64>,
    /// Width of the power-trace window in cycles (peak power is the
    /// maximum windowed average, mirroring a physical power meter's
    /// sampling).
    pub power_window: u64,
    /// Batch replication factor (default 1). Every kernel launch is
    /// simulated as `batch` concurrent copies of its grid: replica CTAs
    /// map to the coordinates of their base CTA, so they execute the
    /// identical program over the identical data (outputs are unchanged)
    /// while the device sees `batch`x the CTAs in flight. Small grids
    /// therefore batch almost for free (they fill otherwise-idle SMs);
    /// grids beyond one machine wave scale linearly — the cost shape a
    /// batched inference server schedules against.
    pub batch: u32,
    /// Launch-memoization override. `None` (the default) defers to the
    /// `TANGO_SIM_MEMO` environment variable (enabled unless set to `0`);
    /// `Some(v)` forces the memo on or off for this launch regardless of
    /// the environment. The memo is exact — identical `KernelStats` and
    /// memory contents either way (see DESIGN.md section 13) — so this
    /// only trades wall-clock time, never results. Excluded from launch
    /// signatures and store keys for the same reason.
    pub memo: Option<bool>,
}

impl SimOptions {
    /// Defaults: config scheduler, config L1D, detailed simulation of at
    /// most 96 CTAs per kernel, 4096-cycle power windows, batch 1.
    pub fn new() -> Self {
        SimOptions {
            scheduler: None,
            l1d_bytes: None,
            cta_sample_limit: Some(96),
            power_window: 4096,
            batch: 1,
            memo: None,
        }
    }

    /// Sets the scheduler policy.
    pub fn with_scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = Some(policy);
        self
    }

    /// Sets (or disables, with 0) the L1D capacity.
    pub fn with_l1d_bytes(mut self, bytes: u32) -> Self {
        self.l1d_bytes = Some(bytes);
        self
    }

    /// Sets the CTA sampling limit (`None` simulates every CTA).
    pub fn with_cta_sample_limit(mut self, limit: Option<u64>) -> Self {
        self.cta_sample_limit = limit;
        self
    }

    /// Sets the batch replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: u32) -> Self {
        assert!(batch >= 1, "batch replication factor must be at least 1");
        self.batch = batch;
        self
    }

    /// Forces launch memoization on or off, overriding `TANGO_SIM_MEMO`.
    /// Tests use this to compare both paths race-free within one process.
    pub fn with_memo(mut self, memo: bool) -> Self {
        self.memo = Some(memo);
        self
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_ii() {
        let gp = GpuConfig::gp102();
        assert_eq!(gp.l1d.unwrap().size_bytes, 64 * 1024); // "64KB (default)"
        assert_eq!(gp.registers_per_sm, 65536);
        let tx1 = GpuConfig::tx1();
        assert_eq!(tx1.registers_per_sm, 32768);
        assert_eq!(tx1.shared_mem_per_sm, 48 * 1024);
        let gk = GpuConfig::gk210();
        assert_eq!(gk.num_sms * 192, 2880); // Table II: 2880 CUDA cores
    }

    #[test]
    fn occupancy_is_limited_by_each_resource() {
        let cfg = GpuConfig::gp102();
        // Thread-limited: 1024-thread CTAs, tiny regs -> 2 CTAs.
        assert_eq!(cfg.ctas_per_sm(1024, 16, 0), 2);
        // Register-limited: 256 threads x 64 regs = 16384 regs -> 4 CTAs.
        assert_eq!(cfg.ctas_per_sm(256, 64, 0), 4);
        // Slot-limited: tiny CTAs -> max_ctas_per_sm.
        assert_eq!(cfg.ctas_per_sm(1, 8, 0), 32);
        // Shared-memory-limited.
        assert_eq!(cfg.ctas_per_sm(32, 8, 48 * 1024), 2);
    }

    #[test]
    fn ctas_per_sm_never_returns_zero() {
        let cfg = GpuConfig::gp102();
        assert_eq!(cfg.ctas_per_sm(2048, 255, 1024 * 1024), 1);
    }

    #[test]
    fn cache_geometry_validates() {
        let g = CacheGeometry::new(64 * 1024, 128, 8);
        assert_eq!(g.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_panics() {
        CacheGeometry::new(1000, 128, 8);
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(SchedulerPolicy::Gto.to_string(), "gto");
        assert_eq!(SchedulerPolicy::ALL.len(), 3);
    }

    #[test]
    fn options_builder_chains() {
        let o = SimOptions::new()
            .with_scheduler(SchedulerPolicy::Lrr)
            .with_l1d_bytes(0)
            .with_cta_sample_limit(None)
            .with_batch(4);
        assert_eq!(o.scheduler, Some(SchedulerPolicy::Lrr));
        assert_eq!(o.l1d_bytes, Some(0));
        assert_eq!(o.cta_sample_limit, None);
        assert_eq!(o.batch, 4);
        assert_eq!(SimOptions::new().batch, 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_batch_is_rejected() {
        let _ = SimOptions::new().with_batch(0);
    }
}
