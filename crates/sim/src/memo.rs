//! Exact launch-level memoization.
//!
//! Tango's one-thread-per-neuron kernels make the same launches over and
//! over: every repeated inference of a network replays the identical
//! sequence of (program, grid, params, data) launches. A launch is a pure
//! function of its static description plus the device state it reads, so
//! its outcome can be content-hashed and replayed the way the harness
//! `RunStore` replays whole runs — but *in process* and at launch
//! granularity, which also accelerates the first, store-cold run of a
//! repeated workload (warmup vs. timed benchmark passes, repeated RNN
//! steps with identical buffers).
//!
//! The memo is **exact**, never approximate — that is what keeps `Stats`
//! byte-identical with the escape hatch (`TANGO_SIM_MEMO=0`) off or on:
//!
//! * The static key hashes the program text, grid/block, parameter words,
//!   shared-memory size, the device config, and every simulation option.
//! * The dynamic part of the input is the device state the launch read:
//!   every *clean first read* of a global word is recorded (address order
//!   and a running value digest) and re-verified against current memory
//!   before a replay; any mismatch falls back to full simulation.
//! * The L2/DRAM pre-state is tracked by a cheap state tag
//!   ([`MemorySystem::state_tag`]): equal tags guarantee equal hierarchy
//!   state, unequal tags fall back to full simulation.
//! * Launches that perform sub-word (`u16`) or unaligned global accesses
//!   poison their recording and are simply never memoized.
//!
//! A hit replays the ordered global-write log, restores the recorded
//! post-launch memory hierarchy, and returns a clone of the recorded
//! [`KernelStats`] — bit-for-bit what full simulation would produce.
//!
//! Tracing (`tango_obs`) disables the memo wholesale: traced runs must
//! emit their full span/counter streams, and because the memo is exact,
//! the traced-vs-untraced byte-identity gate in ci.sh still holds.

use crate::mem::GlobalMemory;
use crate::memsys::MemorySystem;
use crate::stats::KernelStats;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use tango_isa::{Dim3, KernelProgram};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over words with a SplitMix64 finisher — the same construction as
/// the harness `RunStore` key hasher, but in-process only (signatures are
/// never persisted, so they owe no cross-version stability).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SigHasher(u64);

impl SigHasher {
    pub fn new() -> Self {
        SigHasher(FNV_OFFSET)
    }

    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ v as u64).wrapping_mul(FNV_PRIME);
    }

    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
    }

    pub fn write_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.write_u8(b);
        }
        self.write_u8(0xFF); // length delimiter
    }

    pub fn finish(self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl std::fmt::Write for SigHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.write_u8(b);
        }
        Ok(())
    }
}

/// Whether `TANGO_SIM_MEMO` enables the memo (anything but `"0"` does).
fn env_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("TANGO_SIM_MEMO").map_or(true, |v| v != "0"))
}

/// Resolves whether a launch may use the memo: the per-launch option wins
/// over the environment, and tracing always wins over both (a traced run
/// must really execute to emit its spans; exactness keeps its *outputs*
/// identical either way).
pub(crate) fn enabled(opt: Option<bool>) -> bool {
    !tango_obs::is_enabled() && opt.unwrap_or_else(env_enabled)
}

/// The static half of a launch signature: everything known before the
/// first cycle. Two launches with equal static keys run the same program
/// over the same dimensions, parameters, device model, and options — they
/// can still differ in the device *data* they read, which the per-entry
/// probes verify.
pub(crate) fn static_key(
    program: &KernelProgram,
    grid: Dim3,
    block: Dim3,
    params: &[u32],
    smem_bytes: u32,
    config_debug: &str,
    opts_debug: &str,
) -> u64 {
    let mut h = SigHasher::new();
    h.write_str(program.name());
    h.write_u32(program.register_count());
    h.write_u32(program.pred_count());
    h.write_u32(program.smem_bytes());
    for inst in program.instructions() {
        let _ = write!(h, "{inst};");
    }
    for d in [grid, block] {
        h.write_u32(d.x);
        h.write_u32(d.y);
        h.write_u32(d.z);
    }
    h.write_u64(params.len() as u64);
    for &p in params {
        h.write_u32(p);
    }
    h.write_u32(smem_bytes);
    h.write_str(config_debug);
    h.write_str(opts_debug);
    h.finish()
}

/// Records the dynamic inputs (clean global reads) and outputs (ordered
/// global writes) of one live launch. Created on a memo miss, threaded
/// through the interpreter, and turned into a [`MemoEntry`] at `finish`.
#[derive(Debug)]
pub(crate) struct MemoRecorder {
    key: u64,
    pre_tag: u64,
    poisoned: bool,
    /// Statically certified: the verifier proved every global access in
    /// this launch is a 4-byte aligned word, so the per-access poison
    /// probe below is skipped (it could never fire).
    certified: bool,
    /// Bitmap over 4-byte device words: read-or-written already.
    seen: Vec<u64>,
    /// Byte addresses of clean first reads, in simulation order.
    probes: Vec<u32>,
    /// Running digest of the values those probes observed.
    read_hash: SigHasher,
    /// Ordered log of global writes.
    writes: Vec<(u32, u32)>,
    /// One past the highest written byte (replay bounds check).
    max_write_end: u32,
}

impl MemoRecorder {
    pub fn new(key: u64, pre_tag: u64, mem_bytes: usize) -> Self {
        let words = mem_bytes / 4;
        MemoRecorder {
            key,
            pre_tag,
            poisoned: false,
            certified: false,
            seen: vec![0u64; words / 64 + 1],
            probes: Vec::new(),
            read_hash: SigHasher::new(),
            writes: Vec::new(),
            max_write_end: 0,
        }
    }

    /// Marks the launch as statically certified (see
    /// [`crate::Gpu::verify_launch`]): the width/alignment poison probes
    /// are elided because the verifier proved they cannot trigger. The
    /// recording itself is unchanged — replay stays byte-identical.
    pub fn certify(&mut self) {
        self.certified = true;
    }

    /// Drops the recording buffers: a poisoned launch keeps simulating but
    /// stops paying for memory it will never use.
    fn poison(&mut self) {
        self.poisoned = true;
        self.seen = Vec::new();
        self.probes = Vec::new();
        self.writes = Vec::new();
    }

    /// Observes one global load. Only aligned 32-bit accesses are
    /// memoizable; anything narrower would need byte-granular dependence
    /// tracking, so it poisons the recording instead (full simulation is
    /// always correct).
    #[inline]
    pub fn on_global_read(&mut self, addr: u32, wide: bool, value: u32) {
        if self.poisoned {
            return;
        }
        debug_assert!(
            !self.certified || (wide && addr & 3 == 0),
            "certified kernel made a narrow or unaligned read at {addr:#x}"
        );
        if !self.certified && (!wide || addr & 3 != 0) {
            self.poison();
            return;
        }
        let w = (addr >> 2) as usize;
        let (idx, bit) = (w >> 6, 1u64 << (w & 63));
        if self.seen[idx] & bit == 0 {
            self.seen[idx] |= bit;
            self.probes.push(addr);
            self.read_hash.write_u32(value);
        }
    }

    /// Observes one global store.
    #[inline]
    pub fn on_global_write(&mut self, addr: u32, wide: bool, value: u32) {
        if self.poisoned {
            return;
        }
        debug_assert!(
            !self.certified || (wide && addr & 3 == 0),
            "certified kernel made a narrow or unaligned write at {addr:#x}"
        );
        if !self.certified && (!wide || addr & 3 != 0) {
            self.poison();
            return;
        }
        let w = (addr >> 2) as usize;
        self.seen[w >> 6] |= 1u64 << (w & 63);
        self.writes.push((addr, value));
        self.max_write_end = self.max_write_end.max(addr.saturating_add(4));
    }
}

/// One recorded launch under a static key.
struct MemoEntry {
    /// Memory-hierarchy state tag the recording started from.
    pre_tag: u64,
    probes: Vec<u32>,
    read_hash: u64,
    writes: Vec<(u32, u32)>,
    max_write_end: u32,
    /// Exact post-launch L2/DRAM state (carries its own post-launch tag).
    post_memsys: MemorySystem,
    stats: KernelStats,
}

impl MemoEntry {
    fn approx_bytes(&self) -> usize {
        self.probes.len() * 4 + self.writes.len() * 8 + self.post_memsys.approx_clone_bytes() + 4096
    }
}

/// Process-wide memo table. Entries from one `Gpu` serve every other
/// device with the same configuration (probes + tags re-verify state), so
/// a warmup pass accelerates every later run in the process.
fn table() -> &'static Mutex<HashMap<u64, Vec<MemoEntry>>> {
    static TABLE: OnceLock<Mutex<HashMap<u64, Vec<MemoEntry>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

static TABLE_BYTES: AtomicUsize = AtomicUsize::new(0);
/// Hard ceiling on memo memory; beyond it new recordings are dropped
/// (lookups keep working — the table just stops growing).
const MAX_TABLE_BYTES: usize = 512 << 20;
/// Per-entry ceiling: a launch touching this much unique data would bloat
/// the table for a replay that saves relatively little.
const MAX_ENTRY_BYTES: usize = 48 << 20;

/// Looks for a recorded launch matching `key` whose pre-state matches the
/// current device. On a hit, applies the write log to `mem` and returns
/// the recorded stats plus the post-launch memory hierarchy to install.
pub(crate) fn lookup(key: u64, pre_tag: u64, mem: &mut GlobalMemory) -> Option<(KernelStats, MemorySystem)> {
    let guard = table().lock().unwrap_or_else(|e| e.into_inner());
    let entries = guard.get(&key)?;
    for entry in entries {
        if entry.pre_tag != pre_tag || entry.max_write_end as usize > mem.size_bytes() {
            continue;
        }
        let mut h = SigHasher::new();
        let mut ok = true;
        for &addr in &entry.probes {
            match mem.try_read_u32(addr) {
                Some(v) => h.write_u32(v),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || h.finish() != entry.read_hash {
            continue;
        }
        for &(addr, value) in &entry.writes {
            mem.write_u32(addr, value);
        }
        return Some((entry.stats.clone(), entry.post_memsys.clone()));
    }
    None
}

/// Files a completed recording. No-op for poisoned recordings or when the
/// table budget is exhausted.
pub(crate) fn record(rec: MemoRecorder, post_memsys: &MemorySystem, stats: &KernelStats) {
    if rec.poisoned {
        return;
    }
    let entry = MemoEntry {
        pre_tag: rec.pre_tag,
        probes: rec.probes,
        read_hash: rec.read_hash.finish(),
        writes: rec.writes,
        max_write_end: rec.max_write_end,
        post_memsys: post_memsys.clone(),
        stats: stats.clone(),
    };
    let bytes = entry.approx_bytes();
    if bytes > MAX_ENTRY_BYTES {
        return;
    }
    if TABLE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes > MAX_TABLE_BYTES {
        TABLE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
        return;
    }
    table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .entry(rec.key)
        .or_default()
        .push(entry);
}

/// Per-static-key verification verdicts, so a kernel relaunched with the
/// same static description is verified once per process, not once per
/// launch.
fn cert_table() -> &'static Mutex<HashMap<u64, bool>> {
    static CERTS: OnceLock<Mutex<HashMap<u64, bool>>> = OnceLock::new();
    CERTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the cached certification verdict for `key`, computing and
/// caching it with `compute` on first sight.
pub(crate) fn certification(key: u64, compute: impl FnOnce() -> bool) -> bool {
    if let Some(&c) = cert_table().lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return c;
    }
    let c = compute();
    cert_table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, c);
    c
}

/// Memo table occupancy: `(static keys, entries, approximate bytes)`.
/// Exposed for diagnostics and benchmarks.
pub fn table_stats() -> (usize, usize, usize) {
    let guard = table().lock().unwrap_or_else(|e| e.into_inner());
    let keys = guard.len();
    let entries = guard.values().map(Vec::len).sum();
    (keys, entries, TABLE_BYTES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_distinguishes_order_and_values() {
        let mut a = SigHasher::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = SigHasher::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn recorder_poisons_on_narrow_access() {
        let mut r = MemoRecorder::new(1, 1, 4096);
        r.on_global_read(256, true, 7);
        assert_eq!(r.probes.len(), 1);
        r.on_global_read(260, false, 7); // u16 load
        assert!(r.poisoned);
        assert!(r.probes.is_empty(), "poisoning releases buffers");
    }

    #[test]
    fn recorder_probes_each_clean_word_once() {
        let mut r = MemoRecorder::new(1, 1, 4096);
        r.on_global_read(256, true, 7);
        r.on_global_read(256, true, 7);
        assert_eq!(r.probes.len(), 1);
        // A write makes the word internal: later reads need no probe.
        r.on_global_write(512, true, 9);
        r.on_global_read(512, true, 9);
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.writes.len(), 1);
        assert_eq!(r.max_write_end, 516);
    }

    #[test]
    fn recorder_probes_word_read_before_write() {
        let mut r = MemoRecorder::new(1, 1, 4096);
        r.on_global_read(256, true, 3);
        r.on_global_write(256, true, 4);
        assert_eq!(r.probes, vec![256]);
        assert_eq!(r.writes, vec![(256, 4)]);
    }
}
