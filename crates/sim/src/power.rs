//! GPUWattch-style component-level power model.
//!
//! Dynamic energy is charged per micro-architectural event (register-file
//! access, cache access, executed warp-instruction, DRAM transaction);
//! static power is charged per cycle per SM (idle or active) plus a
//! constant board baseline. A windowed trace reproduces what a physical
//! power meter samples, which is how the paper's "peak power" (Figure 3)
//! is defined.

use crate::config::PowerConstants;
use std::fmt;

/// Hardware components of the power breakdown — exactly the legend of the
/// paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Instruction buffer.
    Ibp,
    /// Instruction cache.
    Icp,
    /// L1 data cache.
    Dcp,
    /// Texture cache.
    Tcp,
    /// Constant cache.
    Ccp,
    /// Shared memory.
    Shrdp,
    /// Register file.
    Rfp,
    /// SP (integer/simple ALU) pipelines.
    Spp,
    /// Special-function units.
    Sfup,
    /// FP32 pipelines.
    Fpup,
    /// Warp schedulers.
    Schedp,
    /// L2 cache.
    L2cp,
    /// Memory controllers.
    Mcp,
    /// On-chip interconnect.
    Nocp,
    /// DRAM devices.
    Dramp,
    /// Pipeline registers / result buses.
    Pipep,
    /// Static power of idle cores.
    IdleCorep,
    /// Constant baseline (board, fans, leakage floor).
    ConstDynamicp,
}

impl Component {
    /// All components in the stacking order of Figure 5.
    pub const ALL: [Component; 18] = [
        Component::Ibp,
        Component::Icp,
        Component::Dcp,
        Component::Tcp,
        Component::Ccp,
        Component::Shrdp,
        Component::Rfp,
        Component::Spp,
        Component::Sfup,
        Component::Fpup,
        Component::Schedp,
        Component::L2cp,
        Component::Mcp,
        Component::Nocp,
        Component::Dramp,
        Component::Pipep,
        Component::IdleCorep,
        Component::ConstDynamicp,
    ];

    /// The GPUWattch-style label the paper uses (`RFP`, `L2CP`, ...).
    pub fn label(self) -> &'static str {
        match self {
            Component::Ibp => "IBP",
            Component::Icp => "ICP",
            Component::Dcp => "DCP",
            Component::Tcp => "TCP",
            Component::Ccp => "CCP",
            Component::Shrdp => "SHRDP",
            Component::Rfp => "RFP",
            Component::Spp => "SPP",
            Component::Sfup => "SFUP",
            Component::Fpup => "FPUP",
            Component::Schedp => "SCHEDP",
            Component::L2cp => "L2CP",
            Component::Mcp => "MCP",
            Component::Nocp => "NOCP",
            Component::Dramp => "DRAMP",
            Component::Pipep => "PIPEP",
            Component::IdleCorep => "IDLE_COREP",
            Component::ConstDynamicp => "CONST_DYNAMICP",
        }
    }

    fn index(self) -> usize {
        Component::ALL.iter().position(|&c| c == self).expect("component in ALL")
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Energy in joules, by component.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyBreakdown {
    joules: [f64; 18],
}

impl EnergyBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Adds `joules` to `component`.
    pub fn add(&mut self, component: Component, joules: f64) {
        self.joules[component.index()] += joules;
    }

    /// Energy attributed to one component.
    pub fn get(&self, component: Component) -> f64 {
        self.joules[component.index()]
    }

    /// Total energy.
    pub fn total(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Fraction of the total attributed to `component` (0 if empty).
    pub fn fraction(&self, component: Component) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.get(component) / t
        }
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        for i in 0..self.joules.len() {
            self.joules[i] += other.joules[i];
        }
    }

    /// Scales every component by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for j in &mut self.joules {
            *j *= factor;
        }
    }

    /// Iterates `(component, joules)` pairs in Figure 5 order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, f64)> + '_ {
        Component::ALL.iter().map(|&c| (c, self.get(c)))
    }
}

/// Accumulates energy during a launch and maintains the windowed power
/// trace whose maximum is the reported peak power.
#[derive(Debug, Clone)]
pub struct PowerMeter {
    constants: PowerConstants,
    cycle_time_s: f64,
    window_cycles: u64,
    total: EnergyBreakdown,
    window_joules: f64,
    window_start: u64,
    window_span: u64,
    peak_power_w: f64,
    trace: Vec<f64>,
}

impl PowerMeter {
    /// Creates a meter for a device with the given constants and clock.
    pub fn new(constants: PowerConstants, clock_ghz: f64, window_cycles: u64) -> Self {
        PowerMeter {
            constants,
            cycle_time_s: 1e-9 / clock_ghz,
            window_cycles: window_cycles.max(1),
            total: EnergyBreakdown::new(),
            window_joules: 0.0,
            window_start: 0,
            window_span: 0,
            peak_power_w: 0.0,
            trace: Vec::new(),
        }
    }

    /// The model's constants.
    pub fn constants(&self) -> &PowerConstants {
        &self.constants
    }

    /// Charges `nanojoules` of dynamic energy to `component`.
    pub fn charge_nj(&mut self, component: Component, nanojoules: f64) {
        let j = nanojoules * 1e-9;
        self.total.add(component, j);
        self.window_joules += j;
    }

    /// Charges the per-cycle static power for `idle_sms` idle SMs,
    /// `active_sms` SMs with resident work, and the board baseline. Call
    /// once per simulated cycle.
    pub fn charge_static_cycle(&mut self, cycle: u64, idle_sms: u32, active_sms: u32) {
        self.charge_static_span(cycle, 1, idle_sms, active_sms);
    }

    /// Bulk variant of [`charge_static_cycle`](Self::charge_static_cycle):
    /// charges `span` cycles at once (the event-skipping launch loop jumps
    /// over stalled stretches and settles the static power here).
    pub fn charge_static_span(&mut self, cycle: u64, span: u64, idle_sms: u32, active_sms: u32) {
        if cycle >= self.window_start + self.window_cycles {
            self.close_window();
            self.window_start = cycle;
        }
        self.window_span += span;
        let t = self.cycle_time_s * span as f64;
        let w = self.constants.idle_sm_w * idle_sms as f64
            + self.constants.active_sm_w * active_sms as f64;
        let j = w * t;
        self.total.add(Component::IdleCorep, self.constants.idle_sm_w * idle_sms as f64 * t);
        self.total.add(
            Component::ConstDynamicp,
            (self.constants.const_w + self.constants.active_sm_w * active_sms as f64) * t,
        );
        self.window_joules += j + self.constants.const_w * t;
    }

    fn close_window(&mut self) {
        // Divide by the cycles the window actually covered: event
        // skipping stretches windows past their nominal width, and the
        // final window of a short launch covers less.
        let covered = self.window_span.max(1);
        let window_time = covered as f64 * self.cycle_time_s;
        if window_time > 0.0 && self.window_joules > 0.0 {
            let w = self.window_joules / window_time;
            self.trace.push(w);
            if w > self.peak_power_w {
                self.peak_power_w = w;
            }
        }
        self.window_joules = 0.0;
        self.window_span = 0;
    }

    /// Finalizes the trace and returns `(energy, peak_power_w, trace)`.
    pub fn finish(mut self) -> (EnergyBreakdown, f64, Vec<f64>) {
        self.close_window();
        (self.total, self.peak_power_w, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_cover_figure5_legend() {
        assert_eq!(Component::ALL.len(), 18);
        assert_eq!(Component::Rfp.label(), "RFP");
        assert_eq!(Component::IdleCorep.label(), "IDLE_COREP");
    }

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut e = EnergyBreakdown::new();
        e.add(Component::Rfp, 3.0);
        e.add(Component::L2cp, 1.0);
        assert_eq!(e.total(), 4.0);
        assert!((e.fraction(Component::Rfp) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn meter_peak_is_max_window() {
        let mut m = PowerMeter::new(PowerConstants::server(), 1.0, 10);
        // Quiet first window.
        for c in 0..10 {
            m.charge_static_cycle(c, 1, 0);
        }
        // Hot second window.
        for c in 10..20 {
            m.charge_nj(Component::Rfp, 50.0);
            m.charge_static_cycle(c, 0, 1);
        }
        let (energy, peak, trace) = m.finish();
        assert!(energy.total() > 0.0);
        assert_eq!(trace.len(), 2);
        assert!(trace[1] > trace[0], "hot window should be hotter: {trace:?}");
        assert!((peak - trace[1]).abs() < 1e-9);
    }

    #[test]
    fn static_power_includes_baseline() {
        let mut m = PowerMeter::new(PowerConstants::server(), 1.0, 4);
        for c in 0..8 {
            m.charge_static_cycle(c, 4, 0);
        }
        let (_, peak, _) = m.finish();
        let c = PowerConstants::server();
        let expect = 4.0 * c.idle_sm_w + c.const_w;
        assert!((peak - expect).abs() < 0.5, "peak {peak} vs {expect}");
    }

    #[test]
    fn scale_scales_everything() {
        let mut e = EnergyBreakdown::new();
        e.add(Component::Dramp, 2.0);
        e.scale(0.5);
        assert_eq!(e.get(Component::Dramp), 1.0);
    }
}
