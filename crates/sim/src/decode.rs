//! Flat pre-decoded instruction form for the SM issue stage.
//!
//! `Instruction` is the builder-facing form: `Option`s, a `Vec` of enum
//! operands, and iterator-based dependence queries. The issue stage walks
//! it every cycle for every resident warp, so `begin_launch` lowers the
//! program once into this fixed-size, branch-light form. Decoding carries
//! no semantics of its own — the functional interpreter in `exec.rs` still
//! executes the original `Instruction` — it only precomputes what the
//! scoreboard and the timing/energy accounting ask per issue attempt:
//! source registers (in operand order, duplicates kept so register-file
//! access counts are unchanged), destination indices, the functional unit,
//! and the constant-bank slot of `ld.const` instructions.

use tango_isa::{AddrSpace, DType, FuncUnit, Instruction, KernelProgram, Opcode, Operand};

/// All data types in declaration (discriminant) order, so an array counter
/// indexed by `dtype as usize` can be folded back to the enum.
pub(crate) const DTYPE_ORDER: [DType; 6] = [
    DType::F32,
    DType::S32,
    DType::U32,
    DType::U16,
    DType::S16,
    DType::Pred,
];

/// One pre-decoded instruction: everything `check_issue`/`issue` consult,
/// flattened to plain scalars.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedInst {
    pub op: Opcode,
    pub dtype: DType,
    pub unit: FuncUnit,
    /// Destination register, if the op writes one.
    pub dst: Option<u8>,
    /// Destination predicate (for `set`).
    pub pdst: Option<u8>,
    /// Guard predicate index, if guarded.
    pub guard: Option<u8>,
    /// Source registers in operand order (duplicates preserved).
    pub reads: [u8; 3],
    pub nreads: u8,
    /// `ld`/`st` to global memory (the MSHR-throttled class).
    pub is_global_mem: bool,
    pub space: Option<AddrSpace>,
    /// Constant-bank word index of an immediate-addressed `ld.const`.
    pub const_param_index: Option<usize>,
}

impl DecodedInst {
    fn from_inst(inst: &Instruction) -> Self {
        let mut reads = [0u8; 3];
        let mut nreads = 0u8;
        for s in &inst.srcs {
            if let Operand::Reg(r) = s {
                reads[nreads as usize] = r.0;
                nreads += 1;
            }
        }
        let const_param_index = if inst.op == Opcode::Ld && inst.space == Some(AddrSpace::Const) {
            match inst.srcs.first() {
                Some(Operand::Imm(off)) => Some((*off / 4) as usize),
                _ => None,
            }
        } else {
            None
        };
        DecodedInst {
            op: inst.op,
            dtype: inst.dtype,
            unit: inst.op.func_unit(),
            dst: inst.dst.map(|r| r.0),
            pdst: inst.pdst.map(|p| p.0),
            guard: inst.guard.map(|(p, _)| p.0),
            reads,
            nreads,
            is_global_mem: inst.op.is_memory() && inst.space == Some(AddrSpace::Global),
            space: inst.space,
            const_param_index,
        }
    }
}

/// Lowers a validated program into its flat issue-stage form. Index `i`
/// decodes `program.instructions()[i]`.
pub(crate) fn decode_program(program: &KernelProgram) -> Vec<DecodedInst> {
    program.instructions().iter().map(DecodedInst::from_inst).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_isa::{CmpOp, Dim3, KernelBuilder};

    #[test]
    fn dtype_order_matches_discriminants() {
        for (i, &t) in DTYPE_ORDER.iter().enumerate() {
            assert_eq!(t as usize, i, "{t:?} discriminant moved");
        }
    }

    #[test]
    fn opcode_all_matches_discriminants() {
        // Array counters index by `op as usize` and fold back via ALL.
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op as usize, i, "{op:?} discriminant moved");
        }
    }

    #[test]
    fn decode_preserves_scoreboard_facts() {
        let mut b = KernelBuilder::new("dec");
        let tid = b.reg();
        let addr = b.reg();
        let v = b.reg();
        let p = b.pred();
        b.tid_x(tid);
        let base = b.load_param(0);
        b.set(CmpOp::Lt, DType::U32, p, tid.into(), Operand::imm_u32(8));
        b.shl(DType::U32, addr, tid.into(), Operand::imm_u32(2));
        b.add(DType::U32, addr, addr.into(), base.into());
        b.ld_global(DType::F32, v, addr, 0);
        b.st_global(DType::F32, addr, 0, v);
        b.exit();
        let prog = b.build().unwrap();
        let dec = decode_program(&prog);
        assert_eq!(dec.len(), prog.instructions().len());
        for (d, inst) in dec.iter().zip(prog.instructions()) {
            assert_eq!(d.op, inst.op);
            assert_eq!(d.unit, inst.op.func_unit());
            assert_eq!(d.dst.map(u32::from), inst.dst.map(|r| u32::from(r.0)));
            assert_eq!(d.nreads as usize, inst.reads().count());
            let regs: Vec<u8> = inst.reads().map(|r| r.0).collect();
            assert_eq!(&d.reads[..d.nreads as usize], &regs[..]);
            assert_eq!(
                d.is_global_mem,
                inst.op.is_memory() && inst.space == Some(AddrSpace::Global)
            );
        }
        let _ = Dim3::x(1);
    }
}
