//! Shared plumbing for the reproduction binaries (`fig01`..`fig16`,
//! `table1`..`table4`, `repro_all`) and the Criterion benches.
//!
//! Each binary regenerates one table or figure of the paper and prints the
//! paper-style rows; `repro_all` runs everything and writes the outputs
//! under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;
use tango::Characterizer;
use tango_nets::Preset;
use tango_sim::GpuConfig;

/// The deterministic seed every reproduction binary uses.
pub const SEED: u64 = 0x7A16_0201_9151;

/// Preset selected by `TANGO_PRESET` (`paper`, `bench`, `tiny`);
/// defaults to `bench`, the scale DESIGN.md documents for the
/// timing/power experiments.
pub fn preset_from_env() -> Preset {
    match std::env::var("TANGO_PRESET").as_deref() {
        Ok("paper") => Preset::Paper,
        Ok("tiny") => Preset::Tiny,
        _ => Preset::Bench,
    }
}

/// The characterizer the simulated figures use: GP102 at the environment
/// preset.
pub fn characterizer() -> Characterizer {
    Characterizer::new(GpuConfig::gp102(), preset_from_env(), SEED)
}

/// Prints `content` and also writes it to `results/<name>.txt` (best
/// effort — printing is the contract, the file is a convenience).
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), content);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preset_is_bench() {
        // The env var is unset in tests unless a caller set it.
        if std::env::var_os("TANGO_PRESET").is_none() {
            assert_eq!(preset_from_env(), Preset::Bench);
        }
    }

    #[test]
    fn characterizer_uses_gp102() {
        assert!(characterizer().config().name.contains("GP102"));
    }
}
