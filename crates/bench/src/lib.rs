//! Shared plumbing for the reproduction binaries (`fig01`..`fig16`,
//! `table1`..`table4`, `repro_all`) and the in-tree microbenches.
//!
//! Each binary regenerates one table or figure of the paper and prints
//! the paper-style rows; `repro_all` schedules every experiment through
//! the `tango-harness` suite scheduler. All binaries share one
//! process-wide [`RunStore`] (persisted under `results/store/`), so any
//! simulation one binary performs is a cache hit for every later one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;

use std::fs;
use std::sync::{Arc, OnceLock};
use tango::Characterizer;
use tango_harness::{results_root, RunStore};
use tango_nets::Preset;
use tango_sim::GpuConfig;

/// The deterministic seed every reproduction binary uses.
pub const SEED: u64 = 0x7A16_0201_9151;

/// Preset selected by `TANGO_PRESET` (`paper`, `bench`, `tiny`);
/// defaults to `bench`, the scale DESIGN.md documents for the
/// timing/power experiments.
pub fn preset_from_env() -> Preset {
    match std::env::var("TANGO_PRESET").as_deref() {
        Ok("paper") => Preset::Paper,
        Ok("tiny") => Preset::Tiny,
        _ => Preset::Bench,
    }
}

/// Timed sample count from `TANGO_BENCH_SAMPLES`: unset means
/// `default`; a set value must parse as a positive integer. Same
/// strictness as `TANGO_JOBS` ([`tango_harness::workers_from_env`]): a
/// value that is present but unusable (`0`, `-1`, `lots`, an empty
/// string) is an error naming the variable, not a silent default.
///
/// # Errors
///
/// Returns a human-readable message when the variable is set to `0`,
/// garbage, or a non-UTF-8 value.
pub fn samples_from_env(default: u32) -> std::result::Result<u32, String> {
    match std::env::var("TANGO_BENCH_SAMPLES") {
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(0) => Err("TANGO_BENCH_SAMPLES must be a positive sample count, got 0 (unset it for the default)".into()),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("TANGO_BENCH_SAMPLES must be a positive sample count, got {v:?}")),
        },
        Err(std::env::VarError::NotPresent) => Ok(default),
        Err(std::env::VarError::NotUnicode(_)) => Err("TANGO_BENCH_SAMPLES is set to a non-UTF-8 value".into()),
    }
}

/// The process-wide persistent run store at the default location
/// (`results/store/`, or under `TANGO_RESULTS_DIR`).
pub fn store_handle() -> Arc<RunStore> {
    static STORE: OnceLock<Arc<RunStore>> = OnceLock::new();
    STORE.get_or_init(|| Arc::new(RunStore::open_default())).clone()
}

/// The characterizer the simulated figures use: GP102 at the environment
/// preset, backed by the shared [`store_handle`] so repeated runs are
/// served from the store.
pub fn characterizer() -> Characterizer {
    Characterizer::new(GpuConfig::gp102(), preset_from_env(), SEED).with_source(store_handle())
}

/// Prints `content` and also writes it to `results/<name>.txt` at the
/// workspace root (best effort — printing is the contract, the file is
/// a convenience). The directory is resolved via
/// [`tango_harness::results_root`], so it does not depend on the
/// process working directory.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_root();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), content);
    }
}

/// Like [`emit`] but for machine-readable artifacts: writes `content`
/// verbatim to `results/<name>` (full file name, e.g. `BENCH_sim.json`)
/// and prints it, so CI can consume either the file or stdout.
pub fn emit_file(name: &str, content: &str) {
    println!("{content}");
    let dir = results_root();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(name), content);
    }
}

/// Writes `content` verbatim to `results/<name>` *without* printing —
/// for opt-in sidecar artifacts (the `TANGO_METRICS=1` exports) that
/// must not alter a binary's stdout contract.
pub fn write_result_file(name: &str, content: &str) {
    let dir = results_root();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(name), content);
    }
}

/// Appends one line to `results/<name>`, creating the file if needed —
/// for append-only trajectory logs (`bench_history.jsonl`) that
/// accumulate one record per run instead of being overwritten.
pub fn append_line(name: &str, line: &str) {
    use std::io::Write;
    let dir = results_root();
    if fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(dir.join(name)) {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// A minimal flat JSON-object builder for the `BENCH_*.json` perf
/// baselines — insertion-ordered, strings escaped, and every number
/// guaranteed finite (non-finite values are clamped to `0`, so a
/// degenerate measurement can never produce `NaN`/`inf`, which are not
/// JSON).
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn push(&mut self, key: &str, rendered: String) {
        self.fields.push((key.to_string(), rendered));
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect();
        self.push(key, format!("\"{escaped}\""));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.push(key, value.to_string());
        self
    }

    /// Adds a float field; non-finite values render as `0` so the output
    /// is always valid JSON.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let safe = if value.is_finite() { value } else { 0.0 };
        self.push(key, format!("{safe:.6}"));
        self
    }

    /// Returns the rendered value of `key`, if present — for composing
    /// derived records (the bench history line copies fields out of the
    /// per-leg objects).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Adds an already-rendered field verbatim. Only pass values
    /// obtained from [`get`](Self::get) on another builder; arbitrary
    /// strings would break the valid-JSON guarantee.
    pub fn raw(mut self, key: &str, rendered: &str) -> Self {
        self.push(key, rendered.to_string());
        self
    }

    /// Renders the object as a single-line JSON string.
    pub fn render(&self) -> String {
        let body: Vec<String> = self.fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preset_is_bench() {
        // The env var is unset in tests unless a caller set it.
        if std::env::var_os("TANGO_PRESET").is_none() {
            assert_eq!(preset_from_env(), Preset::Bench);
        }
    }

    #[test]
    fn characterizer_uses_gp102_with_the_shared_store() {
        let ch = characterizer();
        assert!(ch.config().name.contains("GP102"));
        assert!(ch.source().is_some(), "figures must route through the store");
    }

    #[test]
    fn store_handle_is_shared() {
        assert!(Arc::ptr_eq(&store_handle(), &store_handle()));
    }

    #[test]
    fn json_builder_emits_valid_escaped_json() {
        let obj = JsonObject::new()
            .str("bench", "sim")
            .str("tricky", "a\"b\\c\nd")
            .int("cycles", 123456)
            .num("wall_s", 0.25)
            .num("rate", f64::NAN)
            .render();
        tango_obs::json::validate(&obj).expect("builder output must be valid JSON");
        assert!(obj.starts_with("{\"bench\":\"sim\""), "insertion order preserved: {obj}");
        assert!(obj.contains("\"rate\":0.000000"), "non-finite must clamp to 0: {obj}");
    }
}
