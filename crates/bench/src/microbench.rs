//! Minimal in-tree microbenchmark harness.
//!
//! The workspace builds fully offline, so the bench targets cannot pull
//! in an external framework; this module provides the small subset they
//! need: named benchmarks, a fixed warm-up, a handful of timed samples,
//! and a one-line `min/median/mean` report per benchmark.
//!
//! `cargo bench` invokes each `harness = false` target with a `--bench`
//! flag (and test runners may add `--nocapture` etc.); flags are
//! ignored. The first non-flag argument, if any, is a substring filter
//! on benchmark names. `TANGO_BENCH_SAMPLES` overrides the sample count
//! (default 5).

use std::time::{Duration, Instant};

/// Collects and runs the benchmarks of one bench target.
pub struct Runner {
    filter: Option<String>,
    samples: usize,
    ran: usize,
}

impl Runner {
    /// A runner configured from the process arguments and environment.
    ///
    /// Exits the process with status 2 when `TANGO_BENCH_SAMPLES` is
    /// set but unusable — same convention as `TANGO_JOBS`: a typo'd
    /// sample count should stop the run, not silently fall back.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let samples = match crate::samples_from_env(5) {
            Ok(n) => n as usize,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        Runner {
            filter,
            samples,
            ran: 0,
        }
    }

    /// Times `f` (after one untimed warm-up call) unless the name is
    /// filtered out, and prints a report line.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        f();
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "bench {name:<40} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            fmt(min),
            fmt(median),
            fmt(mean),
            times.len()
        );
        self.ran += 1;
    }

    /// Prints the closing summary. Call once at the end of `main`.
    pub fn finish(self) {
        println!("bench: {} benchmark(s) run", self.ran);
    }
}

fn fmt(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_times_and_counts() {
        let mut r = Runner {
            filter: None,
            samples: 2,
            ran: 0,
        };
        let mut calls = 0;
        r.bench("noop", || calls += 1);
        // 1 warm-up + 2 samples.
        assert_eq!(calls, 3);
        assert_eq!(r.ran, 1);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut r = Runner {
            filter: Some("conv".into()),
            samples: 1,
            ran: 0,
        };
        let mut calls = 0;
        r.bench("softmax", || calls += 1);
        assert_eq!(calls, 0);
        r.bench("conv3x3", || calls += 1);
        assert_eq!(calls, 2);
        assert_eq!(r.ran, 1);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt(Duration::from_micros(70)), "70.0 us");
    }
}
