//! Regenerates Figure 11: memory footprint of the full-size models.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    tango_bench::emit("fig11", &figures::fig11_memory_footprint(&ch).expect("builds").to_string());
}
