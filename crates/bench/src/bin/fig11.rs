//! Regenerates Figure 11: memory footprint of the full-size models.
use tango::figures;
fn main() {
    tango_bench::emit("fig11", &figures::fig11_memory_footprint(tango_bench::SEED).expect("builds").to_string());
}
