//! Regenerates Figure 7: stall-cycle breakdown per layer type (GK210).
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    tango_bench::emit("fig07", &figures::fig7_stall_breakdown(&ch).expect("runs").to_string());
}
