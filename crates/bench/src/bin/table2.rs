//! Regenerates Table II (GPU architectures used for evaluation).
fn main() {
    tango_bench::emit("table2", &tango::tables::table2_gpus());
}
