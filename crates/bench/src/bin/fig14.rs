//! Regenerates Figure 14: L2 miss ratio per layer type without L1D.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_cnns_no_l1(&ch).expect("runs");
    tango_bench::emit("fig14", &figures::fig14_l2_miss_ratio(&runs).to_string());
}
