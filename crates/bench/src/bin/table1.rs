//! Regenerates Table I (input/output and pre-trained models).
fn main() {
    tango_bench::emit("table1", &tango::tables::table1_models());
}
