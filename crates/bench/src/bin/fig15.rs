//! Regenerates Figure 15: warp-scheduler sensitivity.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    tango_bench::emit("fig15", &figures::fig15_scheduler_sensitivity(&ch).expect("runs").to_string());
}
