//! Regenerates Figure 4: average power per layer type.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_default_suite(&ch).expect("suite runs");
    tango_bench::emit("fig04", &figures::fig4_power_per_layer_type(&runs).to_string());
}
