//! Perf baseline: measures how fast the toolchain itself runs and
//! writes two machine-readable artifacts for CI trend tracking.
//!
//! * `results/BENCH_sim.json` — raw simulator throughput
//!   (simulated-cycles per wall-clock second) for one CNN (CifarNet)
//!   and one RNN (GRU), measured over direct `simulate_run` calls with
//!   a warmup pass excluded from timing.
//! * `results/BENCH_serve.json` — serve-engine throughput: requests per
//!   wall-clock second and per simulated megacycle for an open-loop
//!   trace at offered load 1.0, with batch costs precomputed through
//!   the store so the timed region is the engine itself.
//!
//! Wall-clock numbers vary run to run (this is the one binary in the
//! suite whose output is *meant* to measure the host); the simulated
//! quantities embedded alongside them (total cycles, completed
//! requests) stay deterministic, so a regression in either axis is
//! attributable.

use std::process::ExitCode;
use std::time::Instant;
use tango::{simulate_run, RunSpec};
use tango_bench::{emit_file, preset_from_env, store_handle, JsonObject, SEED};
use tango_harness::workers_from_env;
use tango_nets::NetworkKind;
use tango_serve::{run_trace, ArrivalTrace, BatchPolicy, CostModel, ServeConfig, SimCostModel};
use tango_sim::{GpuConfig, SimOptions};

/// Timed simulator passes per network (after one untimed warmup).
const TIMED_RUNS: u32 = 2;
const DEVICES: usize = 2;
const DISTINCT_INPUTS: u64 = 4;
const REQUESTS: usize = 200;
const MAX_BATCH: u32 = 8;

fn sim_leg(kinds: &[NetworkKind]) -> tango::Result<JsonObject> {
    let preset = preset_from_env();
    let mut obj = JsonObject::new()
        .str("bench", "sim")
        .str("preset", &preset.to_string())
        .str("seed", &format!("{SEED:#x}"))
        .int("timed_runs", TIMED_RUNS as u64);
    for &kind in kinds {
        let spec = RunSpec {
            config: GpuConfig::gp102(),
            preset,
            seed: SEED,
            kind,
            options: SimOptions::new(),
        };
        let warm = simulate_run(&spec)?;
        let cycles = warm.report.total_cycles();
        let start = Instant::now();
        for _ in 0..TIMED_RUNS {
            let run = simulate_run(&spec)?;
            assert_eq!(run.report.total_cycles(), cycles, "simulator must be deterministic");
        }
        let wall_s = start.elapsed().as_secs_f64();
        let key = kind.name().to_ascii_lowercase();
        obj = obj
            .int(&format!("{key}_total_cycles"), cycles)
            .num(&format!("{key}_wall_s"), wall_s)
            .num(
                &format!("{key}_sim_cycles_per_sec"),
                (cycles * TIMED_RUNS as u64) as f64 / wall_s,
            );
    }
    Ok(obj)
}

fn serve_leg(kinds: &[NetworkKind], workers: usize) -> tango_serve::Result<JsonObject> {
    let preset = preset_from_env();
    let cost = SimCostModel::new(store_handle(), GpuConfig::gp102(), preset, SEED, SimOptions::new());
    cost.precompute(kinds, MAX_BATCH, workers)?;

    let mut obj = JsonObject::new()
        .str("bench", "serve")
        .str("preset", &preset.to_string())
        .str("seed", &format!("{SEED:#x}"))
        .int("devices", DEVICES as u64)
        .int("requests", REQUESTS as u64)
        .int("max_batch", MAX_BATCH as u64);
    for &kind in kinds {
        let service_1 = cost.batch_cycles(kind, 1)?;
        let interarrival = (service_1 / DEVICES as u64).max(1);
        let trace = ArrivalTrace::open_loop(&[kind], REQUESTS, interarrival, DISTINCT_INPUTS, SEED);
        let config = ServeConfig {
            devices: DEVICES,
            queue_bound: 256,
            policy: BatchPolicy {
                max_batch: MAX_BATCH,
                max_delay_cycles: service_1 / 2,
            },
        };
        let start = Instant::now();
        let report = run_trace(&trace, &config, &cost)?;
        let wall_s = start.elapsed().as_secs_f64();
        let key = kind.name().to_ascii_lowercase();
        obj = obj
            .int(&format!("{key}_completed"), report.completed() as u64)
            .int(&format!("{key}_shed"), report.shed() as u64)
            .num(&format!("{key}_wall_s"), wall_s)
            .num(&format!("{key}_requests_per_sec"), report.completed() as f64 / wall_s)
            .num(&format!("{key}_req_per_mcycle"), report.throughput_per_mcycle());
    }
    Ok(obj)
}

fn run() -> ExitCode {
    let workers = match workers_from_env("TANGO_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let kinds = [NetworkKind::CifarNet, NetworkKind::Gru];

    eprintln!("[perf] sim leg: {TIMED_RUNS} timed simulate_run passes per network");
    let sim = match sim_leg(&kinds) {
        Ok(obj) => obj,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    emit_file("BENCH_sim.json", &sim.render());

    eprintln!("[perf] serve leg: {REQUESTS} requests per network ({workers} precompute workers)");
    let serve = match serve_leg(&kinds, workers) {
        Ok(obj) => obj,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    emit_file("BENCH_serve.json", &serve.render());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    run()
}
