//! Perf baseline: measures how fast the toolchain itself runs and
//! writes machine-readable artifacts for CI trend tracking.
//!
//! * `results/BENCH_sim.json` — raw simulator throughput
//!   (simulated-cycles per wall-clock second) for one CNN (CifarNet)
//!   and one RNN (GRU), measured over direct `simulate_run` calls. The
//!   first pass is reported separately as the *cold* leg (memo table
//!   empty — every launch fully simulated); the timed passes that
//!   follow replay from the launch-memo table when `TANGO_SIM_MEMO` is
//!   enabled, so the cold/warm ratio is the memoization speedup.
//! * `results/BENCH_serve.json` — serve-engine throughput: requests per
//!   wall-clock second and per simulated megacycle for an open-loop
//!   trace at offered load 1.0, with batch costs precomputed through
//!   the store so the timed region is the engine itself.
//! * `results/BENCH_fleet.json` — fleet-engine throughput: requests per
//!   wall-clock second for each routing policy over a diurnal trace
//!   against three table-costed heterogeneous pools with autoscaling on,
//!   so the timed region is pure engine (no store, no simulator).
//! * `results/bench_history.jsonl` — one appended line per run with the
//!   headline rates, so the perf trajectory of the codebase is
//!   recorded over time instead of overwritten.
//!
//! Wall-clock numbers vary run to run (this is the one binary in the
//! suite whose output is *meant* to measure the host); the simulated
//! quantities embedded alongside them (total cycles, completed
//! requests) stay deterministic, so a regression in either axis is
//! attributable.
//!
//! `TANGO_BENCH_SAMPLES` overrides the timed pass count (default 2);
//! like `TANGO_JOBS`, a set-but-unusable value exits with status 2.

use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use tango::{simulate_run, RunSpec};
use tango_bench::{append_line, emit_file, preset_from_env, samples_from_env, store_handle, JsonObject, SEED};
use tango_harness::workers_from_env;
use tango_nets::NetworkKind;
use tango_serve::{run_trace, ArrivalTrace, BatchPolicy, CostModel, ServeConfig, SimCostModel};
use tango_sim::{memo_table_stats, GpuConfig, SimOptions};

/// Default timed simulator passes per network (after the cold pass).
const DEFAULT_TIMED_RUNS: u32 = 2;
const DEVICES: usize = 2;
const DISTINCT_INPUTS: u64 = 4;
const REQUESTS: usize = 200;
const MAX_BATCH: u32 = 8;

/// What the launch-memo layer will do for this process, per the same
/// env rule the simulator applies (`TANGO_SIM_MEMO=0` disables).
fn memo_mode() -> &'static str {
    if std::env::var("TANGO_SIM_MEMO").is_ok_and(|v| v == "0") {
        "off"
    } else {
        "on"
    }
}

fn sim_leg(kinds: &[NetworkKind], timed_runs: u32) -> tango::Result<JsonObject> {
    let preset = preset_from_env();
    let mut obj = JsonObject::new()
        .str("bench", "sim")
        .str("preset", &preset.to_string())
        .str("seed", &format!("{SEED:#x}"))
        .str("memo", memo_mode())
        .int("timed_runs", timed_runs as u64);
    for &kind in kinds {
        let spec = RunSpec {
            config: GpuConfig::gp102(),
            preset,
            seed: SEED,
            kind,
            options: SimOptions::new(),
        };
        // Cold pass: nothing recorded yet for this network, so every
        // launch is fully simulated (and recorded when memo is on).
        let cold_start = Instant::now();
        let cold = simulate_run(&spec)?;
        let cold_wall_s = cold_start.elapsed().as_secs_f64();
        let cycles = cold.report.total_cycles();
        let start = Instant::now();
        for _ in 0..timed_runs {
            let run = simulate_run(&spec)?;
            assert_eq!(run.report.total_cycles(), cycles, "simulator must be deterministic");
        }
        let wall_s = start.elapsed().as_secs_f64();
        let key = kind.name().to_ascii_lowercase();
        obj = obj
            .int(&format!("{key}_total_cycles"), cycles)
            .num(&format!("{key}_cold_wall_s"), cold_wall_s)
            .num(&format!("{key}_cold_sim_cycles_per_sec"), cycles as f64 / cold_wall_s)
            .num(&format!("{key}_wall_s"), wall_s)
            .num(
                &format!("{key}_sim_cycles_per_sec"),
                (cycles * timed_runs as u64) as f64 / wall_s,
            );
    }
    let (memo_keys, memo_entries, memo_bytes) = memo_table_stats();
    Ok(obj
        .int("memo_table_keys", memo_keys as u64)
        .int("memo_table_entries", memo_entries as u64)
        .int("memo_table_bytes", memo_bytes as u64))
}

fn serve_leg(kinds: &[NetworkKind], workers: usize) -> tango_serve::Result<JsonObject> {
    let preset = preset_from_env();
    let cost = SimCostModel::new(store_handle(), GpuConfig::gp102(), preset, SEED, SimOptions::new());
    cost.precompute(kinds, MAX_BATCH, workers)?;

    let mut obj = JsonObject::new()
        .str("bench", "serve")
        .str("preset", &preset.to_string())
        .str("seed", &format!("{SEED:#x}"))
        .str("memo", memo_mode())
        .int("devices", DEVICES as u64)
        .int("requests", REQUESTS as u64)
        .int("max_batch", MAX_BATCH as u64);
    for &kind in kinds {
        let service_1 = cost.batch_cycles(kind, 1)?;
        let interarrival = (service_1 / DEVICES as u64).max(1);
        let trace = ArrivalTrace::open_loop(&[kind], REQUESTS, interarrival, DISTINCT_INPUTS, SEED);
        let config = ServeConfig {
            devices: DEVICES,
            queue_bound: 256,
            policy: BatchPolicy {
                max_batch: MAX_BATCH,
                max_delay_cycles: service_1 / 2,
            },
        };
        let start = Instant::now();
        let report = run_trace(&trace, &config, &cost)?;
        let wall_s = start.elapsed().as_secs_f64();
        let key = kind.name().to_ascii_lowercase();
        obj = obj
            .int(&format!("{key}_completed"), report.completed() as u64)
            .int(&format!("{key}_shed"), report.shed() as u64)
            .num(&format!("{key}_wall_s"), wall_s)
            .num(&format!("{key}_requests_per_sec"), report.completed() as f64 / wall_s)
            .num(&format!("{key}_req_per_mcycle"), report.throughput_per_mcycle());
    }
    Ok(obj)
}

/// Fleet-engine throughput: the heterogeneous DES itself, timed over
/// table cost models so no store or simulator wall time leaks into the
/// measurement. Every policy replays the same diurnal trace; the
/// simulated quantities (completed/shed counts) stay deterministic
/// while the wall-clock rates measure the host.
fn fleet_leg() -> tango_serve::Result<JsonObject> {
    use tango_fleet::{
        run_fleet, AutoscaleConfig, ClassSpec, FleetConfig, FleetCost, FleetTrace, PoolSpec, RoutePolicy,
        TableFleetCost,
    };
    const FLEET_REQUESTS: usize = 2000;
    let kinds = [NetworkKind::Gru, NetworkKind::CifarNet];
    // Three synthetic device generations: a fast server part, a mid
    // part that can scale to zero, and a slow always-on edge part.
    let curve = |c: TableFleetCost| {
        c.with_kind(NetworkKind::Gru, 8_000, 400)
            .with_kind(NetworkKind::CifarNet, 20_000, 1_000)
    };
    let fast = curve(TableFleetCost::new(2.0));
    let mid = curve(TableFleetCost::new(1.0));
    let slow = curve(TableFleetCost::new(0.25));
    let costs: Vec<&dyn FleetCost> = vec![&fast, &mid, &slow];
    let classes = vec![ClassSpec::with_slo("interactive", 400_000), ClassSpec::best_effort("batch")];
    let trace = FleetTrace::diurnal(&kinds, &classes, FLEET_REQUESTS, 700, 200_000, 0.2, SEED);

    let mut obj = JsonObject::new()
        .str("bench", "fleet")
        .str("seed", &format!("{SEED:#x}"))
        .int("requests", FLEET_REQUESTS as u64)
        .int("pools", costs.len() as u64);
    let (mut total_completed, mut total_wall_s) = (0u64, 0.0f64);
    for policy in RoutePolicy::ALL {
        let config = FleetConfig {
            pools: vec![
                PoolSpec::elastic("fast", 2, 1, 4),
                PoolSpec::elastic("mid", 1, 0, 2),
                PoolSpec::fixed("slow", 1),
            ],
            classes: classes.clone(),
            queue_bound: 128,
            max_batch: 8,
            max_delay_ns: 2_000,
            policy,
            autoscale: Some(AutoscaleConfig {
                interval_ns: 4_000,
                high_queue_per_device: 3,
                low_queue_per_device: 1,
            }),
        };
        let start = Instant::now();
        let report = run_fleet(&trace, &config, &costs)?;
        let wall_s = start.elapsed().as_secs_f64();
        total_completed += report.completed() as u64;
        total_wall_s += wall_s;
        let key = policy.name();
        obj = obj
            .int(&format!("{key}_completed"), report.completed() as u64)
            .int(&format!("{key}_shed"), report.shed() as u64)
            .num(&format!("{key}_wall_s"), wall_s)
            .num(&format!("{key}_requests_per_sec"), report.completed() as f64 / wall_s);
    }
    Ok(obj.num("fleet_requests_per_sec", total_completed as f64 / total_wall_s))
}

/// One `bench_history.jsonl` record: headline rates copied from the
/// per-leg objects plus enough context to interpret them later.
fn history_line(sim: &JsonObject, serve: &JsonObject, fleet: &JsonObject, timed_runs: u32) -> String {
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    let mut hist = JsonObject::new()
        .int("ts_unix", ts)
        .str("preset", &preset_from_env().to_string())
        .str("seed", &format!("{SEED:#x}"))
        .str("memo", memo_mode())
        .int("timed_runs", timed_runs as u64);
    for key in [
        "cifarnet_cold_sim_cycles_per_sec",
        "cifarnet_sim_cycles_per_sec",
        "gru_cold_sim_cycles_per_sec",
        "gru_sim_cycles_per_sec",
    ] {
        if let Some(v) = sim.get(key) {
            hist = hist.raw(key, v);
        }
    }
    for key in ["cifarnet_requests_per_sec", "gru_requests_per_sec"] {
        if let Some(v) = serve.get(key) {
            hist = hist.raw(key, v);
        }
    }
    if let Some(v) = fleet.get("fleet_requests_per_sec") {
        hist = hist.raw("fleet_requests_per_sec", v);
    }
    hist.render()
}

fn run() -> ExitCode {
    let workers = match workers_from_env("TANGO_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let timed_runs = match samples_from_env(DEFAULT_TIMED_RUNS) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let kinds = [NetworkKind::CifarNet, NetworkKind::Gru];

    eprintln!("[perf] sim leg: 1 cold + {timed_runs} timed simulate_run passes per network (memo {})", memo_mode());
    let sim = match sim_leg(&kinds, timed_runs) {
        Ok(obj) => obj,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    emit_file("BENCH_sim.json", &sim.render());

    eprintln!("[perf] serve leg: {REQUESTS} requests per network ({workers} precompute workers)");
    let serve = match serve_leg(&kinds, workers) {
        Ok(obj) => obj,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    emit_file("BENCH_serve.json", &serve.render());

    eprintln!("[perf] fleet leg: 3 policies over one diurnal trace (table costs, engine only)");
    let fleet = match fleet_leg() {
        Ok(obj) => obj,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    emit_file("BENCH_fleet.json", &fleet.render());

    append_line("bench_history.jsonl", &history_line(&sim, &serve, &fleet, timed_runs));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    run()
}
