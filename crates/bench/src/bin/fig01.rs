//! Regenerates Figure 1: execution-time breakdown w.r.t. layer type.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_default_suite(&ch).expect("suite runs");
    tango_bench::emit("fig01", &figures::fig1_time_breakdown(&runs).to_string());
}
