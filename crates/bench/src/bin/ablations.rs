//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * the GTO/TLV queue-management (requeue) penalty — the mechanism
//!   producing the paper's Figure 15 LRR advantage;
//! * the MSHR budget — the mechanism behind FC memory throttling (Fig 7);
//! * CTA sampling — simulated-cycle stability across sampling factors.

use tango::report::{Matrix, Unit};
use tango_bench::{emit, SEED};
use tango_nets::{build_network, synthetic_input, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig, SchedulerPolicy, SimOptions, StallReason};

fn total_cycles(config: GpuConfig, opts: &SimOptions) -> u64 {
    let mut gpu = Gpu::new(config);
    let net = build_network(&mut gpu, NetworkKind::AlexNet, Preset::Tiny, SEED).expect("build");
    let input = synthetic_input(net.input_spec(), SEED);
    let report = net.infer(&mut gpu, &input, opts).expect("infer");
    report.total_cycles()
}

fn requeue_ablation() -> Matrix {
    let mut m = Matrix::new(
        "Ablation: GTO/TLV requeue penalty vs scheduler ranking (AlexNet tiny)",
        "Penalty",
        SchedulerPolicy::ALL.iter().map(|p| p.name().to_uppercase()).collect(),
        Unit::Ratio,
    );
    for penalty in [0u32, 2, 6, 10] {
        let mut cfg = GpuConfig::gp102();
        cfg.requeue_penalty = penalty;
        let mut row = Vec::new();
        let mut base = 0u64;
        for policy in SchedulerPolicy::ALL {
            let cycles = total_cycles(cfg.clone(), &SimOptions::new().with_scheduler(policy));
            if policy == SchedulerPolicy::Gto {
                base = cycles;
            }
            row.push(cycles as f64 / base.max(1) as f64);
        }
        m.push_row(format!("penalty={penalty}"), row);
    }
    m
}

fn mshr_ablation() -> Matrix {
    let mut m = Matrix::new(
        "Ablation: MSHR budget vs memory throttling (AlexNet tiny)",
        "MSHRs",
        vec!["cycles".into(), "memory_throttle fraction".into()],
        Unit::Ratio,
    );
    let mut base = 0u64;
    for mshrs in [4u32, 8, 16, 24, 48] {
        let mut cfg = GpuConfig::gp102();
        cfg.mshrs_per_sm = mshrs;
        let mut gpu = Gpu::new(cfg);
        let net = build_network(&mut gpu, NetworkKind::AlexNet, Preset::Tiny, SEED).expect("build");
        let input = synthetic_input(net.input_spec(), SEED);
        let report = net.infer(&mut gpu, &input, &SimOptions::new()).expect("infer");
        let cycles = report.total_cycles();
        if base == 0 {
            base = cycles;
        }
        let mut stalls = tango_sim::StallBreakdown::new();
        for r in &report.records {
            stalls.merge(&r.stats.stalls);
        }
        m.push_row(
            format!("mshrs={mshrs}"),
            vec![cycles as f64 / base as f64, stalls.fraction(StallReason::MemoryThrottle)],
        );
    }
    m
}

fn sampling_ablation() -> Matrix {
    let mut m = Matrix::new(
        "Ablation: CTA sampling factor vs extrapolated cycles (AlexNet tiny)",
        "Sample limit",
        vec!["normalized cycles".into()],
        Unit::Ratio,
    );
    let mut base = 0u64;
    for (label, limit) in [("full", None), ("96", Some(96u64)), ("48", Some(48)), ("24", Some(24))] {
        let cycles = total_cycles(
            GpuConfig::gp102(),
            &SimOptions::new().with_cta_sample_limit(limit),
        );
        if base == 0 {
            base = cycles;
        }
        m.push_row(label, vec![cycles as f64 / base as f64]);
    }
    m
}

fn quantization_ablation() -> Matrix {
    use tango_kernels::{Conv2d, DeviceTensor, QuantizedConv2d};
    use tango_tensor::{Shape, SplitMix64, Tensor};
    let mut m = Matrix::new(
        "Ablation: W16 weight quantization vs fp32 (conv 16ch 16x16, k3)",
        "Kernel",
        vec!["normalized cycles".into(), "DRAM lines".into()],
        Unit::Ratio,
    );
    let mut rng = SplitMix64::new(SEED);
    let input = Tensor::uniform(Shape::nchw(1, 16, 16, 16), -1.0, 1.0, &mut rng);
    let filter = Tensor::uniform(Shape::new(&[16, 16, 3, 3]), -0.5, 0.5, &mut rng);
    let bias = Tensor::uniform(Shape::vector(16), -0.1, 0.1, &mut rng);
    let opts = SimOptions::new().with_cta_sample_limit(None).with_l1d_bytes(0);

    let mut gpu = Gpu::new(GpuConfig::gp102());
    let conv = Conv2d::new(16, 16, 16, 16, 3, 3, 1, 1, false).expect("conv");
    let d_in = DeviceTensor::upload(&mut gpu, &input, 1).expect("upload");
    let w = gpu.upload_f32s(filter.as_slice());
    let b = gpu.upload_f32s(bias.as_slice());
    let d_out = DeviceTensor::alloc(&mut gpu, 16, 16, 16, 0);
    let fp32 = conv.launch(&mut gpu, &d_in, w, b, &d_out, &opts);

    let mut gpu2 = Gpu::new(GpuConfig::gp102());
    let qconv = QuantizedConv2d::new(16, 16, 16, 16, 3, 1, 1, false).expect("qconv");
    let d_in2 = DeviceTensor::upload(&mut gpu2, &input, 1).expect("upload");
    let (wq, bq, scale) = qconv.prepare(&mut gpu2, &filter, &bias);
    let d_out2 = DeviceTensor::alloc(&mut gpu2, 16, 16, 16, 0);
    let w16 = qconv.launch(&mut gpu2, &d_in2, wq, bq, scale, &d_out2, &opts);

    m.push_row("fp32", vec![1.0, fp32.dram_accesses as f64]);
    m.push_row(
        "w16",
        vec![w16.cycles as f64 / fp32.cycles.max(1) as f64, w16.dram_accesses as f64],
    );
    m
}

fn main() {
    let text = format!(
        "{}\n{}\n{}\n{}",
        requeue_ablation(),
        mshr_ablation(),
        sampling_ablation(),
        quantization_ablation()
    );
    emit("ablations", &text);
}
