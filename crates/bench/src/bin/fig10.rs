//! Regenerates Figure 10: data-type breakdown across ResNet layers.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_default_suite(&ch).expect("suite runs");
    tango_bench::emit("fig10", &figures::fig10_dtype_over_layers(&runs).to_string());
}
