//! Regenerates Figure 3: peak power consumption across layers.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_default_suite(&ch).expect("suite runs");
    tango_bench::emit("fig03", &figures::fig3_peak_power(&runs).to_string());
}
