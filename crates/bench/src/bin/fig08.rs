//! Regenerates Figure 8: operation-type breakdown per network.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_default_suite(&ch).expect("suite runs");
    tango_bench::emit("fig08", &figures::fig8_op_breakdown(&runs).to_string());
}
