//! Regenerates Figure 6: energy on TX1 vs PynQ.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let report = figures::fig6_tx1_vs_pynq(&ch, tango_nets::Preset::Paper).expect("runs");
    let text = format!(
        "{}\n{}\n{}",
        report.normalized_energy, report.time_s, report.peak_power_w
    );
    tango_bench::emit("fig06", &text);
}
