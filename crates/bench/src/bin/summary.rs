//! One-page characterization digest: per-network totals (cycles,
//! instructions, IPC, power, footprint) at the selected preset — the
//! quick health check before diving into the per-figure binaries.

use tango::figures;
use tango::report::{Matrix, Unit};
use tango_bench::{characterizer, emit, preset_from_env};

fn main() {
    let ch = characterizer();
    eprintln!("[summary] preset={} config={}", preset_from_env(), ch.config().name);
    let runs = figures::run_default_suite(&ch).expect("suite runs");

    let mut m = Matrix::new(
        format!("Suite summary ({}, {} preset)", ch.config().name, preset_from_env()),
        "Network",
        vec![
            "layers".into(),
            "cycles".into(),
            "warp instrs".into(),
            "IPC".into(),
            "peak W".into(),
            "energy J".into(),
            "footprint KB".into(),
        ],
        Unit::Ratio,
    );
    for run in &runs {
        let cycles = run.report.total_cycles();
        let instrs: u64 = run.report.records.iter().map(|r| r.stats.warp_instructions).sum();
        m.push_row(
            run.kind.name(),
            vec![
                run.report.records.len() as f64,
                cycles as f64,
                instrs as f64,
                instrs as f64 / cycles.max(1) as f64,
                run.report.peak_power_w(),
                run.report.total_energy_j(),
                run.footprint_bytes as f64 / 1024.0,
            ],
        );
    }
    emit("summary", &m.to_string());
}
