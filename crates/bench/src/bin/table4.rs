//! Regenerates Table IV (the FPGA platform).
fn main() {
    tango_bench::emit("table4", &tango::tables::table4_fpga());
}
