//! Regenerates Figure 9: total operation mix across all networks.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_default_suite(&ch).expect("suite runs");
    tango_bench::emit("fig09", &figures::fig9_top_ops(&runs).to_string());
}
