//! Regenerates Figure 2: normalized execution time vs L1D size.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    tango_bench::emit("fig02", &figures::fig2_l1d_sensitivity(&ch).expect("runs").to_string());
}
