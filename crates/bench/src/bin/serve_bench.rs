//! Serving benchmark: sweeps arrival rate x batch policy through the
//! `tango-serve` virtual-time engine over store-backed simulated batch
//! costs, and emits a latency/throughput table to `results/serve_bench.txt`.
//!
//! Rates are expressed as offered load ρ relative to one device's
//! single-request service time (ρ = 1 saturates the pool with
//! `max_batch = 1`), so the sweep stresses the same operating points at
//! every preset. Everything is seeded and the engine is serial, so the
//! table is byte-identical across reruns and across
//! `TANGO_SERVE_WORKERS` settings (workers only parallelize cost-model
//! precomputation through the harness suite).
//!
//! `serve_bench --smoke` runs a bounded self-asserting configuration for
//! CI: zero sheds at low load, nonzero sheds past a tight queue bound at
//! overload, and p99 decreasing when `max_batch` is raised at high
//! arrival rates.

use std::process::ExitCode;
use tango_bench::{emit, preset_from_env, store_handle, write_result_file, SEED};
use tango_harness::workers_from_env;
use tango_nets::{NetworkKind, Preset};
use tango_serve::{run_trace, ArrivalTrace, BatchPolicy, CostModel, ServeConfig, ServeReport, SimCostModel};
use tango_sim::{GpuConfig, SimOptions};

const DEVICES: usize = 2;
const DISTINCT_INPUTS: u64 = 4;

struct Row {
    kind: NetworkKind,
    rho: f64,
    max_batch: u32,
    report: ServeReport,
}

/// Mean inter-arrival cycles for offered load `rho` against `devices`
/// devices whose single-request service time is `service_1` cycles.
fn interarrival_for(service_1: u64, devices: usize, rho: f64) -> u64 {
    ((service_1 as f64 / (rho * devices as f64)).round() as u64).max(1)
}

fn sweep(
    cost: &SimCostModel,
    kinds: &[NetworkKind],
    rhos: &[f64],
    batches: &[u32],
    requests: usize,
    queue_bound: usize,
) -> tango_serve::Result<Vec<Row>> {
    let mut rows = Vec::new();
    for &kind in kinds {
        let service_1 = cost.batch_cycles(kind, 1)?;
        for &rho in rhos {
            let trace = ArrivalTrace::open_loop(
                &[kind],
                requests,
                interarrival_for(service_1, DEVICES, rho),
                DISTINCT_INPUTS,
                SEED,
            );
            for &max_batch in batches {
                // The delay bound scales with the service time so the
                // batcher has a real window at every preset.
                let config = ServeConfig {
                    devices: DEVICES,
                    queue_bound,
                    policy: BatchPolicy {
                        max_batch,
                        max_delay_cycles: service_1 / 2,
                    },
                };
                let report = run_trace(&trace, &config, cost)?;
                rows.push(Row {
                    kind,
                    rho,
                    max_batch,
                    report,
                });
            }
        }
    }
    Ok(rows)
}

fn render(rows: &[Row], preset: Preset, queue_bound: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve_bench: {DEVICES} devices, preset {preset}, seed {SEED:#x}, queue bound {queue_bound}\n"
    ));
    out.push_str("latencies in kilocycles (virtual time); rho = offered load at max_batch 1\n\n");
    out.push_str("network      rho  max_batch  completed  shed   p50_kc   p95_kc   p99_kc  mean_batch  req_per_mcycle\n");
    for row in rows {
        let r = &row.report;
        let s = r.latency_summary();
        let kc = |v: u64| v as f64 / 1000.0;
        out.push_str(&format!(
            "{:<10} {:>5.2}  {:>9}  {:>9}  {:>4}  {:>7.1}  {:>7.1}  {:>7.1}  {:>10.2}  {:>14.2}\n",
            row.kind.name(),
            row.rho,
            row.max_batch,
            r.completed(),
            r.shed(),
            s.map_or(0.0, |s| kc(s.p50)),
            s.map_or(0.0, |s| kc(s.p95)),
            s.map_or(0.0, |s| kc(s.p99)),
            r.mean_batch_size(),
            r.throughput_per_mcycle(),
        ));
    }
    out
}

fn smoke(cost: &SimCostModel) -> tango_serve::Result<ExitCode> {
    const KIND: NetworkKind = NetworkKind::Gru;
    cost.precompute(&[KIND], 8, 1)?;
    let service_1 = cost.batch_cycles(KIND, 1)?;

    // Low load, roomy queue: admission control must not fire.
    let low = sweep(cost, &[KIND], &[0.4], &[4], 60, 64)?;
    let low_sheds = low[0].report.shed();

    // Overload against a roomy queue: batching must cut the tail.
    let over = sweep(cost, &[KIND], &[3.0], &[1, 8], 120, 1 << 20)?;
    let p99_unbatched = over[0].report.latency_summary().expect("completions").p99;
    let p99_batched = over[1].report.latency_summary().expect("completions").p99;

    // Overload against a tight queue bound: sheds must appear.
    let bound = 4;
    let tight_trace = ArrivalTrace::open_loop(
        &[KIND],
        120,
        interarrival_for(service_1, DEVICES, 3.0),
        DISTINCT_INPUTS,
        SEED,
    );
    let tight = run_trace(
        &tight_trace,
        &ServeConfig {
            devices: DEVICES,
            queue_bound: bound,
            policy: BatchPolicy {
                max_batch: 1,
                max_delay_cycles: 0,
            },
        },
        cost,
    )?;

    println!("[smoke] low-load sheds: {low_sheds} (want 0)");
    println!("[smoke] overload p99: max_batch=1 {p99_unbatched} vs max_batch=8 {p99_batched} (want decrease)");
    println!("[smoke] overload sheds at queue bound {bound}: {} (want > 0)", tight.shed());

    let mut failed = false;
    if low_sheds != 0 {
        eprintln!("FAIL: low load shed {low_sheds} requests");
        failed = true;
    }
    if p99_batched >= p99_unbatched {
        eprintln!("FAIL: raising max_batch did not improve p99 at overload");
        failed = true;
    }
    if tight.shed() == 0 {
        eprintln!("FAIL: overload past the queue bound shed nothing");
        failed = true;
    }
    Ok(if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn run() -> tango_serve::Result<ExitCode> {
    // Validate (and, with TANGO_TRACE set, arm) the flight recorder
    // before any work; a bad TANGO_TRACE_CAP is a usage error.
    let trace_path = match tango_obs::init_from_env() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    // Metrics export is opt-in via TANGO_METRICS; a malformed knob is a
    // usage error, caught before any work.
    let metrics = match tango_obs::metrics_from_env() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    let workers = match workers_from_env("TANGO_SERVE_WORKERS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    // Smoke runs pin the tiny preset so CI stays bounded.
    let preset = if smoke_mode { Preset::Tiny } else { preset_from_env() };
    let cost = SimCostModel::new(
        store_handle(),
        GpuConfig::gp102(),
        preset,
        SEED,
        SimOptions::new(),
    );
    if smoke_mode {
        let code = smoke(&cost)?;
        write_trace(trace_path.as_deref());
        return Ok(code);
    }

    let kinds = [NetworkKind::CifarNet, NetworkKind::Gru];
    let batches = [1u32, 2, 4, 8];
    let max_batch = *batches.last().expect("nonempty");
    eprintln!("[serve] precomputing batch costs ({} workers)", workers);
    cost.precompute(&kinds, max_batch, workers)?;
    let queue_bound = 256;
    let rows = sweep(&cost, &kinds, &[0.25, 0.5, 1.0, 2.0, 4.0], &batches, 400, queue_bound)?;
    emit("serve_bench", &render(&rows, preset, queue_bound));
    if let Some(window_override) = metrics {
        if let Some(code) = export_metrics(&rows, preset, max_batch, window_override) {
            return Ok(code);
        }
    }
    eprintln!(
        "[serve] store hits={} misses={}",
        cost.store().hits(),
        cost.store().misses()
    );
    write_trace(trace_path.as_deref());
    Ok(ExitCode::SUCCESS)
}

/// Exports the highest-load operating point (ρ = 4, largest
/// `max_batch`) of every swept network as windowed metrics artifacts:
/// `results/metrics_serve.txt` (human table), `.jsonl` (snapshot
/// series), and `.prom` (Prometheus exposition, self-checked against
/// the in-tree grammar validator). Purely derived from the already
/// computed reports, so enabling it cannot change `serve_bench.txt`
/// or stdout. Returns `Some(exit_code)` only on a self-check failure.
fn export_metrics(rows: &[Row], preset: Preset, max_batch: u32, window_override: Option<u64>) -> Option<ExitCode> {
    let selected: Vec<&Row> = rows.iter().filter(|r| r.rho == 4.0 && r.max_batch == max_batch).collect();
    let max_makespan = selected.iter().map(|r| r.report.makespan).max().unwrap_or(0);
    let window = window_override.unwrap_or((max_makespan / 64).max(1));
    let mut registry = tango_obs::metrics::MetricsRegistry::new("cycles", window);
    for row in &selected {
        let m = tango_serve::serve_metrics(&row.report, window);
        registry.merge(&m).expect("per-kind registries share unit and window");
    }
    let title = format!("serve_bench preset {preset} rho 4.00 max_batch {max_batch}");
    let prom = registry.prometheus_text();
    if let Err(e) = tango_obs::metrics::validate_exposition(&prom) {
        eprintln!("error: metrics_serve.prom failed exposition self-check: {e}");
        return Some(ExitCode::FAILURE);
    }
    write_result_file("metrics_serve.txt", &registry.render_text(&title));
    write_result_file("metrics_serve.jsonl", &registry.snapshot_jsonl("serve"));
    write_result_file("metrics_serve.prom", &prom);
    eprintln!("[serve] metrics: wrote results/metrics_serve.{{txt,jsonl,prom}} (window {window} cycles)");
    None
}

/// Exports the flight recorder to `path` when tracing was requested.
fn write_trace(path: Option<&std::path::Path>) {
    let Some(path) = path else { return };
    let trace = tango_obs::drain();
    match tango_obs::write_chrome_file(path, &trace) {
        Ok(()) => eprintln!(
            "[serve] trace: wrote {} events to {} ({} dropped)",
            trace.len(),
            path.display(),
            trace.dropped
        ),
        Err(e) => eprintln!("[serve] warning: {e}"),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
