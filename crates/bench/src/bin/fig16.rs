//! Regenerates Figure 16: per-layer scheduler sensitivity of AlexNet.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    tango_bench::emit("fig16", &figures::fig16_alexnet_per_layer_scheduler(&ch).expect("runs").to_string());
}
