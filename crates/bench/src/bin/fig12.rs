//! Regenerates Figure 12: per-SM register-file usage (full-size models).
use tango::figures;
fn main() {
    tango_bench::emit("fig12", &figures::fig12_register_usage(tango_bench::SEED).expect("builds").to_string());
}
