//! Regenerates Figure 12: per-SM register-file usage (full-size models).
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    tango_bench::emit("fig12", &figures::fig12_register_usage(&ch).expect("builds").to_string());
}
