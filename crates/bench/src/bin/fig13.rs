//! Regenerates Figure 13: total L2 misses per layer type without L1D.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_cnns_no_l1(&ch).expect("runs");
    tango_bench::emit("fig13", &figures::fig13_l2_misses(&runs).to_string());
}
