//! Regenerates Table III (per-layer kernel configuration and SRAM usage)
//! for all seven networks at full published size.
fn main() {
    let text = tango::tables::table3_all(tango_bench::SEED).expect("networks build");
    tango_bench::emit("table3", &text);
}
