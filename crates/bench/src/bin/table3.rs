//! Regenerates Table III (per-layer kernel configuration and SRAM usage)
//! for all seven networks at full published size.
fn main() {
    let ch = tango_bench::characterizer();
    let text = tango::tables::table3_all(&ch).expect("networks build");
    tango_bench::emit("table3", &text);
}
