//! Regenerates Figure 5: power breakdown by hardware component.
use tango::figures;
fn main() {
    let ch = tango_bench::characterizer();
    let runs = figures::run_default_suite(&ch).expect("suite runs");
    tango_bench::emit("fig05", &figures::fig5_power_components(&runs).to_string());
}
