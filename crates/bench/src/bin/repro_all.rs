//! Regenerates every table and figure of the paper in one run, writing
//! each to `results/<id>.txt` and printing a progress line per experiment.
//!
//! `TANGO_PRESET=tiny repro_all` gives a fast smoke pass; the default
//! `bench` preset is what EXPERIMENTS.md records.

use std::time::Instant;
use tango::figures;
use tango::tables;
use tango_bench::{characterizer, emit, preset_from_env, SEED};

fn step<F: FnOnce() -> String>(name: &str, f: F) {
    let t = Instant::now();
    let text = f();
    emit(name, &text);
    eprintln!("[repro] {name:8} done in {:6.1}s", t.elapsed().as_secs_f64());
}

fn main() {
    let ch = characterizer();
    eprintln!(
        "[repro] preset={} config={} seed={SEED:#x}",
        preset_from_env(),
        ch.config().name
    );

    step("table1", tables::table1_models);
    step("table2", tables::table2_gpus);
    step("table3", || tables::table3_all(SEED).expect("networks build"));
    step("table4", tables::table4_fpga);

    let runs = {
        let t = Instant::now();
        let runs = figures::run_default_suite(&ch).expect("suite runs");
        eprintln!("[repro] default suite simulated in {:.1}s", t.elapsed().as_secs_f64());
        runs
    };
    step("fig01", || figures::fig1_time_breakdown(&runs).to_string());
    step("fig03", || figures::fig3_peak_power(&runs).to_string());
    step("fig04", || figures::fig4_power_per_layer_type(&runs).to_string());
    step("fig05", || figures::fig5_power_components(&runs).to_string());
    step("fig08", || figures::fig8_op_breakdown(&runs).to_string());
    step("fig09", || figures::fig9_top_ops(&runs).to_string());
    step("fig10", || figures::fig10_dtype_over_layers(&runs).to_string());

    step("fig02", || figures::fig2_l1d_sensitivity(&ch).expect("runs").to_string());
    step("fig06", || {
        let r = figures::fig6_tx1_vs_pynq(tango_nets::Preset::Paper, SEED).expect("runs");
        format!("{}\n{}\n{}", r.normalized_energy, r.time_s, r.peak_power_w)
    });
    step("fig07", || figures::fig7_stall_breakdown(&ch).expect("runs").to_string());
    step("fig11", || figures::fig11_memory_footprint(SEED).expect("builds").to_string());
    step("fig12", || figures::fig12_register_usage(SEED).expect("builds").to_string());

    let no_l1 = figures::run_cnns_no_l1(&ch).expect("runs");
    step("fig13", || figures::fig13_l2_misses(&no_l1).to_string());
    step("fig14", || figures::fig14_l2_miss_ratio(&no_l1).to_string());

    step("fig15", || figures::fig15_scheduler_sensitivity(&ch).expect("runs").to_string());
    step("fig16", || figures::fig16_alexnet_per_layer_scheduler(&ch).expect("runs").to_string());

    eprintln!("[repro] all experiments written to results/");
}
