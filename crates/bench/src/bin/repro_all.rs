//! Regenerates every table and figure of the paper in one run, writing
//! each to `results/<id>.txt` and printing a progress line per experiment.
//!
//! The full experiment plan (every simulation any figure needs,
//! deduplicated) is expanded up front by [`tango_harness::repro_plan`]
//! and executed across `TANGO_JOBS` worker threads against the shared
//! persistent [`RunStore`]; the figure and table producers then read
//! exclusively from the warm store. A second invocation with the same
//! preset therefore performs zero simulations.
//!
//! `TANGO_PRESET=tiny repro_all` gives a fast smoke pass; the default
//! `bench` preset is what EXPERIMENTS.md records.

use std::time::Instant;
use tango::figures;
use tango::tables;
use tango_bench::{characterizer, emit, preset_from_env, store_handle, SEED};
use tango_harness::{repro_plan, workers_from_env, RunStore};

fn step<F: FnOnce() -> String>(store: &RunStore, name: &str, f: F) {
    let (h0, m0) = (store.hits(), store.misses());
    let t = Instant::now();
    let text = f();
    emit(name, &text);
    eprintln!(
        "[repro] {name:8} done in {:6.1}s  (store hits {}, misses {})",
        t.elapsed().as_secs_f64(),
        store.hits() - h0,
        store.misses() - m0,
    );
}

fn main() {
    let store = store_handle();
    store.reset_counters();
    let ch = characterizer();
    let preset = preset_from_env();
    let workers = workers_from_env("TANGO_JOBS").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "[repro] preset={preset} config={} seed={SEED:#x} jobs={workers}",
        ch.config().name
    );

    // Phase 1: run (or fetch) every simulation any figure needs, in
    // parallel, deduplicated by content-addressed key.
    let suite = repro_plan(preset, SEED);
    let t = Instant::now();
    let report = suite.execute(&store, workers).expect("suite runs");
    eprintln!(
        "[repro] suite: {} jobs in {:.1}s  ({} store hits, {} simulated)",
        report.jobs,
        t.elapsed().as_secs_f64(),
        report.hits,
        report.misses,
    );

    // Phase 2: every producer below is served from the warm store.
    step(&store, "table1", tables::table1_models);
    step(&store, "table2", tables::table2_gpus);
    step(&store, "table3", || tables::table3_all(&ch).expect("networks build"));
    step(&store, "table4", tables::table4_fpga);

    let runs = {
        let t = Instant::now();
        let runs = figures::run_default_suite(&ch).expect("suite runs");
        eprintln!("[repro] default suite fetched in {:.1}s", t.elapsed().as_secs_f64());
        runs
    };
    step(&store, "fig01", || figures::fig1_time_breakdown(&runs).to_string());
    step(&store, "fig03", || figures::fig3_peak_power(&runs).to_string());
    step(&store, "fig04", || figures::fig4_power_per_layer_type(&runs).to_string());
    step(&store, "fig05", || figures::fig5_power_components(&runs).to_string());
    step(&store, "fig08", || figures::fig8_op_breakdown(&runs).to_string());
    step(&store, "fig09", || figures::fig9_top_ops(&runs).to_string());
    step(&store, "fig10", || figures::fig10_dtype_over_layers(&runs).to_string());

    step(&store, "fig02", || figures::fig2_l1d_sensitivity(&ch).expect("runs").to_string());
    step(&store, "fig06", || {
        let r = figures::fig6_tx1_vs_pynq(&ch, tango_nets::Preset::Paper).expect("runs");
        format!("{}\n{}\n{}", r.normalized_energy, r.time_s, r.peak_power_w)
    });
    step(&store, "fig07", || figures::fig7_stall_breakdown(&ch).expect("runs").to_string());
    step(&store, "fig11", || figures::fig11_memory_footprint(&ch).expect("builds").to_string());
    step(&store, "fig12", || figures::fig12_register_usage(&ch).expect("builds").to_string());

    let no_l1 = figures::run_cnns_no_l1(&ch).expect("runs");
    step(&store, "fig13", || figures::fig13_l2_misses(&no_l1).to_string());
    step(&store, "fig14", || figures::fig14_l2_miss_ratio(&no_l1).to_string());

    step(&store, "fig15", || figures::fig15_scheduler_sensitivity(&ch).expect("runs").to_string());
    step(&store, "fig16", || figures::fig16_alexnet_per_layer_scheduler(&ch).expect("runs").to_string());

    eprintln!("[repro] all experiments written to results/");
    // Machine-readable totals (ci.sh asserts misses=0 on a warm pass).
    eprintln!("[repro] store hits={} misses={}", store.hits(), store.misses());
}
