//! Regenerates every table and figure of the paper in one run, writing
//! each to `results/<id>.txt` and printing a progress line per experiment.
//!
//! The full experiment plan (every simulation any figure needs,
//! deduplicated) is expanded up front by [`tango_harness::repro_plan`]
//! and executed across `TANGO_JOBS` worker threads against the shared
//! persistent [`RunStore`]; the figure and table producers then read
//! exclusively from the warm store. A second invocation with the same
//! preset therefore performs zero simulations.
//!
//! Besides the per-experiment artifacts, the run writes a per-phase
//! profile — wall-clock seconds plus store hit/miss/write deltas — to
//! `results/profile.txt`. The profile carries host timings and is the
//! one results file that is *not* byte-reproducible across runs.
//!
//! With `TANGO_TRACE=<path>` set the whole reproduction is recorded by
//! the flight recorder and exported as Chrome trace-event JSON on exit.
//!
//! `TANGO_PRESET=tiny repro_all` gives a fast smoke pass; the default
//! `bench` preset is what EXPERIMENTS.md records.

use std::time::Instant;
use tango::figures;
use tango::tables;
use tango_bench::{characterizer, emit, preset_from_env, store_handle, SEED};
use tango_harness::{repro_plan, results_root, workers_from_env, RunStore};

/// One profiled phase of the reproduction: wall-clock seconds and the
/// store-counter deltas it was responsible for.
struct PhaseRow {
    name: &'static str,
    secs: f64,
    hits: u64,
    misses: u64,
    writes: u64,
}

/// Accumulates [`PhaseRow`]s and renders the `results/profile.txt`
/// table. Timings are host wall-clock, so the rendered table is the one
/// results artifact that differs between otherwise-identical runs.
struct Profile {
    rows: Vec<PhaseRow>,
}

impl Profile {
    fn new() -> Self {
        Profile { rows: Vec::new() }
    }

    /// Runs `f` as a named phase: times it, attributes the store-counter
    /// movement to it, and (when tracing) wraps it in a host-clock span.
    fn phase<R>(&mut self, store: &RunStore, name: &'static str, f: impl FnOnce() -> R) -> R {
        let _span = tango_obs::is_enabled().then(|| tango_obs::hspan("repro.phase", name));
        let (h0, m0, w0) = (store.hits(), store.misses(), store.writes());
        let t = Instant::now();
        let out = f();
        self.rows.push(PhaseRow {
            name,
            secs: t.elapsed().as_secs_f64(),
            hits: store.hits() - h0,
            misses: store.misses() - m0,
            writes: store.writes() - w0,
        });
        out
    }

    fn render(&self, header: &str) -> String {
        let mut out = String::new();
        out.push_str(header);
        out.push('\n');
        out.push_str(&format!(
            "{:<10} {:>9} {:>8} {:>8} {:>8}\n",
            "phase", "seconds", "hits", "misses", "writes"
        ));
        let (mut secs, mut hits, mut misses, mut writes) = (0.0, 0, 0, 0);
        for row in &self.rows {
            secs += row.secs;
            hits += row.hits;
            misses += row.misses;
            writes += row.writes;
            out.push_str(&format!(
                "{:<10} {:>9.2} {:>8} {:>8} {:>8}\n",
                row.name, row.secs, row.hits, row.misses, row.writes
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>9.2} {:>8} {:>8} {:>8}\n",
            "total", secs, hits, misses, writes
        ));
        out
    }
}

fn step<F: FnOnce() -> String>(profile: &mut Profile, store: &RunStore, name: &'static str, f: F) {
    let (h0, m0) = (store.hits(), store.misses());
    let t = Instant::now();
    let text = profile.phase(store, name, f);
    emit(name, &text);
    eprintln!(
        "[repro] {name:8} done in {:6.1}s  (store hits {}, misses {})",
        t.elapsed().as_secs_f64(),
        store.hits() - h0,
        store.misses() - m0,
    );
}

fn main() {
    // Validate the trace environment before doing any work: a typo'd
    // TANGO_TRACE_CAP must stop the run, traced or not.
    let trace_path = match tango_obs::init_from_env() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let store = store_handle();
    store.reset_counters();
    let ch = characterizer();
    let preset = preset_from_env();
    let workers = workers_from_env("TANGO_JOBS").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "[repro] preset={preset} config={} seed={SEED:#x} jobs={workers}",
        ch.config().name
    );
    let mut profile = Profile::new();

    // Phase 1: run (or fetch) every simulation any figure needs, in
    // parallel, deduplicated by content-addressed key.
    let suite = repro_plan(preset, SEED);
    let t = Instant::now();
    let report = profile.phase(&store, "suite", || suite.execute(&store, workers).expect("suite runs"));
    eprintln!(
        "[repro] suite: {} jobs in {:.1}s  ({} store hits, {} simulated)",
        report.jobs,
        t.elapsed().as_secs_f64(),
        report.hits,
        report.misses,
    );

    // Phase 2: every producer below is served from the warm store.
    step(&mut profile, &store, "table1", tables::table1_models);
    step(&mut profile, &store, "table2", tables::table2_gpus);
    step(&mut profile, &store, "table3", || tables::table3_all(&ch).expect("networks build"));
    step(&mut profile, &store, "table4", tables::table4_fpga);

    let runs = {
        let t = Instant::now();
        let runs = profile.phase(&store, "fetch", || figures::run_default_suite(&ch).expect("suite runs"));
        eprintln!("[repro] default suite fetched in {:.1}s", t.elapsed().as_secs_f64());
        runs
    };
    step(&mut profile, &store, "fig01", || figures::fig1_time_breakdown(&runs).to_string());
    step(&mut profile, &store, "fig03", || figures::fig3_peak_power(&runs).to_string());
    step(&mut profile, &store, "fig04", || figures::fig4_power_per_layer_type(&runs).to_string());
    step(&mut profile, &store, "fig05", || figures::fig5_power_components(&runs).to_string());
    step(&mut profile, &store, "fig08", || figures::fig8_op_breakdown(&runs).to_string());
    step(&mut profile, &store, "fig09", || figures::fig9_top_ops(&runs).to_string());
    step(&mut profile, &store, "fig10", || figures::fig10_dtype_over_layers(&runs).to_string());

    step(&mut profile, &store, "fig02", || figures::fig2_l1d_sensitivity(&ch).expect("runs").to_string());
    step(&mut profile, &store, "fig06", || {
        let r = figures::fig6_tx1_vs_pynq(&ch, tango_nets::Preset::Paper).expect("runs");
        format!("{}\n{}\n{}", r.normalized_energy, r.time_s, r.peak_power_w)
    });
    step(&mut profile, &store, "fig07", || figures::fig7_stall_breakdown(&ch).expect("runs").to_string());
    step(&mut profile, &store, "fig11", || figures::fig11_memory_footprint(&ch).expect("builds").to_string());
    step(&mut profile, &store, "fig12", || figures::fig12_register_usage(&ch).expect("builds").to_string());

    let no_l1 = profile.phase(&store, "no_l1", || figures::run_cnns_no_l1(&ch).expect("runs"));
    step(&mut profile, &store, "fig13", || figures::fig13_l2_misses(&no_l1).to_string());
    step(&mut profile, &store, "fig14", || figures::fig14_l2_miss_ratio(&no_l1).to_string());

    step(&mut profile, &store, "fig15", || figures::fig15_scheduler_sensitivity(&ch).expect("runs").to_string());
    step(&mut profile, &store, "fig16", || figures::fig16_alexnet_per_layer_scheduler(&ch).expect("runs").to_string());

    // The profile carries wall-clock timings, so it bypasses `emit`
    // (whose stdout copy feeds deterministic-output comparisons).
    let header = format!("repro_all profile: preset={preset} jobs={workers}");
    let rendered = profile.render(&header);
    let profile_path = results_root().join("profile.txt");
    match std::fs::create_dir_all(results_root())
        .and_then(|()| std::fs::write(&profile_path, &rendered))
    {
        Ok(()) => eprintln!("[repro] phase profile written to {}", profile_path.display()),
        Err(e) => eprintln!("[repro] warning: cannot write {}: {e}", profile_path.display()),
    }

    eprintln!("[repro] all experiments written to results/");
    // Machine-readable totals (ci.sh asserts misses=0 on a warm pass).
    eprintln!("[repro] store hits={} misses={}", store.hits(), store.misses());

    if let Some(path) = trace_path {
        let trace = tango_obs::drain();
        match tango_obs::write_chrome_file(&path, &trace) {
            Ok(()) => eprintln!(
                "[repro] trace: wrote {} events to {} ({} dropped)",
                trace.len(),
                path.display(),
                trace.dropped
            ),
            Err(e) => eprintln!("[repro] warning: {e}"),
        }
    }
}
