//! Microbenches over single simulated layer kernels — the per-layer
//! granularity of the paper's Table III, useful for tracking simulator
//! throughput per kernel family.

use std::hint::black_box;
use tango_bench::microbench::Runner;
use tango_isa::Dim3;
use tango_kernels::{Conv2d, DeviceTensor, FullyConnected, GruStep, LstmStep, MaxPool2d, Softmax};
use tango_kernels::{GruDeviceWeights, LstmDeviceWeights};
use tango_sim::{Gpu, GpuConfig, SimOptions};
use tango_tensor::{Shape, SplitMix64, Tensor};

fn bench_kernels(r: &mut Runner) {
    {
        let conv = Conv2d::new(8, 16, 16, 16, 3, 3, 1, 1, true).unwrap();
        let mut rng = SplitMix64::new(1);
        let input = Tensor::uniform(Shape::nchw(1, 8, 16, 16), -1.0, 1.0, &mut rng);
        let weights = Tensor::uniform(Shape::new(&[16, 8, 3, 3]), -0.5, 0.5, &mut rng);
        let bias = Tensor::uniform(Shape::vector(16), -0.1, 0.1, &mut rng);
        r.bench("kernels/conv3x3_8to16_16x16", || {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let d_in = DeviceTensor::upload(&mut gpu, &input, 1).unwrap();
            let d_w = gpu.upload_f32s(weights.as_slice());
            let d_b = gpu.upload_f32s(bias.as_slice());
            let d_out = DeviceTensor::alloc(&mut gpu, 16, conv.h_out(), conv.w_out(), 0);
            black_box(conv.launch(&mut gpu, &d_in, d_w, d_b, &d_out, &SimOptions::new()));
        });
    }

    {
        let pool = MaxPool2d::new(16, 16, 16, 2, 2).unwrap();
        let mut rng = SplitMix64::new(2);
        let input = Tensor::uniform(Shape::nchw(1, 16, 16, 16), -1.0, 1.0, &mut rng);
        r.bench("kernels/maxpool2x2_16ch_16x16", || {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let d_in = DeviceTensor::upload(&mut gpu, &input, 0).unwrap();
            let d_out = DeviceTensor::alloc(&mut gpu, 16, pool.h_out(), pool.w_out(), 0);
            black_box(pool.launch(&mut gpu, &d_in, &d_out, &SimOptions::new()));
        });
    }

    {
        let fc = FullyConnected::new(1, 1, 256, 64, 1, false).unwrap();
        let mut rng = SplitMix64::new(3);
        let input = Tensor::uniform(Shape::vector(256), -1.0, 1.0, &mut rng);
        let weights = Tensor::uniform(Shape::matrix(64, 256), -0.3, 0.3, &mut rng);
        let bias = Tensor::uniform(Shape::vector(64), -0.1, 0.1, &mut rng);
        r.bench("kernels/fc_256to64_single_thread_blocks", || {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let d_in = DeviceTensor::upload(&mut gpu, &input, 0).unwrap();
            let d_w = gpu.upload_f32s(weights.as_slice());
            let d_b = gpu.upload_f32s(bias.as_slice());
            let d_out = DeviceTensor::alloc_vector(&mut gpu, 64);
            black_box(fc.launch(&mut gpu, &d_in, d_w, d_b, &d_out, &SimOptions::new()));
        });
    }

    {
        let step = GruStep::new(1, 64, Dim3::xy(8, 8)).unwrap();
        r.bench("kernels/gru_step_h64", || {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let mut rng = SplitMix64::new(4);
            let buf = |gpu: &mut Gpu, rng: &mut SplitMix64, n: usize| {
                let t: Vec<f32> = (0..n).map(|_| rng.uniform(-0.2, 0.2)).collect();
                gpu.upload_f32s(&t)
            };
            let weights = GruDeviceWeights {
                w_r: buf(&mut gpu, &mut rng, 64),
                u_r: buf(&mut gpu, &mut rng, 64 * 64),
                b_r: buf(&mut gpu, &mut rng, 64),
                w_z: buf(&mut gpu, &mut rng, 64),
                u_z: buf(&mut gpu, &mut rng, 64 * 64),
                b_z: buf(&mut gpu, &mut rng, 64),
                w_h: buf(&mut gpu, &mut rng, 64),
                u_h: buf(&mut gpu, &mut rng, 64 * 64),
                b_h: buf(&mut gpu, &mut rng, 64),
            };
            let x = DeviceTensor::alloc_vector(&mut gpu, 1);
            let h0 = DeviceTensor::alloc_vector(&mut gpu, 64);
            let h1 = DeviceTensor::alloc_vector(&mut gpu, 64);
            black_box(step.launch(&mut gpu, &x, &h0, &h1, &weights, &SimOptions::new()));
        });
    }

    {
        let step = LstmStep::new(1, 64, Dim3::x(64)).unwrap();
        r.bench("kernels/lstm_step_h64", || {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let mut rng = SplitMix64::new(5);
            let buf = |gpu: &mut Gpu, rng: &mut SplitMix64, n: usize| {
                let t: Vec<f32> = (0..n).map(|_| rng.uniform(-0.2, 0.2)).collect();
                gpu.upload_f32s(&t)
            };
            let weights = LstmDeviceWeights {
                w_i: buf(&mut gpu, &mut rng, 64),
                u_i: buf(&mut gpu, &mut rng, 64 * 64),
                b_i: buf(&mut gpu, &mut rng, 64),
                w_f: buf(&mut gpu, &mut rng, 64),
                u_f: buf(&mut gpu, &mut rng, 64 * 64),
                b_f: buf(&mut gpu, &mut rng, 64),
                w_o: buf(&mut gpu, &mut rng, 64),
                u_o: buf(&mut gpu, &mut rng, 64 * 64),
                b_o: buf(&mut gpu, &mut rng, 64),
                w_g: buf(&mut gpu, &mut rng, 64),
                u_g: buf(&mut gpu, &mut rng, 64 * 64),
                b_g: buf(&mut gpu, &mut rng, 64),
            };
            let x = DeviceTensor::alloc_vector(&mut gpu, 1);
            let h0 = DeviceTensor::alloc_vector(&mut gpu, 64);
            let c0 = DeviceTensor::alloc_vector(&mut gpu, 64);
            let h1 = DeviceTensor::alloc_vector(&mut gpu, 64);
            let c1 = DeviceTensor::alloc_vector(&mut gpu, 64);
            black_box(step.launch(&mut gpu, &x, &h0, &c0, &h1, &c1, &weights, &SimOptions::new()));
        });
    }

    {
        let sm = Softmax::new(250).unwrap();
        let mut rng = SplitMix64::new(6);
        let input = Tensor::uniform(Shape::vector(250), -3.0, 3.0, &mut rng);
        r.bench("kernels/softmax_250", || {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let d_in = DeviceTensor::upload(&mut gpu, &input, 0).unwrap();
            let d_out = DeviceTensor::alloc_vector(&mut gpu, 250);
            black_box(sm.launch(&mut gpu, &d_in, &d_out, &SimOptions::new()));
        });
    }
}

fn main() {
    let mut r = Runner::from_args();
    bench_kernels(&mut r);
    r.finish();
}
