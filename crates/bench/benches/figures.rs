//! Microbenches over the figure producers.
//!
//! One bench per table/figure of the paper's evaluation, run at `Tiny`
//! preset so repeated sampling stays tractable; the `repro_all` binary
//! (bench preset) is what regenerates the recorded EXPERIMENTS.md
//! numbers. These benches double as regression guards on simulator
//! throughput.

use std::hint::black_box;
use tango::figures;
use tango::tables;
use tango::Characterizer;
use tango_bench::microbench::Runner;
use tango_nets::Preset;
use tango_sim::GpuConfig;

const SEED: u64 = 0x7A16_0201_9151;

fn tiny() -> Characterizer {
    Characterizer::new(GpuConfig::gp102(), Preset::Tiny, SEED)
}

fn bench_tables(r: &mut Runner) {
    let ch = tiny();
    r.bench("tables/table1_models", || {
        black_box(tables::table1_models());
    });
    r.bench("tables/table2_gpus", || {
        black_box(tables::table2_gpus());
    });
    // Table III builds every full-size network (VGG-16 generates 138M
    // weights), so bench the smallest network's table instead of all.
    r.bench("tables/table3_cifarnet", || {
        black_box(tables::table3_network(&ch, tango_nets::NetworkKind::CifarNet).unwrap());
    });
    r.bench("tables/table4_fpga", || {
        black_box(tables::table4_fpga());
    });
}

fn bench_suite_figures(r: &mut Runner) {
    let ch = tiny();
    let runs = figures::run_default_suite(&ch).expect("suite");
    r.bench("figures_from_suite/fig01_time_breakdown", || {
        black_box(figures::fig1_time_breakdown(&runs));
    });
    r.bench("figures_from_suite/fig03_peak_power", || {
        black_box(figures::fig3_peak_power(&runs));
    });
    r.bench("figures_from_suite/fig04_power_per_type", || {
        black_box(figures::fig4_power_per_layer_type(&runs));
    });
    r.bench("figures_from_suite/fig05_power_components", || {
        black_box(figures::fig5_power_components(&runs));
    });
    r.bench("figures_from_suite/fig08_op_breakdown", || {
        black_box(figures::fig8_op_breakdown(&runs));
    });
    r.bench("figures_from_suite/fig09_top_ops", || {
        black_box(figures::fig9_top_ops(&runs));
    });
    r.bench("figures_from_suite/fig10_dtypes", || {
        black_box(figures::fig10_dtype_over_layers(&runs));
    });
}

fn bench_simulating_figures(r: &mut Runner) {
    // Representative slices of each sweep figure: the full multi-network
    // sweeps live in the fig02/fig07/fig13..fig16 binaries; this target
    // measures one network per knob so `cargo bench` finishes in minutes.
    use tango_nets::NetworkKind;
    use tango_sim::SchedulerPolicy;
    let ch = tiny();
    r.bench("figures_simulating/suite_default_runs", || {
        black_box(figures::run_default_suite(&ch).unwrap());
    });
    r.bench("figures_simulating/fig02_l1d_sweep_cifarnet", || {
        for bytes in [0u32, 64 << 10, 128 << 10, 256 << 10] {
            black_box(
                ch.run_network(NetworkKind::CifarNet, &ch.default_options().with_l1d_bytes(bytes))
                    .unwrap(),
            );
        }
    });
    r.bench("figures_simulating/fig06_tx1_vs_pynq", || {
        black_box(figures::fig6_tx1_vs_pynq(&ch, Preset::Tiny).unwrap());
    });
    let gk = ch.with_config(tango_sim::GpuConfig::gk210());
    r.bench("figures_simulating/fig07_stalls_gru_gk210", || {
        black_box(gk.run_network(NetworkKind::Gru, &gk.default_options()).unwrap());
    });
    r.bench("figures_simulating/fig13_14_no_l1_cifarnet", || {
        black_box(
            ch.run_network(NetworkKind::CifarNet, &ch.default_options().with_l1d_bytes(0))
                .unwrap(),
        );
    });
    r.bench("figures_simulating/fig15_schedulers_alexnet", || {
        for policy in SchedulerPolicy::ALL {
            black_box(
                ch.run_network(NetworkKind::AlexNet, &ch.default_options().with_scheduler(policy))
                    .unwrap(),
            );
        }
    });
}

fn bench_static_figures(r: &mut Runner) {
    // Figures 11/12 build full-size models (hundreds of MB of synthetic
    // weights); bench the cheapest network to keep iteration time sane.
    r.bench("figures_static/fig11_footprint_rnn_only", || {
        let mut gpu = tango_sim::Gpu::new(GpuConfig::tx1());
        let _ = tango_nets::build_network(&mut gpu, tango_nets::NetworkKind::Lstm, Preset::Paper, SEED).unwrap();
        black_box(gpu.memory_footprint_bytes());
    });
}

fn main() {
    let mut r = Runner::from_args();
    bench_tables(&mut r);
    bench_suite_figures(&mut r);
    bench_simulating_figures(&mut r);
    bench_static_figures(&mut r);
    r.finish();
}
