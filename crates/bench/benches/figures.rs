//! Criterion benches over the figure producers.
//!
//! One bench per table/figure of the paper's evaluation, run at `Tiny`
//! preset so Criterion's repeated sampling stays tractable; the
//! `repro_all` binary (bench preset) is what regenerates the recorded
//! EXPERIMENTS.md numbers. These benches double as regression guards on
//! simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tango::figures;
use tango::tables;
use tango::Characterizer;
use tango_nets::Preset;
use tango_sim::GpuConfig;

const SEED: u64 = 0x7A16_0201_9151;

fn tiny() -> Characterizer {
    Characterizer::new(GpuConfig::gp102(), Preset::Tiny, SEED)
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_models", |b| b.iter(|| black_box(tables::table1_models())));
    g.bench_function("table2_gpus", |b| b.iter(|| black_box(tables::table2_gpus())));
    // Table III builds every full-size network (VGG-16 generates 138M
    // weights), so bench the smallest network's table instead of all.
    g.bench_function("table3_cifarnet", |b| {
        b.iter(|| black_box(tables::table3_network(tango_nets::NetworkKind::CifarNet, SEED).unwrap()))
    });
    g.bench_function("table4_fpga", |b| b.iter(|| black_box(tables::table4_fpga())));
    g.finish();
}

fn bench_suite_figures(c: &mut Criterion) {
    let ch = tiny();
    let runs = figures::run_default_suite(&ch).expect("suite");
    let mut g = c.benchmark_group("figures_from_suite");
    g.sample_size(10);
    g.bench_function("fig01_time_breakdown", |b| {
        b.iter(|| black_box(figures::fig1_time_breakdown(&runs)))
    });
    g.bench_function("fig03_peak_power", |b| b.iter(|| black_box(figures::fig3_peak_power(&runs))));
    g.bench_function("fig04_power_per_type", |b| {
        b.iter(|| black_box(figures::fig4_power_per_layer_type(&runs)))
    });
    g.bench_function("fig05_power_components", |b| {
        b.iter(|| black_box(figures::fig5_power_components(&runs)))
    });
    g.bench_function("fig08_op_breakdown", |b| b.iter(|| black_box(figures::fig8_op_breakdown(&runs))));
    g.bench_function("fig09_top_ops", |b| b.iter(|| black_box(figures::fig9_top_ops(&runs))));
    g.bench_function("fig10_dtypes", |b| b.iter(|| black_box(figures::fig10_dtype_over_layers(&runs))));
    g.finish();
}

fn bench_simulating_figures(c: &mut Criterion) {
    // Representative slices of each sweep figure: the full multi-network
    // sweeps live in the fig02/fig07/fig13..fig16 binaries; Criterion
    // measures one network per knob so `cargo bench` finishes in minutes.
    use tango_nets::NetworkKind;
    use tango_sim::SchedulerPolicy;
    let ch = tiny();
    let mut g = c.benchmark_group("figures_simulating");
    g.sample_size(10);
    g.bench_function("suite_default_runs", |b| {
        b.iter(|| black_box(figures::run_default_suite(&ch).unwrap()))
    });
    g.bench_function("fig02_l1d_sweep_cifarnet", |b| {
        b.iter(|| {
            for bytes in [0u32, 64 << 10, 128 << 10, 256 << 10] {
                black_box(
                    ch.run_network(NetworkKind::CifarNet, &ch.default_options().with_l1d_bytes(bytes))
                        .unwrap(),
                );
            }
        })
    });
    g.bench_function("fig06_tx1_vs_pynq", |b| {
        b.iter(|| black_box(figures::fig6_tx1_vs_pynq(Preset::Tiny, SEED).unwrap()))
    });
    g.bench_function("fig07_stalls_gru_gk210", |b| {
        let gk = ch.with_config(tango_sim::GpuConfig::gk210());
        b.iter(|| black_box(gk.run_network(NetworkKind::Gru, &gk.default_options()).unwrap()))
    });
    g.bench_function("fig13_14_no_l1_cifarnet", |b| {
        b.iter(|| {
            black_box(
                ch.run_network(NetworkKind::CifarNet, &ch.default_options().with_l1d_bytes(0))
                    .unwrap(),
            )
        })
    });
    g.bench_function("fig15_schedulers_alexnet", |b| {
        b.iter(|| {
            for policy in SchedulerPolicy::ALL {
                black_box(
                    ch.run_network(NetworkKind::AlexNet, &ch.default_options().with_scheduler(policy))
                        .unwrap(),
                );
            }
        })
    });
    g.finish();
}

fn bench_static_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_static");
    g.sample_size(10);
    // Figures 11/12 build full-size models (hundreds of MB of synthetic
    // weights); bench the cheapest network to keep iteration time sane.
    g.bench_function("fig11_footprint_rnn_only", |b| {
        b.iter(|| {
            let mut gpu = tango_sim::Gpu::new(GpuConfig::tx1());
            let _ = tango_nets::build_network(&mut gpu, tango_nets::NetworkKind::Lstm, Preset::Paper, SEED).unwrap();
            black_box(gpu.memory_footprint_bytes())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_suite_figures,
    bench_simulating_figures,
    bench_static_figures
);
criterion_main!(benches);
