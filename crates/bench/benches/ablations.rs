//! Microbenches around the ablation configurations, tracking how
//! simulator wall time responds to the knobs DESIGN.md calls out.

use std::hint::black_box;
use tango_bench::microbench::Runner;
use tango_nets::{build_network, synthetic_input, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig, SchedulerPolicy, SimOptions};

const SEED: u64 = 0x7A16_0201_9151;

fn run(config: GpuConfig, opts: &SimOptions) -> u64 {
    let mut gpu = Gpu::new(config);
    let net = build_network(&mut gpu, NetworkKind::CifarNet, Preset::Tiny, SEED).expect("build");
    let input = synthetic_input(net.input_spec(), SEED);
    net.infer(&mut gpu, &input, opts).expect("infer").total_cycles()
}

fn main() {
    let mut r = Runner::from_args();

    for policy in SchedulerPolicy::ALL {
        r.bench(&format!("ablation_scheduler/{}", policy.name()), || {
            black_box(run(GpuConfig::gp102(), &SimOptions::new().with_scheduler(policy)));
        });
    }

    for (name, bytes) in [("no_l1", 0u32), ("64k", 64 << 10), ("256k", 256 << 10)] {
        r.bench(&format!("ablation_l1d/{name}"), || {
            black_box(run(GpuConfig::gp102(), &SimOptions::new().with_l1d_bytes(bytes)));
        });
    }

    for (name, limit) in [("full", None), ("sample32", Some(32u64))] {
        r.bench(&format!("ablation_cta_sampling/{name}"), || {
            black_box(run(GpuConfig::gp102(), &SimOptions::new().with_cta_sample_limit(limit)));
        });
    }

    r.finish();
}
