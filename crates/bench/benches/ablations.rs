//! Criterion wrappers around the ablation configurations, tracking how
//! simulator wall time responds to the knobs DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tango_nets::{build_network, synthetic_input, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig, SchedulerPolicy, SimOptions};

const SEED: u64 = 0x7A16_0201_9151;

fn run(config: GpuConfig, opts: &SimOptions) -> u64 {
    let mut gpu = Gpu::new(config);
    let net = build_network(&mut gpu, NetworkKind::CifarNet, Preset::Tiny, SEED).expect("build");
    let input = synthetic_input(net.input_spec(), SEED);
    net.infer(&mut gpu, &input, opts).expect("infer").total_cycles()
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scheduler");
    g.sample_size(10);
    for policy in SchedulerPolicy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(policy.name()), &policy, |b, &p| {
            b.iter(|| black_box(run(GpuConfig::gp102(), &SimOptions::new().with_scheduler(p))))
        });
    }
    g.finish();
}

fn bench_l1_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_l1d");
    g.sample_size(10);
    for (name, bytes) in [("no_l1", 0u32), ("64k", 64 << 10), ("256k", 256 << 10)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, &bytes| {
            b.iter(|| black_box(run(GpuConfig::gp102(), &SimOptions::new().with_l1d_bytes(bytes))))
        });
    }
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cta_sampling");
    g.sample_size(10);
    for (name, limit) in [("full", None), ("sample32", Some(32u64))] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &limit, |b, limit| {
            b.iter(|| black_box(run(GpuConfig::gp102(), &SimOptions::new().with_cta_sample_limit(*limit))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers, bench_l1_sizes, bench_sampling);
criterion_main!(benches);
