//! Plain-text hierarchical time summary.
//!
//! One section per track, a call tree built by replaying span
//! begin/end events: each node reports call count, total inclusive
//! time, and self time (total minus child totals), followed by the last
//! observed value of each counter on that track. Best-effort: a
//! malformed stream (use [`crate::Trace::check_nesting`] to detect one)
//! renders what it can instead of failing.

use crate::event::{Domain, Event, Phase};
use crate::trace::Trace;
use std::fmt::Write as _;

#[derive(Debug)]
struct Node {
    label: String,
    calls: u64,
    total: u64,
    child_total: u64,
    children: Vec<usize>,
}

#[derive(Debug, Default)]
struct Tree {
    nodes: Vec<Node>,
    roots: Vec<usize>,
}

impl Tree {
    fn child(&mut self, parent: Option<usize>, label: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].label == label) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            label: label.to_string(),
            calls: 0,
            total: 0,
            child_total: 0,
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }
}

fn fmt_time(domain: Domain, t: u64) -> String {
    match domain {
        Domain::Virtual | Domain::Engine => format!("{t} cyc"),
        Domain::Fleet | Domain::Host => format!("{}.{:03} ms", t / 1_000_000, (t / 1_000) % 1_000),
    }
}

fn render_node(out: &mut String, tree: &Tree, idx: usize, depth: usize, domain: Domain) {
    let node = &tree.nodes[idx];
    let own = node.total.saturating_sub(node.child_total);
    let _ = writeln!(
        out,
        "{:indent$}{:<width$} calls {:>5}  total {:>14}  self {:>14}",
        "",
        node.label,
        node.calls,
        fmt_time(domain, node.total),
        fmt_time(domain, own),
        indent = 2 + depth * 2,
        width = 36usize.saturating_sub(depth * 2),
    );
    for &child in &node.children {
        render_node(out, tree, child, depth + 1, domain);
    }
}

/// Renders the per-track hierarchical time summary for `trace`.
pub fn render(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace summary: {} events, {} dropped", trace.events.len(), trace.dropped);
    for &(tid, dropped) in &trace.dropped_by_track {
        let _ = writeln!(out, "  track {tid}: {dropped} events dropped (ring was full; oldest lost)");
    }
    // Events are already track-grouped; walk contiguous (domain, tid)
    // sections in stream order.
    let mut i = 0;
    while i < trace.events.len() {
        let (domain, tid) = (trace.events[i].domain, trace.events[i].tid);
        let start = i;
        while i < trace.events.len() && trace.events[i].domain == domain && trace.events[i].tid == tid {
            i += 1;
        }
        render_track(&mut out, domain, tid, &trace.events[start..i]);
    }
    out
}

fn render_track(out: &mut String, domain: Domain, tid: u32, events: &[Event]) {
    let _ = writeln!(out, "\n== {} · track {} ==", domain.label(), tid);
    let mut tree = Tree::default();
    // Open spans: (node index, begin ts).
    let mut stack: Vec<(usize, u64)> = Vec::new();
    // Counters in first-seen order: (label, last value, samples).
    let mut counters: Vec<(String, i64, u64)> = Vec::new();
    for ev in events {
        match ev.phase {
            Phase::Begin => {
                let label = format!("{} {}", ev.cat, ev.name);
                let idx = tree.child(stack.last().map(|&(i, _)| i), &label);
                stack.push((idx, ev.ts));
            }
            Phase::End => {
                if let Some((idx, begin)) = stack.pop() {
                    let dt = ev.ts.saturating_sub(begin);
                    tree.nodes[idx].calls += 1;
                    tree.nodes[idx].total += dt;
                    if let Some(&(parent, _)) = stack.last() {
                        tree.nodes[parent].child_total += dt;
                    }
                }
            }
            Phase::Counter => {
                let label = format!("{} {}", ev.cat, ev.name);
                match counters.iter_mut().find(|(l, _, _)| *l == label) {
                    Some(slot) => {
                        slot.1 = ev.value;
                        slot.2 += 1;
                    }
                    None => counters.push((label, ev.value, 1)),
                }
            }
            Phase::Instant | Phase::AsyncBegin | Phase::AsyncEnd => {}
        }
    }
    if tree.roots.is_empty() && counters.is_empty() {
        let _ = writeln!(out, "  (no spans or counters)");
        return;
    }
    let roots = tree.roots.clone();
    for root in roots {
        render_node(out, &tree, root, 0, domain);
    }
    if !counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        for (label, last, samples) in counters {
            let _ = writeln!(out, "    {label} = {last} (last of {samples} samples)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u32, ts: u64, phase: Phase, cat: &'static str, name: &str, value: i64) -> Event {
        Event {
            domain: Domain::Virtual,
            tid,
            ts,
            phase,
            cat,
            name: name.to_string(),
            value,
        }
    }

    #[test]
    fn summary_shows_tree_and_counters() {
        let trace = Trace {
            events: vec![
                ev(1, 0, Phase::Begin, "net.infer", "CifarNet", 0),
                ev(1, 0, Phase::Begin, "net.layer", "conv1", 0),
                ev(1, 70, Phase::End, "net.layer", "conv1", 0),
                ev(1, 70, Phase::Begin, "net.layer", "pool1", 0),
                ev(1, 100, Phase::End, "net.layer", "pool1", 0),
                ev(1, 100, Phase::End, "net.infer", "CifarNet", 0),
                ev(1, 100, Phase::Counter, "sim.cache", "l1d_hits", 42, ),
            ],
            dropped: 0,
            dropped_by_track: vec![],
        };
        let text = trace.text_summary();
        let root = text.lines().find(|l| l.contains("net.infer CifarNet")).expect("root line");
        // Inclusive 100, children 70 + 30 -> self 0.
        assert!(root.contains("calls"), "{root}");
        assert!(root.contains("total") && root.contains("100 cyc"), "{root}");
        assert!(root.trim_end().ends_with("0 cyc"), "{root}");
        assert!(text.contains("net.layer conv1"), "{text}");
        assert!(text.contains("sim.cache l1d_hits = 42 (last of 1 samples)"), "{text}");
    }

    #[test]
    fn repeated_calls_aggregate() {
        let trace = Trace {
            events: vec![
                ev(1, 0, Phase::Begin, "job", "a", 0),
                ev(1, 10, Phase::End, "job", "a", 0),
                ev(1, 10, Phase::Begin, "job", "a", 0),
                ev(1, 25, Phase::End, "job", "a", 0),
            ],
            dropped: 0,
            dropped_by_track: vec![],
        };
        let text = trace.text_summary();
        let line = text.lines().find(|l| l.contains("job a")).expect("job line");
        let calls: Vec<&str> = line.split_whitespace().collect();
        let pos = calls.iter().position(|t| *t == "calls").expect("calls column");
        assert_eq!(calls[pos + 1], "2", "{line}");
        assert!(line.contains("25 cyc"), "{line}");
    }
}
