//! Chrome trace-event JSON exporter.
//!
//! The output is the "JSON object format" understood by Perfetto and
//! `chrome://tracing`: a `traceEvents` array plus top-level metadata.
//! Each clock domain exports as its own process so virtual cycles and
//! host nanoseconds never share a timeline; cycle timestamps map 1:1 to
//! microseconds (so 1 "µs" on screen is 1 cycle), host nanoseconds are
//! converted to microseconds with a three-decimal fraction.
//!
//! The exporter writes one event per line in trace order with fixed key
//! order and no floating-point formatting, so a deterministic event
//! stream exports to byte-identical JSON.

use crate::event::{Domain, Phase};
use crate::trace::Trace;
use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string body (no surrounding
/// quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes a timestamp in microseconds: cycles map 1:1, host
/// nanoseconds gain a fixed three-decimal fraction.
fn ts_into(out: &mut String, domain: Domain, ts: u64) {
    match domain {
        Domain::Virtual | Domain::Engine => {
            let _ = write!(out, "{ts}");
        }
        Domain::Fleet | Domain::Host => {
            let _ = write!(out, "{}.{:03}", ts / 1000, ts % 1000);
        }
    }
}

/// Renders `trace` as Chrome trace-event JSON.
pub fn export(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    // Process-name metadata first, one per clock domain, always all
    // three so the preamble is stable regardless of which layers ran.
    for domain in Domain::ALL {
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"",
            domain.pid()
        );
        escape_into(&mut out, domain.label());
        out.push_str("\"}},\n");
    }
    for (i, ev) in trace.events.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":",
            ev.phase.chrome(),
            ev.domain.pid(),
            ev.tid
        );
        ts_into(&mut out, ev.domain, ev.ts);
        out.push_str(",\"cat\":\"");
        escape_into(&mut out, ev.cat);
        out.push_str("\",\"name\":\"");
        escape_into(&mut out, &ev.name);
        out.push('"');
        match ev.phase {
            Phase::Counter => {
                let _ = write!(out, ",\"args\":{{\"value\":{}}}", ev.value);
            }
            Phase::Instant => out.push_str(",\"s\":\"t\""),
            Phase::AsyncBegin | Phase::AsyncEnd => {
                let _ = write!(out, ",\"id\":{}", ev.value);
            }
            Phase::Begin | Phase::End => {}
        }
        out.push('}');
        if i + 1 < trace.events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":{}}}",
        trace.dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn demo_trace() -> Trace {
        Trace {
            events: vec![
                Event {
                    domain: Domain::Virtual,
                    tid: 1,
                    ts: 0,
                    phase: Phase::Begin,
                    cat: "net.layer",
                    name: "conv\"1\"".to_string(),
                    value: 0,
                },
                Event {
                    domain: Domain::Virtual,
                    tid: 1,
                    ts: 42,
                    phase: Phase::End,
                    cat: "net.layer",
                    name: "conv\"1\"".to_string(),
                    value: 0,
                },
                Event {
                    domain: Domain::Host,
                    tid: 2,
                    ts: 1_234_567,
                    phase: Phase::Counter,
                    cat: "store",
                    name: "hits".to_string(),
                    value: 3,
                },
            ],
            dropped: 1,
            dropped_by_track: vec![(1, 1)],
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_fields() {
        let json = export(&demo_trace());
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":3}"));
        // Host ns -> µs with a three-decimal fraction.
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        // Quotes in names are escaped.
        assert!(json.contains("conv\\\"1\\\""));
        assert!(json.contains("\"droppedEvents\":1"));
    }

    #[test]
    fn export_is_deterministic() {
        let trace = demo_trace();
        assert_eq!(export(&trace), export(&trace));
    }

    #[test]
    fn escapes_control_characters() {
        let mut out = String::new();
        escape_into(&mut out, "a\nb\t\u{1}c\\d");
        assert_eq!(out, "a\\nb\\t\\u0001c\\\\d");
    }
}
