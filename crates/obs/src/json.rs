//! A minimal JSON validity checker.
//!
//! The trace exporter emits JSON by hand (this crate is dependency
//! free), so the CI gate "the emitted trace parses" needs an
//! independent check. This is a strict recursive-descent recognizer for
//! RFC 8259 JSON — it validates structure without building a value
//! tree, which is all the gate needs.

/// A scalar value in a flat JSON object (see [`parse_flat`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    /// A JSON number.
    Number(f64),
    /// A JSON string (escapes decoded).
    String(String),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl FlatValue {
    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            FlatValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FlatValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one *flat* JSON object — scalar values only, the shape every
/// `BENCH_*.json` / `bench_history.jsonl` record has — into its
/// `(key, value)` pairs in document order. This is the read side of
/// `tango-bench`'s `JsonObject` writer; nested objects or arrays are
/// an error, not data.
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn parse_flat(input: &str) -> Result<Vec<(String, FlatValue)>, String> {
    validate(input)?;
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err(format!("expected a JSON object at byte {pos}"));
    }
    pos += 1;
    let mut pairs = Vec::new();
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(pairs);
    }
    loop {
        skip_ws(bytes, &mut pos);
        let key = decode_string(input, &mut pos)?;
        skip_ws(bytes, &mut pos);
        pos += 1; // ':' (validated above)
        skip_ws(bytes, &mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => FlatValue::String(decode_string(input, &mut pos)?),
            Some(b't') => {
                pos += 4;
                FlatValue::Bool(true)
            }
            Some(b'f') => {
                pos += 5;
                FlatValue::Bool(false)
            }
            Some(b'n') => {
                pos += 4;
                FlatValue::Null
            }
            Some(b'{') | Some(b'[') => {
                return Err(format!(
                    "nested value at byte {pos}: flat objects hold scalars only"
                ))
            }
            _ => {
                let start = pos;
                number(bytes, &mut pos)?;
                let text = &input[start..pos];
                FlatValue::Number(
                    text.parse::<f64>()
                        .map_err(|_| format!("unparsable number {text:?} at byte {start}"))?,
                )
            }
        };
        pairs.push((key, value));
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            _ => return Ok(pairs), // '}' — validated above
        }
    }
}

/// Decodes the JSON string starting at `pos` (at the opening quote),
/// advancing past the closing quote.
fn decode_string(input: &str, pos: &mut usize) -> Result<String, String> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("unterminated string at byte {pos}")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = input
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                let c = input[*pos..].chars().next().expect("in range");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Checks that `input` is exactly one well-formed JSON value (plus
/// surrounding whitespace).
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("invalid \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("unescaped control character at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err(format!("unterminated string at byte {pos}"))
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(d) if d.is_ascii_digit() => {
            while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(format!("invalid number at byte {pos}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            return Err(format!("invalid fraction at byte {pos}"));
        }
        while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            return Err(format!("invalid exponent at byte {pos}"));
        }
        while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            " -12.5e+3 ",
            r#"{"a":[1,2,{"b":"c\né"}],"d":null}"#,
            "0.001",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn parse_flat_reads_bench_shaped_objects() {
        let pairs = parse_flat(
            r#"{"bench":"sim","seed":"0x7a","runs":2,"rate":2332727.122076,"ok":true,"note":null,"esc":"a\nb"}"#,
        )
        .unwrap();
        assert_eq!(pairs.len(), 7);
        assert_eq!(pairs[0], ("bench".to_string(), FlatValue::String("sim".to_string())));
        assert_eq!(pairs[2].1.as_number(), Some(2.0));
        assert_eq!(pairs[3].1.as_number(), Some(2332727.122076));
        assert_eq!(pairs[4].1, FlatValue::Bool(true));
        assert_eq!(pairs[5].1, FlatValue::Null);
        assert_eq!(pairs[6].1.as_str(), Some("a\nb"));
        assert_eq!(parse_flat("{}").unwrap(), vec![]);
        assert_eq!(parse_flat("  {\"a\": -1.5e3}  ").unwrap()[0].1.as_number(), Some(-1500.0));
    }

    #[test]
    fn parse_flat_rejects_non_flat_input() {
        assert!(parse_flat("[1,2]").unwrap_err().contains("object"));
        assert!(parse_flat("{\"a\":{}}").unwrap_err().contains("scalars only"));
        assert!(parse_flat("{\"a\":[1]}").unwrap_err().contains("scalars only"));
        assert!(parse_flat("{\"a\":1,}").is_err());
        assert!(parse_flat("3").is_err());
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "{} trailing",
            "{\"a\":1,}",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}
