//! A minimal JSON validity checker.
//!
//! The trace exporter emits JSON by hand (this crate is dependency
//! free), so the CI gate "the emitted trace parses" needs an
//! independent check. This is a strict recursive-descent recognizer for
//! RFC 8259 JSON — it validates structure without building a value
//! tree, which is all the gate needs.

/// Checks that `input` is exactly one well-formed JSON value (plus
/// surrounding whitespace).
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("invalid \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("unescaped control character at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err(format!("unterminated string at byte {pos}"))
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(d) if d.is_ascii_digit() => {
            while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(format!("invalid number at byte {pos}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            return Err(format!("invalid fraction at byte {pos}"));
        }
        while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            return Err(format!("invalid exponent at byte {pos}"));
        }
        while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            " -12.5e+3 ",
            r#"{"a":[1,2,{"b":"c\né"}],"d":null}"#,
            "0.001",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "{} trailing",
            "{\"a\":1,}",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}
