//! Deterministic tracing and metrics for the Tango stack.
//!
//! The paper's whole contribution is *characterization* — per-layer
//! execution time, stall breakdowns, cache behaviour — yet a stack that
//! only prints final numbers is opaque at runtime. This crate is the
//! shared observability substrate for `tango-sim`, `tango-harness`, and
//! `tango-serve`: spans, counters, and gauges recorded into bounded
//! per-thread ring buffers (flight recorders) and exported as Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`) or a
//! plain-text hierarchical time summary.
//!
//! # Clock domains
//!
//! Events carry one of three clocks, kept apart so virtual and wall
//! time never mix on one timeline:
//!
//! * [`Domain::Virtual`] — simulator cycles. Each thread owns a
//!   monotonic *virtual cursor* ([`virtual_now`]); instrumented code
//!   advances it ([`advance_virtual`]) as launches retire, so kernel
//!   launches and per-layer spans stack into a cycle-exact timeline.
//!   Virtual events are **byte-deterministic**: the same simulation
//!   produces the same event stream, bit for bit.
//! * [`Domain::Engine`] — the serving engine's own virtual clock.
//!   The discrete-event engine stamps events explicitly with its `now`,
//!   so a replayed arrival trace yields a deterministic timeline too.
//! * [`Domain::Host`] — monotonic nanoseconds since trace start, for
//!   host-side work (suite scheduling, store I/O, live-service
//!   batches). Host events are honest wall-clock and therefore *not*
//!   run-to-run stable.
//!
//! # Cost model
//!
//! Recording is **off by default and free when disabled**: every
//! recording call starts with one relaxed atomic load and a branch, and
//! no allocation, formatting, or locking happens unless tracing was
//! enabled ([`enable`], usually via the `TANGO_TRACE` environment
//! variable — see [`init_from_env`]). When enabled, each thread appends
//! to its own bounded ring ([`parse_event_cap`] / `TANGO_TRACE_CAP`
//! sets the bound); the newest events win, and the drop count is
//! reported so a truncated trace is never mistaken for a complete one.
//!
//! # Example
//!
//! ```
//! tango_obs::enable(1024);
//! tango_obs::reset_current_thread();
//! {
//!     let _outer = tango_obs::vspan("demo", "outer");
//!     tango_obs::advance_virtual(10);
//!     let _inner = tango_obs::vspan("demo", "inner");
//!     tango_obs::advance_virtual(5);
//!     tango_obs::vcounter("demo", "items", 2);
//! }
//! let trace = tango_obs::drain();
//! assert_eq!(trace.dropped, 0);
//! trace.check_nesting().unwrap();
//! assert_eq!(trace.span_cycles("demo"), 15 + 5);
//! tango_obs::json::validate(&trace.chrome_json()).unwrap();
//! tango_obs::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod env;
mod event;
pub mod json;
pub mod metrics;
mod recorder;
mod summary;
mod trace;

pub use env::{
    cap_from_env, init_from_env, metrics_enabled_from_env, metrics_from_env, metrics_window_from_env,
    parse_event_cap, trace_path_from_env, write_chrome_file, DEFAULT_EVENT_CAP,
};
pub use event::{Domain, Event, Phase};
pub use recorder::{
    advance_virtual, current_tid, disable, drain, emit, enable, engine_async_begin, engine_async_end,
    engine_counter_at, engine_instant_at, engine_span_at, fleet_counter_at, fleet_instant_at, fleet_span_at,
    hcounter, hinstant, host_now_ns, hspan, is_enabled, reset_current_thread, vcounter, vcounter_at, vinstant,
    virtual_now, vspan, vspan_begin, vspan_end_at, SpanGuard,
};
pub use trace::Trace;
