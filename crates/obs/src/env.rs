//! Environment gating: `TANGO_TRACE`, `TANGO_TRACE_CAP`, and the
//! `TANGO_METRICS` / `TANGO_METRICS_WINDOW` knobs.
//!
//! Validation follows the same strict style as the harness's
//! `TANGO_JOBS`: an *unset* variable falls back cleanly, but a variable
//! that is set to something unusable is an error naming the variable —
//! silently ignoring a typo'd cap would hand the user a truncated trace
//! they asked to size differently.

use crate::trace::Trace;
use std::path::PathBuf;

/// Default per-thread ring capacity in events when `TANGO_TRACE_CAP` is
/// unset: large enough to hold a full paper-preset run, small enough
/// that an accidental always-on trace stays bounded.
pub const DEFAULT_EVENT_CAP: usize = 1 << 20;

/// Parses a ring capacity from env-var text. `name` is the variable
/// name, used in error messages.
///
/// # Errors
///
/// Returns a message naming the variable when the value is `0` or does
/// not parse as a positive integer.
pub fn parse_event_cap(name: &str, raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!("{name} must be a positive event count, got 0 (unset it for the default)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{name} must be a positive event count, got {raw:?}")),
    }
}

/// Ring capacity from `TANGO_TRACE_CAP`: unset means
/// [`DEFAULT_EVENT_CAP`]; a set value must parse as a positive integer.
///
/// # Errors
///
/// Returns the [`parse_event_cap`] message when the variable is set to
/// `0` or garbage.
pub fn cap_from_env() -> Result<usize, String> {
    let name = "TANGO_TRACE_CAP";
    match std::env::var(name) {
        Ok(v) => parse_event_cap(name, &v),
        Err(std::env::VarError::NotPresent) => Ok(DEFAULT_EVENT_CAP),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{name} is set to a non-UTF-8 value")),
    }
}

/// Trace output path from `TANGO_TRACE`, if set.
///
/// # Errors
///
/// Returns a message when the variable is set but empty or non-UTF-8 —
/// an empty path would silently drop the trace the user asked for.
pub fn trace_path_from_env() -> Result<Option<PathBuf>, String> {
    let name = "TANGO_TRACE";
    match std::env::var(name) {
        Ok(v) if v.trim().is_empty() => Err(format!("{name} must name a trace output path, got {v:?}")),
        Ok(v) => Ok(Some(PathBuf::from(v))),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{name} is set to a non-UTF-8 value")),
    }
}

/// Reads `TANGO_TRACE` / `TANGO_TRACE_CAP` and, when a trace path is
/// set, enables recording with the configured capacity. Returns the
/// path to write the trace to on completion, or `None` when tracing is
/// off.
///
/// The cap is validated even when `TANGO_TRACE` is unset: a garbage
/// `TANGO_TRACE_CAP` is a user mistake worth failing on rather than a
/// value to quietly ignore.
///
/// # Errors
///
/// Returns the [`parse_event_cap`] / [`trace_path_from_env`] messages;
/// binaries should print them to stderr and exit 2.
pub fn init_from_env() -> Result<Option<PathBuf>, String> {
    let cap = cap_from_env()?;
    let path = trace_path_from_env()?;
    if path.is_some() {
        crate::recorder::enable(cap);
    }
    Ok(path)
}

/// Whether metrics collection is on, from `TANGO_METRICS`: unset or
/// `0` means off, `1` means on.
///
/// # Errors
///
/// Returns a message naming the variable for any other value —
/// `TANGO_METRICS=yes` silently doing nothing would be worse than
/// failing; binaries should print the message to stderr and exit 2.
pub fn metrics_enabled_from_env() -> Result<bool, String> {
    let name = "TANGO_METRICS";
    match std::env::var(name) {
        Ok(v) if v.trim() == "1" => Ok(true),
        Ok(v) if v.trim() == "0" => Ok(false),
        Ok(v) => Err(format!("{name} must be 0 or 1, got {v:?}")),
        Err(std::env::VarError::NotPresent) => Ok(false),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{name} is set to a non-UTF-8 value")),
    }
}

/// Metrics window-width override from `TANGO_METRICS_WINDOW`, in the
/// producer's clock units (cycles for `harness metrics`, nanoseconds
/// for fleet/serve). Unset means the producer picks its own width.
///
/// # Errors
///
/// Returns a message naming the variable when set to `0` or garbage —
/// a zero-width window would put every sample in window 0 and silently
/// defeat the time series the user asked to resize.
pub fn metrics_window_from_env() -> Result<Option<u64>, String> {
    let name = "TANGO_METRICS_WINDOW";
    match std::env::var(name) {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => Err(format!(
                "{name} must be a positive window width, got 0 (unset it for the default)"
            )),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(format!("{name} must be a positive window width, got {v:?}")),
        },
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{name} is set to a non-UTF-8 value")),
    }
}

/// Reads both metrics knobs at once: `Ok(Some(window_override))` /
/// `Ok(None)` when enabled, validating `TANGO_METRICS_WINDOW` even
/// when collection is off (a garbage value is a user mistake worth
/// failing on either way).
///
/// # Errors
///
/// Returns the [`metrics_enabled_from_env`] /
/// [`metrics_window_from_env`] messages; binaries should print them to
/// stderr and exit 2.
pub fn metrics_from_env() -> Result<Option<Option<u64>>, String> {
    let enabled = metrics_enabled_from_env()?;
    let window = metrics_window_from_env()?;
    Ok(if enabled { Some(window) } else { None })
}

/// Writes `trace` as Chrome trace-event JSON to `path`, creating parent
/// directories.
///
/// # Errors
///
/// Returns a message naming the path on I/O failure.
pub fn write_chrome_file(path: &std::path::Path, trace: &Trace) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, trace.chrome_json()).map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_accepts_positive_integers() {
        assert_eq!(parse_event_cap("TANGO_TRACE_CAP", "4096"), Ok(4096));
        assert_eq!(parse_event_cap("TANGO_TRACE_CAP", " 1 "), Ok(1));
    }

    #[test]
    fn cap_rejects_zero_and_garbage_naming_the_variable() {
        let err = parse_event_cap("TANGO_TRACE_CAP", "0").unwrap_err();
        assert!(err.contains("TANGO_TRACE_CAP") && err.contains('0'), "{err}");
        for bad in ["", "many", "-1", "2.5", "1e6"] {
            let err = parse_event_cap("TANGO_TRACE_CAP", bad).unwrap_err();
            assert!(err.contains("TANGO_TRACE_CAP"), "{err}");
            assert!(err.contains(&format!("{bad:?}")), "{err}");
        }
    }
}
