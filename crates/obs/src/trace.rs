//! A drained trace: the events plus the invariants we can check on
//! them.

use crate::event::{Event, Phase};
use std::collections::HashMap;

/// Everything the flight recorders held at drain time.
///
/// Events are grouped by track (ascending track id) and in append order
/// within a track — which is chronological, because every clock in use
/// is monotonic per track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The recorded events, track-grouped.
    pub events: Vec<Event>,
    /// Events discarded because a ring was full. A non-zero count means
    /// the trace is a truncated flight-recorder window, not a complete
    /// record.
    pub dropped: u64,
    /// Per-ring drop attribution: `(track id, dropped)` for every ring
    /// that lost events, ascending by track id. Summaries render this
    /// so a truncated track is named, not just counted.
    pub dropped_by_track: Vec<(u32, u64)>,
}

impl Trace {
    /// Checks span discipline on every track: each `End` closes the
    /// most recent `Begin` with the same category and name, timestamps
    /// never run backwards within a span, every span closes, and async
    /// begin/end ids balance.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn check_nesting(&self) -> Result<(), String> {
        // (domain pid, tid) -> stack of open (cat, name, ts).
        type OpenSpan<'a> = (&'a str, &'a str, u64);
        let mut stacks: HashMap<(u32, u32), Vec<OpenSpan<'_>>> = HashMap::new();
        // (cat, async id) -> open count.
        let mut async_open: HashMap<(&str, i64), i64> = HashMap::new();
        for ev in &self.events {
            let key = (ev.domain.pid(), ev.tid);
            match ev.phase {
                Phase::Begin => {
                    stacks.entry(key).or_default().push((ev.cat, &ev.name, ev.ts));
                }
                Phase::End => {
                    let top = stacks.entry(key).or_default().pop();
                    match top {
                        None => {
                            return Err(format!(
                                "track {}/{}: end of {} {:?} with no open span",
                                ev.domain, ev.tid, ev.cat, ev.name
                            ))
                        }
                        Some((cat, name, ts)) => {
                            if cat != ev.cat || name != ev.name {
                                return Err(format!(
                                    "track {}/{}: end of {} {:?} closes open span {} {:?}",
                                    ev.domain, ev.tid, ev.cat, ev.name, cat, name
                                ));
                            }
                            if ev.ts < ts {
                                return Err(format!(
                                    "track {}/{}: span {} {:?} ends at {} before its begin at {}",
                                    ev.domain, ev.tid, ev.cat, ev.name, ev.ts, ts
                                ));
                            }
                        }
                    }
                }
                Phase::AsyncBegin => *async_open.entry((ev.cat, ev.value)).or_insert(0) += 1,
                Phase::AsyncEnd => {
                    let open = async_open.entry((ev.cat, ev.value)).or_insert(0);
                    *open -= 1;
                    if *open < 0 {
                        return Err(format!(
                            "async span {} id {} ended without a begin",
                            ev.cat, ev.value
                        ));
                    }
                }
                Phase::Counter | Phase::Instant => {}
            }
        }
        for ((pid, tid), stack) in &stacks {
            if let Some((cat, name, ts)) = stack.last() {
                return Err(format!(
                    "track pid {pid}/tid {tid}: span {cat} {name:?} opened at {ts} never closed"
                ));
            }
        }
        for ((cat, id), open) in &async_open {
            if *open != 0 {
                return Err(format!("async span {cat} id {id} left {open} begin(s) unclosed"));
            }
        }
        Ok(())
    }

    /// Total duration of all closed spans in category `cat`, in the
    /// span's own clock units (cycles for virtual/engine spans).
    /// Overlapping and nested spans each contribute their full length.
    pub fn span_cycles(&self, cat: &str) -> u64 {
        let mut stacks: HashMap<(u32, u32), Vec<(&str, u64)>> = HashMap::new();
        let mut total = 0u64;
        for ev in &self.events {
            let key = (ev.domain.pid(), ev.tid);
            match ev.phase {
                Phase::Begin => stacks.entry(key).or_default().push((ev.cat, ev.ts)),
                Phase::End => {
                    if let Some((open_cat, ts)) = stacks.entry(key).or_default().pop() {
                        if open_cat == cat {
                            total += ev.ts.saturating_sub(ts);
                        }
                    }
                }
                _ => {}
            }
        }
        total
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Exports the trace as Chrome trace-event JSON (Perfetto /
    /// `chrome://tracing` loadable). Byte-deterministic for
    /// deterministic event streams.
    pub fn chrome_json(&self) -> String {
        crate::chrome::export(self)
    }

    /// Renders a plain-text hierarchical time summary per track, with
    /// final counter values.
    pub fn text_summary(&self) -> String {
        crate::summary::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Domain;

    fn ev(tid: u32, ts: u64, phase: Phase, cat: &'static str, name: &str) -> Event {
        Event {
            domain: Domain::Virtual,
            tid,
            ts,
            phase,
            cat,
            name: name.to_string(),
            value: 0,
        }
    }

    #[test]
    fn well_nested_spans_pass_and_sum() {
        let trace = Trace {
            events: vec![
                ev(1, 0, Phase::Begin, "outer", "a"),
                ev(1, 5, Phase::Begin, "inner", "b"),
                ev(1, 9, Phase::End, "inner", "b"),
                ev(1, 20, Phase::End, "outer", "a"),
            ],
            dropped: 0,
            dropped_by_track: vec![],
        };
        trace.check_nesting().unwrap();
        assert_eq!(trace.span_cycles("outer"), 20);
        assert_eq!(trace.span_cycles("inner"), 4);
        assert_eq!(trace.span_cycles("absent"), 0);
    }

    #[test]
    fn cross_track_spans_do_not_interfere() {
        let trace = Trace {
            events: vec![
                ev(1, 0, Phase::Begin, "job", "x"),
                ev(2, 3, Phase::Begin, "job", "y"),
                ev(1, 10, Phase::End, "job", "x"),
                ev(2, 7, Phase::End, "job", "y"),
            ],
            dropped: 0,
            dropped_by_track: vec![],
        };
        trace.check_nesting().unwrap();
        assert_eq!(trace.span_cycles("job"), 10 + 4);
    }

    #[test]
    fn mismatched_end_is_rejected() {
        let trace = Trace {
            events: vec![
                ev(1, 0, Phase::Begin, "outer", "a"),
                ev(1, 5, Phase::End, "outer", "b"),
            ],
            dropped: 0,
            dropped_by_track: vec![],
        };
        let err = trace.check_nesting().unwrap_err();
        assert!(err.contains("closes open span"), "{err}");
    }

    #[test]
    fn unclosed_and_unopened_spans_are_rejected() {
        let open = Trace {
            events: vec![ev(1, 0, Phase::Begin, "outer", "a")],
            dropped: 0,
            dropped_by_track: vec![],
        };
        assert!(open.check_nesting().unwrap_err().contains("never closed"));
        let stray = Trace {
            events: vec![ev(1, 4, Phase::End, "outer", "a")],
            dropped: 0,
            dropped_by_track: vec![],
        };
        assert!(stray.check_nesting().unwrap_err().contains("no open span"));
    }

    #[test]
    fn backwards_span_is_rejected() {
        let trace = Trace {
            events: vec![
                ev(1, 10, Phase::Begin, "outer", "a"),
                ev(1, 3, Phase::End, "outer", "a"),
            ],
            dropped: 0,
            dropped_by_track: vec![],
        };
        assert!(trace.check_nesting().unwrap_err().contains("before its begin"));
    }

    #[test]
    fn async_ids_must_balance() {
        let mut begin = ev(1, 0, Phase::AsyncBegin, "req", "r");
        begin.value = 7;
        let mut end = ev(1, 9, Phase::AsyncEnd, "req", "r");
        end.value = 7;
        let ok = Trace {
            events: vec![begin.clone(), end],
            dropped: 0,
            dropped_by_track: vec![],
        };
        ok.check_nesting().unwrap();
        let unclosed = Trace {
            events: vec![begin],
            dropped: 0,
            dropped_by_track: vec![],
        };
        assert!(unclosed.check_nesting().unwrap_err().contains("unclosed"));
    }
}
