//! Deterministic time-series metrics layered on the flight recorder.
//!
//! The recorder (PR 3) answers "what happened, in order"; this module
//! answers "how much, per window". It is the same zero-dependency,
//! byte-deterministic discipline applied to aggregation:
//!
//! * [`LogHistogram`] — fixed-size power-of-two buckets, saturating
//!   integer state, order-independent merge;
//! * [`MetricsRegistry`] — named counter/gauge/histogram series cut
//!   into fixed windows of one clock domain, with text, JSONL, and
//!   Prometheus text-format exporters;
//! * [`validate_exposition`] — an in-tree grammar checker for the
//!   Prometheus output, mirroring [`crate::json`] for Chrome traces;
//! * [`SloMonitor`] — rolling error budgets with multi-window
//!   burn-rate alerts ([`BurnAlert`]), integer milli-burn math;
//! * [`aggregate_trace`] — folds a drained [`Trace`] into a registry,
//!   so any instrumented run can be viewed as windowed time series
//!   without new instrumentation.
//!
//! Collection never changes an existing output byte: producers record
//! into a registry on the side and render to *new* artifacts
//! (`results/metrics_*.txt` / `.jsonl` / `.prom`), and registries built
//! on different worker counts merge to identical bytes (CI-gated).

mod histogram;
mod prometheus;
mod registry;
mod slo;

pub use histogram::{LogHistogram, BUCKETS};
pub use prometheus::validate_exposition;
pub use registry::{MetricKind, MetricsRegistry};
pub use slo::{burn_milli, fmt_burn, BurnAlert, BurnSeverity, SloMonitor, SloPolicy, SloReport, SloWindow};

use crate::event::{Domain, Phase};
use crate::trace::Trace;
use std::collections::HashMap;

/// Maps an event category/name fragment onto the Prometheus name
/// grammar: `[a-zA-Z0-9_:]` pass through, everything else becomes `_`,
/// and a leading digit gets a `m_` prefix.
pub fn sanitize_metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    if out.as_bytes()[0].is_ascii_digit() {
        out.insert_str(0, "m_");
    }
    out
}

/// Escapes a string for use as a Prometheus label value.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Folds the `domain` events of a drained trace into a windowed
/// [`MetricsRegistry`]:
///
/// * `Counter` samples become gauges named `<cat>_<name>` (the sample
///   *is* the current value — sim cache counters are cumulative);
/// * `Instant` markers become counters `<cat>_<name>_total`;
/// * closed `Begin`/`End` spans become duration histograms
///   `<cat>_<unit>{name="<name>"}`, observed at the span's end;
/// * `AsyncBegin`/`AsyncEnd` pairs (matched by category and id) become
///   duration histograms the same way.
///
/// The unit is the domain's clock: `cycles` for virtual/engine, `ns`
/// for fleet/host. Unmatched span ends and still-open spans are
/// skipped — aggregation is best-effort like the text summary.
pub fn aggregate_trace(trace: &Trace, domain: Domain, window: u64) -> MetricsRegistry {
    let unit = match domain {
        Domain::Virtual | Domain::Engine => "cycles",
        Domain::Fleet | Domain::Host => "ns",
    };
    let mut reg = MetricsRegistry::new(unit, window);
    // Per-track span stacks: tid -> [(cat, name, begin ts)].
    let mut stacks: HashMap<u32, Vec<(&str, &str, u64)>> = HashMap::new();
    // (cat, id) -> begin ts for async spans.
    let mut async_open: HashMap<(&str, i64), u64> = HashMap::new();
    for ev in trace.events.iter().filter(|e| e.domain == domain) {
        match ev.phase {
            Phase::Counter => {
                let name = format!(
                    "{}_{}",
                    sanitize_metric_name(ev.cat),
                    sanitize_metric_name(&ev.name)
                );
                reg.gauge_set(&name, ev.ts, ev.value);
            }
            Phase::Instant => {
                let name = format!(
                    "{}_{}_total",
                    sanitize_metric_name(ev.cat),
                    sanitize_metric_name(&ev.name)
                );
                reg.counter_add(&name, ev.ts, 1);
            }
            Phase::Begin => {
                stacks
                    .entry(ev.tid)
                    .or_default()
                    .push((ev.cat, &ev.name, ev.ts));
            }
            Phase::End => {
                if let Some((cat, name, begin)) = stacks.entry(ev.tid).or_default().pop() {
                    let metric = format!(
                        "{}_{}{{name=\"{}\"}}",
                        sanitize_metric_name(cat),
                        unit,
                        escape_label_value(name)
                    );
                    reg.observe(&metric, ev.ts, ev.ts.saturating_sub(begin));
                }
            }
            Phase::AsyncBegin => {
                async_open.insert((ev.cat, ev.value), ev.ts);
            }
            Phase::AsyncEnd => {
                if let Some(begin) = async_open.remove(&(ev.cat, ev.value)) {
                    let metric = format!(
                        "{}_{}{{name=\"{}\"}}",
                        sanitize_metric_name(ev.cat),
                        unit,
                        escape_label_value(&ev.name)
                    );
                    reg.observe(&metric, ev.ts, ev.ts.saturating_sub(begin));
                }
            }
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(tid: u32, ts: u64, phase: Phase, cat: &'static str, name: &str, value: i64) -> Event {
        Event {
            domain: Domain::Virtual,
            tid,
            ts,
            phase,
            cat,
            name: name.to_string(),
            value,
        }
    }

    #[test]
    fn sanitizer_maps_onto_prometheus_grammar() {
        assert_eq!(sanitize_metric_name("sim.cache"), "sim_cache");
        assert_eq!(sanitize_metric_name("l1d_hits"), "l1d_hits");
        assert_eq!(sanitize_metric_name("9lives"), "m_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn aggregation_covers_every_phase() {
        let mut async_begin = ev(1, 10, Phase::AsyncBegin, "req", "r", 0);
        async_begin.value = 7;
        let mut async_end = ev(1, 30, Phase::AsyncEnd, "req", "r", 0);
        async_end.value = 7;
        let trace = Trace {
            events: vec![
                ev(1, 0, Phase::Begin, "net.infer", "CifarNet", 0),
                ev(1, 0, Phase::Begin, "net.layer", "conv1", 0),
                ev(1, 70, Phase::End, "net.layer", "conv1", 0),
                ev(1, 100, Phase::End, "net.infer", "CifarNet", 0),
                ev(1, 100, Phase::Counter, "sim.cache", "l1d_hits", 42),
                ev(1, 100, Phase::Instant, "sim", "memo_hit", 0),
                async_begin,
                async_end,
            ],
            dropped: 0,
            dropped_by_track: vec![],
        };
        let reg = aggregate_trace(&trace, Domain::Virtual, 64);
        assert_eq!(reg.unit(), "cycles");
        assert_eq!(reg.gauge_last("sim_cache_l1d_hits"), Some(42));
        assert_eq!(reg.counter_total("sim_memo_hit_total"), Some(1));
        let layers = reg.histogram_total("net_layer_cycles{name=\"conv1\"}").expect("layer histogram");
        assert_eq!(layers.count(), 1);
        assert_eq!(layers.sum(), 70);
        let infer = reg.histogram_total("net_infer_cycles{name=\"CifarNet\"}").expect("infer histogram");
        assert_eq!(infer.sum(), 100);
        let req = reg.histogram_total("req_cycles{name=\"r\"}").expect("async histogram");
        assert_eq!(req.sum(), 20);
        // The whole thing round-trips through the exposition checker.
        validate_exposition(&reg.prometheus_text()).unwrap();
    }

    #[test]
    fn other_domains_are_ignored() {
        let trace = Trace {
            events: vec![ev(1, 0, Phase::Counter, "sim.cache", "l1d_hits", 1)],
            dropped: 0,
            dropped_by_track: vec![],
        };
        let reg = aggregate_trace(&trace, Domain::Fleet, 64);
        assert!(reg.is_empty());
        assert_eq!(reg.unit(), "ns");
    }
}
