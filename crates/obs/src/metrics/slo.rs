//! Rolling error budgets and multi-window burn-rate alerting.
//!
//! Follows the SRE-workbook shape: an objective ("99% of interactive
//! requests meet their latency SLO") defines an error *budget* (the
//! allowed 1%), and the *burn rate* is how many times faster than
//! budget the service is consuming it — a burn of 1.0 exactly exhausts
//! the budget over the evaluation period. Alerts fire when **both** a
//! short window and a long window exceed a threshold: the long window
//! keeps one bad window from paging, the short window makes the alert
//! reset quickly once the incident ends.
//!
//! All math is integer (parts-per-million rates, milli-burn
//! thresholds: 14400 milli = 14.4×), so evaluation is deterministic and
//! the rendered report byte-stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An SLO objective plus its burn-rate alert thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloPolicy {
    /// Objective label (a fleet class name, in practice).
    pub objective: String,
    /// Target good fraction in parts-per-million (990_000 = 99%).
    pub target_ppm: u32,
    /// Short evaluation window, in metric windows (≥ 1).
    pub short_windows: u64,
    /// Long evaluation window, in metric windows (≥ `short_windows`).
    pub long_windows: u64,
    /// Fast-burn (page) threshold in milli-burn (14_400 = 14.4×).
    pub fast_burn_milli: u64,
    /// Slow-burn (ticket) threshold in milli-burn (6_000 = 6×).
    pub slow_burn_milli: u64,
}

impl SloPolicy {
    /// The SRE-workbook default thresholds over a short/long window
    /// pair: page at 14.4× on both windows, ticket at 6× on both.
    pub fn burn_defaults(objective: &str, target_ppm: u32, short_windows: u64, long_windows: u64) -> SloPolicy {
        SloPolicy {
            objective: objective.to_string(),
            target_ppm,
            short_windows,
            long_windows,
            fast_burn_milli: 14_400,
            slow_burn_milli: 6_000,
        }
    }

    /// The error budget in parts-per-million.
    pub fn budget_ppm(&self) -> u64 {
        1_000_000u64.saturating_sub(self.target_ppm as u64)
    }

    /// Validates the policy shape.
    ///
    /// # Errors
    ///
    /// Returns a message when the target leaves no budget (or is 0),
    /// windows are zero or inverted, or thresholds are inverted.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_ppm == 0 || self.target_ppm >= 1_000_000 {
            return Err(format!(
                "slo {:?}: target_ppm must be in 1..=999999, got {}",
                self.objective, self.target_ppm
            ));
        }
        if self.short_windows == 0 || self.long_windows < self.short_windows {
            return Err(format!(
                "slo {:?}: need 1 <= short_windows ({}) <= long_windows ({})",
                self.objective, self.short_windows, self.long_windows
            ));
        }
        if self.slow_burn_milli > self.fast_burn_milli {
            return Err(format!(
                "slo {:?}: slow burn {} exceeds fast burn {}",
                self.objective, self.slow_burn_milli, self.fast_burn_milli
            ));
        }
        Ok(())
    }
}

/// Alert severity: `Fast` is the page-level threshold, `Slow` the
/// ticket-level one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BurnSeverity {
    /// Ticket-level burn (sustained, slower).
    Slow,
    /// Page-level burn (budget disappearing fast).
    Fast,
}

impl BurnSeverity {
    /// Lower-case label used in reports and obs instants.
    pub fn label(self) -> &'static str {
        match self {
            BurnSeverity::Fast => "fast",
            BurnSeverity::Slow => "slow",
        }
    }
}

/// A burn-rate alert transition (raise or escalation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurnAlert {
    /// The objective that fired.
    pub objective: String,
    /// Severity entered at this window.
    pub severity: BurnSeverity,
    /// Window index the alert fired at.
    pub window: u64,
    /// Timestamp of the end of that window (exclusive), clock units.
    pub at: u64,
    /// Short-window burn in milli at fire time.
    pub short_burn_milli: u64,
    /// Long-window burn in milli at fire time.
    pub long_burn_milli: u64,
}

/// Per-window evaluation state in a [`SloReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloWindow {
    /// Window index.
    pub window: u64,
    /// Good events observed in this window alone.
    pub good: u64,
    /// Bad events observed in this window alone.
    pub bad: u64,
    /// Burn over the trailing short window, in milli.
    pub short_burn_milli: u64,
    /// Burn over the trailing long window, in milli.
    pub long_burn_milli: u64,
    /// Alert severity active at this window, if any.
    pub severity: Option<BurnSeverity>,
}

/// The evaluated SLO: totals, the per-window trail, and every alert
/// transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloReport {
    /// The policy that produced this report.
    pub policy: SloPolicy,
    /// Total good events.
    pub good: u64,
    /// Total bad events.
    pub bad: u64,
    /// Whole-run burn rate in milli (1000 = exactly on budget).
    pub overall_burn_milli: u64,
    /// Contiguous evaluation trail from first to last observed window.
    pub windows: Vec<SloWindow>,
    /// Raise/escalate transitions, in window order.
    pub alerts: Vec<BurnAlert>,
}

impl SloReport {
    /// Renders the byte-stable report block: budget line, alert lines,
    /// and the windows that were in an alert state.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.good + self.bad;
        let _ = writeln!(
            out,
            "slo {}  target {}.{:04}%  events {}  bad {}  burn {}",
            self.policy.objective,
            self.policy.target_ppm / 10_000,
            self.policy.target_ppm % 10_000,
            total,
            self.bad,
            fmt_burn(self.overall_burn_milli),
        );
        if self.alerts.is_empty() {
            let _ = writeln!(out, "  alerts: none");
        } else {
            for a in &self.alerts {
                let _ = writeln!(
                    out,
                    "  ALERT {}_burn  window {}  at {}  short {}  long {}",
                    a.severity.label(),
                    a.window,
                    a.at,
                    fmt_burn(a.short_burn_milli),
                    fmt_burn(a.long_burn_milli),
                );
            }
        }
        let alerting = self.windows.iter().filter(|w| w.severity.is_some()).count();
        let _ = writeln!(
            out,
            "  windows {}  alerting {}  (short {}w fast {}  /  long {}w slow {})",
            self.windows.len(),
            alerting,
            self.policy.short_windows,
            fmt_burn(self.policy.fast_burn_milli),
            self.policy.long_windows,
            fmt_burn(self.policy.slow_burn_milli),
        );
        out
    }
}

/// Formats a milli-burn as `N.Nx` (e.g. 14400 → `14.4x`).
pub fn fmt_burn(milli: u64) -> String {
    format!("{}.{}x", milli / 1000, (milli % 1000) / 100)
}

/// Burn rate in milli for `bad` failures out of `total` events against
/// a `budget_ppm` error budget. 1000 = consuming exactly the budget;
/// 0 when there is no traffic or no budget.
pub fn burn_milli(bad: u64, total: u64, budget_ppm: u64) -> u64 {
    if total == 0 || budget_ppm == 0 {
        return 0;
    }
    // (bad/total) / (budget_ppm/1e6) * 1000, in u128 to dodge overflow.
    let num = bad as u128 * 1_000_000u128 * 1000u128;
    let den = total as u128 * budget_ppm as u128;
    (num / den).min(u64::MAX as u128) as u64
}

/// Accumulates good/bad events into metric windows and evaluates the
/// burn-rate policy over the trail.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    policy: SloPolicy,
    window: u64,
    /// window index -> (good, bad).
    cells: BTreeMap<u64, (u64, u64)>,
}

impl SloMonitor {
    /// Creates a monitor over windows of `window` clock units (clamped
    /// to at least 1).
    ///
    /// # Panics
    ///
    /// Panics when the policy fails [`SloPolicy::validate`] — policies
    /// are built by code, not user input.
    pub fn new(policy: SloPolicy, window: u64) -> SloMonitor {
        policy.validate().unwrap_or_else(|e| panic!("{e}"));
        SloMonitor {
            policy,
            window: window.max(1),
            cells: BTreeMap::new(),
        }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Records one event at `ts`: `good` means the objective was met.
    pub fn record(&mut self, ts: u64, good: bool) {
        let cell = self.cells.entry(ts / self.window).or_insert((0, 0));
        if good {
            cell.0 = cell.0.saturating_add(1);
        } else {
            cell.1 = cell.1.saturating_add(1);
        }
    }

    /// Sum of (good, bad) over window indices `lo..=hi`.
    fn range_totals(&self, lo: u64, hi: u64) -> (u64, u64) {
        let mut good = 0u64;
        let mut bad = 0u64;
        for (_, &(g, b)) in self.cells.range(lo..=hi) {
            good = good.saturating_add(g);
            bad = bad.saturating_add(b);
        }
        (good, bad)
    }

    /// Evaluates the policy over every window from the first to the
    /// last observed (empty windows burn nothing but keep the trail
    /// contiguous) and returns the report. Alerts fire on transitions:
    /// entering `Slow`, entering `Fast`, or escalating `Slow → Fast`.
    pub fn finish(&self) -> SloReport {
        let budget = self.policy.budget_ppm();
        let (mut good_total, mut bad_total) = (0u64, 0u64);
        let mut windows = Vec::new();
        let mut alerts = Vec::new();
        let mut active: Option<BurnSeverity> = None;
        if let (Some(&first), Some(&last)) = (
            self.cells.keys().next(),
            self.cells.keys().next_back(),
        ) {
            for w in first..=last {
                let (g, b) = self.cells.get(&w).copied().unwrap_or((0, 0));
                good_total = good_total.saturating_add(g);
                bad_total = bad_total.saturating_add(b);
                let lo_short = w.saturating_sub(self.policy.short_windows - 1);
                let lo_long = w.saturating_sub(self.policy.long_windows - 1);
                let (sg, sb) = self.range_totals(lo_short, w);
                let (lg, lb) = self.range_totals(lo_long, w);
                let short = burn_milli(sb, sg + sb, budget);
                let long = burn_milli(lb, lg + lb, budget);
                let severity = if short >= self.policy.fast_burn_milli && long >= self.policy.fast_burn_milli {
                    Some(BurnSeverity::Fast)
                } else if short >= self.policy.slow_burn_milli && long >= self.policy.slow_burn_milli {
                    Some(BurnSeverity::Slow)
                } else {
                    None
                };
                if let Some(sev) = severity {
                    let raises = match active {
                        None => true,
                        Some(prev) => sev > prev,
                    };
                    if raises {
                        alerts.push(BurnAlert {
                            objective: self.policy.objective.clone(),
                            severity: sev,
                            window: w,
                            at: (w + 1) * self.window,
                            short_burn_milli: short,
                            long_burn_milli: long,
                        });
                    }
                }
                active = severity;
                windows.push(SloWindow {
                    window: w,
                    good: g,
                    bad: b,
                    short_burn_milli: short,
                    long_burn_milli: long,
                    severity,
                });
            }
        }
        let overall = burn_milli(bad_total, good_total + bad_total, budget);
        SloReport {
            policy: self.policy.clone(),
            good: good_total,
            bad: bad_total,
            overall_burn_milli: overall,
            windows,
            alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        // 99% target, short 1 window, long 4 windows.
        SloPolicy::burn_defaults("interactive", 990_000, 1, 4)
    }

    #[test]
    fn burn_math_is_exact() {
        // 1% budget, 1% errors -> burn exactly 1.0x.
        assert_eq!(burn_milli(1, 100, 10_000), 1000);
        // 14.4% errors on a 1% budget -> 14.4x.
        assert_eq!(burn_milli(144, 1000, 10_000), 14_400);
        assert_eq!(burn_milli(0, 100, 10_000), 0);
        assert_eq!(burn_milli(0, 0, 10_000), 0);
        // Huge counts don't overflow (u64::MAX/2 bad of u64::MAX-1
        // total is exactly half the traffic on a 50% budget).
        assert_eq!(burn_milli(u64::MAX / 2, u64::MAX - 1, 500_000), 1000);
        assert_eq!(fmt_burn(14_400), "14.4x");
        assert_eq!(fmt_burn(999), "0.9x");
    }

    #[test]
    fn quiet_service_never_alerts() {
        let mut m = SloMonitor::new(policy(), 100);
        for i in 0..1000u64 {
            m.record(i * 3, true);
        }
        let r = m.finish();
        assert!(r.alerts.is_empty());
        assert_eq!(r.bad, 0);
        assert_eq!(r.overall_burn_milli, 0);
        assert!(r.render().contains("alerts: none"));
    }

    #[test]
    fn sustained_burn_fires_once_and_escalates_once() {
        let mut m = SloMonitor::new(policy(), 100);
        // Windows 0..4: healthy. Windows 4..8: 50% errors (burn 50x on
        // a 1% budget) — the long window lags the short one.
        for w in 0..8u64 {
            for i in 0..40u64 {
                let ts = w * 100 + i * 2;
                let good = w < 4 || i % 2 == 0;
                m.record(ts, good);
            }
        }
        let r = m.finish();
        // Short window saturates at w4; long window (4w trailing)
        // crosses fast only later. Exactly one Fast raise, no flapping
        // re-raises while the burn persists.
        let fast: Vec<&BurnAlert> = r.alerts.iter().filter(|a| a.severity == BurnSeverity::Fast).collect();
        assert_eq!(fast.len(), 1, "{:?}", r.alerts);
        assert!(r.windows.iter().any(|w| w.severity == Some(BurnSeverity::Fast)));
        assert!(r.render().contains("ALERT fast_burn"), "{}", r.render());
        // Alert timestamps sit on window boundaries.
        assert_eq!(fast[0].at % 100, 0);
    }

    #[test]
    fn one_bad_window_does_not_page() {
        let mut m = SloMonitor::new(policy(), 100);
        // 8 windows of 40 good each; window 3 adds 10 bad (20% errors
        // -> short burn 20x, but the 4-window long burn is ~5.3x, under
        // the 6x slow threshold).
        for w in 0..8u64 {
            for i in 0..40u64 {
                m.record(w * 100 + i * 2, true);
            }
        }
        for i in 0..10u64 {
            m.record(300 + i, false);
        }
        let r = m.finish();
        assert!(r.alerts.is_empty(), "{:?}", r.alerts);
    }

    #[test]
    fn empty_windows_keep_the_trail_contiguous() {
        let mut m = SloMonitor::new(policy(), 100);
        m.record(50, true);
        m.record(850, false);
        let r = m.finish();
        assert_eq!(r.windows.len(), 9, "windows 0..=8 inclusive");
        assert!(r.windows[3].good == 0 && r.windows[3].bad == 0);
        // The empty middle windows report zero burn.
        assert_eq!(r.windows[4].short_burn_milli, 0);
    }

    #[test]
    fn policy_validation_rejects_nonsense() {
        let mut p = policy();
        p.target_ppm = 1_000_000;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.short_windows = 5;
        assert!(p.validate().is_err(), "short > long");
        let mut p = policy();
        p.slow_burn_milli = 20_000;
        assert!(p.validate().is_err(), "slow > fast");
        assert!(policy().validate().is_ok());
    }
}
