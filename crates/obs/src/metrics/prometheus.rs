//! In-tree Prometheus text-exposition grammar checker.
//!
//! The exposition emitted by [`super::MetricsRegistry::prometheus_text`]
//! is built by hand (this crate is dependency free), so the CI gate
//! "the exposition is well-formed" needs an independent check — the
//! same pattern as [`crate::json`] for the Chrome trace. This is a
//! line-oriented recognizer for the classic Prometheus text format:
//!
//! * `# TYPE name kind` and `# HELP name text` comments — at most one
//!   of each per family, `TYPE` before any sample of that family;
//! * samples `name{label="value",...} value [timestamp]` with strict
//!   metric-/label-name grammar and `\\ \" \n` escapes in label values;
//! * histogram families: `_bucket` samples carry an `le` label, bucket
//!   counts are cumulative (non-decreasing in `le` order, per label
//!   set), an `le="+Inf"` bucket exists and equals `_count`.

use std::collections::BTreeMap;

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value {s:?}")),
    }
}

/// One parsed sample line.
#[derive(Debug)]
struct Sample {
    name: String,
    /// Sorted (label, value) pairs.
    labels: Vec<(String, String)>,
    value: f64,
    line: usize,
}

/// Parses `{a="b",c="d"}`; `input` starts at `{`. Returns the labels
/// and the number of bytes consumed.
fn parse_labels(input: &str) -> Result<(Vec<(String, String)>, usize), String> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[0], b'{');
    let mut pos = 1;
    let mut labels = Vec::new();
    if bytes.get(pos) == Some(&b'}') {
        return Ok((labels, 2));
    }
    loop {
        let start = pos;
        while pos < bytes.len() && bytes[pos] != b'=' {
            pos += 1;
        }
        let name = &input[start..pos];
        if !is_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        pos += 1; // '='
        if bytes.get(pos) != Some(&b'"') {
            return Err(format!("label {name:?}: expected opening quote"));
        }
        pos += 1;
        let mut value = String::new();
        loop {
            match bytes.get(pos) {
                None => return Err(format!("label {name:?}: unterminated value")),
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => {
                    pos += 1;
                    match bytes.get(pos) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => {
                            return Err(format!(
                                "label {name:?}: invalid escape {:?}",
                                other.map(|&b| b as char)
                            ))
                        }
                    }
                    pos += 1;
                }
                Some(_) => {
                    // Safe to index by char boundary: advance over one char.
                    let c = input[pos..].chars().next().expect("in range");
                    value.push(c);
                    pos += c.len_utf8();
                }
            }
        }
        labels.push((name.to_string(), value));
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            _ => return Err("expected ',' or '}' in label set".to_string()),
        }
    }
    Ok((labels, pos))
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !is_metric_name(name) {
        return Err(format!("line {lineno}: invalid metric name {name:?}"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if rest.starts_with('{') {
        let (parsed, used) =
            parse_labels(rest).map_err(|e| format!("line {lineno}: {e}"))?;
        labels = parsed;
        rest = &rest[used..];
    }
    let mut sorted = labels.clone();
    sorted.sort();
    sorted.dedup_by(|a, b| a.0 == b.0);
    if sorted.len() != labels.len() {
        return Err(format!("line {lineno}: duplicate label name"));
    }
    let fields: Vec<&str> = rest.split_ascii_whitespace().collect();
    let value = match fields.as_slice() {
        [v] => parse_value(v).map_err(|e| format!("line {lineno}: {e}"))?,
        [v, ts] => {
            let value = parse_value(v).map_err(|e| format!("line {lineno}: {e}"))?;
            ts.parse::<i64>()
                .map_err(|_| format!("line {lineno}: invalid timestamp {ts:?}"))?;
            value
        }
        _ => {
            return Err(format!(
                "line {lineno}: expected 'value [timestamp]' after metric, got {rest:?}"
            ))
        }
    };
    Ok(Sample {
        name: name.to_string(),
        labels: sorted,
        value,
        line: lineno,
    })
}

/// The family a sample belongs to under a declared type: histograms own
/// their `_bucket`/`_sum`/`_count` suffixes.
fn family_of<'a>(name: &'a str, histogram_families: &BTreeMap<String, ()>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if histogram_families.contains_key(stem) {
                return stem;
            }
        }
    }
    name
}

/// Checks that `input` is a well-formed Prometheus text-format
/// exposition (see the module docs for what is enforced).
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn validate_exposition(input: &str) -> Result<(), String> {
    if !input.is_empty() && !input.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeMap<String, ()> = BTreeMap::new();
    let mut histogram_families: BTreeMap<String, ()> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut seen_sample_families: BTreeMap<String, ()> = BTreeMap::new();
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.strip_prefix(' ').unwrap_or(comment);
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("");
                if !is_metric_name(name) {
                    return Err(format!("line {lineno}: TYPE names invalid metric {name:?}"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name:?}"));
                }
                if seen_sample_families.contains_key(name) {
                    return Err(format!(
                        "line {lineno}: TYPE for {name:?} after its samples"
                    ));
                }
                if kind == "histogram" {
                    histogram_families.insert(name.to_string(), ());
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !is_metric_name(name) {
                    return Err(format!("line {lineno}: HELP names invalid metric {name:?}"));
                }
                if helps.insert(name.to_string(), ()).is_some() {
                    return Err(format!("line {lineno}: duplicate HELP for {name:?}"));
                }
            }
            // Other comments are free-form.
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        let family = family_of(&sample.name, &histogram_families).to_string();
        seen_sample_families.insert(family, ());
        samples.push(sample);
    }
    // Histogram shape checks, per family and label set (minus `le`).
    for family in histogram_families.keys() {
        let bucket_name = format!("{family}_bucket");
        let count_name = format!("{family}_count");
        // label-set-without-le -> [(le, cumulative count, line)]
        type LabelSet = Vec<(String, String)>;
        let mut buckets: BTreeMap<LabelSet, Vec<(f64, f64, usize)>> = BTreeMap::new();
        let mut counts: BTreeMap<Vec<(String, String)>, f64> = BTreeMap::new();
        for s in &samples {
            if s.name == bucket_name {
                let le = match s.labels.iter().find(|(k, _)| k == "le") {
                    Some((_, v)) => parse_value(v)
                        .map_err(|_| format!("line {}: unparsable le {v:?}", s.line))?,
                    None => {
                        return Err(format!(
                            "line {}: {bucket_name} sample without an le label",
                            s.line
                        ))
                    }
                };
                let key: Vec<(String, String)> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                buckets.entry(key).or_default().push((le, s.value, s.line));
            } else if s.name == count_name {
                counts.insert(s.labels.clone(), s.value);
            } else if s.name == *family {
                return Err(format!(
                    "line {}: histogram family {family:?} has a bare sample",
                    s.line
                ));
            }
        }
        if buckets.is_empty() {
            return Err(format!("histogram {family:?} declared but has no _bucket samples"));
        }
        for (key, mut series) in buckets {
            series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut prev = -1.0f64;
            for &(_, v, line) in &series {
                if v < prev {
                    return Err(format!(
                        "line {line}: {bucket_name} counts are not cumulative"
                    ));
                }
                prev = v;
            }
            let (last_le, last_v, _) = *series.last().expect("non-empty");
            if !last_le.is_infinite() {
                return Err(format!(
                    "histogram {family:?} label set {key:?} lacks an le=\"+Inf\" bucket"
                ));
            }
            if let Some(&count) = counts.get(&key) {
                if count != last_v {
                    return Err(format!(
                        "histogram {family:?}: _count {count} != +Inf bucket {last_v}"
                    ));
                }
            } else {
                return Err(format!(
                    "histogram {family:?} label set {key:?} lacks a _count sample"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_full_exposition() {
        let text = "\
# HELP reqs_total requests served\n\
# TYPE reqs_total counter\n\
reqs_total{class=\"fg\"} 10\n\
reqs_total{class=\"bg\"} 3\n\
# TYPE depth gauge\n\
depth -2\n\
# TYPE lat_ns histogram\n\
lat_ns_bucket{le=\"1\"} 1\n\
lat_ns_bucket{le=\"3\"} 4\n\
lat_ns_bucket{le=\"+Inf\"} 5\n\
lat_ns_sum 42\n\
lat_ns_count 5\n";
        validate_exposition(text).unwrap();
    }

    #[test]
    fn accepts_escapes_and_timestamps() {
        let text = "x{a=\"q\\\"uo\\\\te\\n\"} 1.5e3 1700000000\n";
        validate_exposition(text).unwrap();
    }

    #[test]
    fn rejects_grammar_violations() {
        for (bad, why) in [
            ("1metric 3\n", "name starts with a digit"),
            ("m{2l=\"x\"} 3\n", "label starts with a digit"),
            ("m{l=\"x\\q\"} 3\n", "bad escape"),
            ("m{l=\"x\"} many\n", "non-numeric value"),
            ("m{l=\"x\",l=\"y\"} 1\n", "duplicate label"),
            ("m 1 2 3\n", "trailing fields"),
            ("m 1", "missing final newline"),
            ("# TYPE m sideways\nm 1\n", "unknown kind"),
            ("# TYPE m counter\n# TYPE m counter\nm 1\n", "duplicate TYPE"),
            ("m 1\n# TYPE m counter\n", "TYPE after samples"),
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn rejects_histogram_shape_violations() {
        let missing_inf = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 1\n\
h_sum 1\n\
h_count 1\n";
        assert!(validate_exposition(missing_inf).unwrap_err().contains("+Inf"));
        let non_cumulative = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_bucket{le=\"3\"} 2\n\
h_bucket{le=\"+Inf\"} 5\n\
h_sum 1\n\
h_count 5\n";
        assert!(validate_exposition(non_cumulative)
            .unwrap_err()
            .contains("cumulative"));
        let count_mismatch = "\
# TYPE h histogram\n\
h_bucket{le=\"+Inf\"} 5\n\
h_sum 1\n\
h_count 4\n";
        assert!(validate_exposition(count_mismatch)
            .unwrap_err()
            .contains("_count"));
        let no_le = "\
# TYPE h histogram\n\
h_bucket 5\n\
h_count 5\n";
        assert!(validate_exposition(no_le).unwrap_err().contains("le label"));
    }
}
