//! The windowed metric registry and its exporters.
//!
//! A [`MetricsRegistry`] holds named series — counters, gauges, and
//! [`LogHistogram`]s — bucketed into fixed-width windows of one clock
//! domain (virtual cycles for the simulator, virtual nanoseconds for
//! serve/fleet). Everything is integer state in `BTreeMap`s, so every
//! exporter walks a total order and renders byte-identical output
//! regardless of insertion order or worker count; [`MetricsRegistry::merge`]
//! is commutative, which is what makes per-worker registries foldable
//! into one deterministic whole.
//!
//! Series names are Prometheus sample names with optional inline
//! labels, e.g. `tango_fleet_shed_total{reason="slo_infeasible"}`; the
//! *family* is the name up to the first `{`. The Prometheus exporter
//! groups by family and the in-tree checker
//! ([`crate::metrics::validate_exposition`]) verifies the result.

use super::histogram::LogHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The three metric shapes the registry stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone saturating sum of deltas.
    Counter,
    /// Last-writer-wins sample; merge keeps the latest `(ts, value)`.
    Gauge,
    /// A [`LogHistogram`] of observations.
    Histogram,
}

impl MetricKind {
    /// Lower-case label used in text/JSONL/Prometheus output.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Cell {
    Counter(u64),
    Gauge { ts: u64, value: i64 },
    Histogram(Box<LogHistogram>),
}

impl Cell {
    fn merge(&mut self, other: &Cell) {
        match (self, other) {
            (Cell::Counter(a), Cell::Counter(b)) => *a = a.saturating_add(*b),
            (Cell::Gauge { ts, value }, Cell::Gauge { ts: ots, value: ovalue }) => {
                // Latest sample wins; ties break on the larger value so
                // the outcome is independent of merge order.
                if (*ots, *ovalue) > (*ts, *value) {
                    *ts = *ots;
                    *value = *ovalue;
                }
            }
            (Cell::Histogram(a), Cell::Histogram(b)) => a.merge(b),
            _ => unreachable!("kind mismatch is rejected before cell merge"),
        }
    }
}

#[derive(Debug, Clone)]
struct Series {
    kind: MetricKind,
    /// Window index -> per-window cell. Only touched windows exist.
    cells: BTreeMap<u64, Cell>,
    /// Whole-run aggregate across all windows.
    total: Cell,
}

impl Series {
    fn new(kind: MetricKind) -> Series {
        let total = match kind {
            MetricKind::Counter => Cell::Counter(0),
            MetricKind::Gauge => Cell::Gauge { ts: 0, value: 0 },
            MetricKind::Histogram => Cell::Histogram(Box::default()),
        };
        Series {
            kind,
            cells: BTreeMap::new(),
            total,
        }
    }
}

/// A registry of windowed metric series over one clock domain.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    unit: String,
    window: u64,
    series: BTreeMap<String, Series>,
}

impl MetricsRegistry {
    /// Creates an empty registry. `unit` labels the clock ("cycles" or
    /// "ns"); `window` is the window width in that unit (clamped to at
    /// least 1).
    pub fn new(unit: &str, window: u64) -> MetricsRegistry {
        MetricsRegistry {
            unit: unit.to_string(),
            window: window.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The window width, in clock units.
    pub fn window_width(&self) -> u64 {
        self.window
    }

    /// The clock unit label.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The window index `ts` falls into.
    pub fn window_of(&self, ts: u64) -> u64 {
        ts / self.window
    }

    fn cell(&mut self, name: &str, kind: MetricKind, ts: u64) -> &mut Cell {
        let series = self
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(kind));
        assert!(
            series.kind == kind,
            "metric {name:?} is a {}, not a {}",
            series.kind.label(),
            kind.label()
        );
        let w = ts / self.window;
        series.cells.entry(w).or_insert_with(|| match kind {
            MetricKind::Counter => Cell::Counter(0),
            MetricKind::Gauge => Cell::Gauge { ts, value: 0 },
            MetricKind::Histogram => Cell::Histogram(Box::default()),
        })
    }

    /// Adds `delta` to counter `name` in the window containing `ts`.
    ///
    /// # Panics
    ///
    /// Panics when `name` already exists with a different kind — a
    /// metric-name collision is a programming error, not data.
    pub fn counter_add(&mut self, name: &str, ts: u64, delta: u64) {
        if let Cell::Counter(v) = self.cell(name, MetricKind::Counter, ts) {
            *v = v.saturating_add(delta);
        }
        if let Cell::Counter(v) = &mut self.series.get_mut(name).expect("series exists").total {
            *v = v.saturating_add(delta);
        }
    }

    /// Sets gauge `name` to `value` at `ts`. Within a window (and for
    /// the run total) the sample with the largest `(ts, value)` wins.
    ///
    /// # Panics
    ///
    /// Panics when `name` already exists with a different kind.
    pub fn gauge_set(&mut self, name: &str, ts: u64, value: i64) {
        let sample = Cell::Gauge { ts, value };
        self.cell(name, MetricKind::Gauge, ts).merge(&sample);
        self.series.get_mut(name).expect("series exists").total.merge(&sample);
    }

    /// Records one observation of `value` into histogram `name` in the
    /// window containing `ts`.
    ///
    /// # Panics
    ///
    /// Panics when `name` already exists with a different kind.
    pub fn observe(&mut self, name: &str, ts: u64, value: u64) {
        if let Cell::Histogram(h) = self.cell(name, MetricKind::Histogram, ts) {
            h.observe(value);
        }
        if let Cell::Histogram(h) = &mut self.series.get_mut(name).expect("series exists").total {
            h.observe(value);
        }
    }

    /// Folds `other` into `self`. Counters add, histograms merge,
    /// gauges keep the latest sample — all commutative, so merging
    /// per-worker registries in any order yields identical bytes.
    ///
    /// # Errors
    ///
    /// Returns a message when window widths, units, or a shared series'
    /// kind disagree.
    pub fn merge(&mut self, other: &MetricsRegistry) -> Result<(), String> {
        if self.window != other.window {
            return Err(format!(
                "window mismatch: {} vs {}",
                self.window, other.window
            ));
        }
        if self.unit != other.unit {
            return Err(format!("unit mismatch: {:?} vs {:?}", self.unit, other.unit));
        }
        for (name, theirs) in &other.series {
            let mine = self
                .series
                .entry(name.clone())
                .or_insert_with(|| Series::new(theirs.kind));
            if mine.kind != theirs.kind {
                return Err(format!(
                    "metric {name:?} is a {} on one side and a {} on the other",
                    mine.kind.label(),
                    theirs.kind.label()
                ));
            }
            for (w, cell) in &theirs.cells {
                match mine.cells.get_mut(w) {
                    Some(existing) => existing.merge(cell),
                    None => {
                        mine.cells.insert(*w, cell.clone());
                    }
                }
            }
            mine.total.merge(&theirs.total);
        }
        Ok(())
    }

    /// The kind of series `name`, if registered.
    pub fn kind(&self, name: &str) -> Option<MetricKind> {
        self.series.get(name).map(|s| s.kind)
    }

    /// Run-total of counter `name`, if registered as a counter.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        match self.series.get(name)?.total {
            Cell::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Final value of gauge `name`, if registered as a gauge.
    pub fn gauge_last(&self, name: &str) -> Option<i64> {
        match self.series.get(name)?.total {
            Cell::Gauge { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Run-total histogram of `name`, if registered as a histogram.
    pub fn histogram_total(&self, name: &str) -> Option<&LogHistogram> {
        match &self.series.get(name)?.total {
            Cell::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Names of all registered series, in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Range `[first, last]` of touched window indices, or `None` when
    /// the registry is empty.
    pub fn window_range(&self) -> Option<(u64, u64)> {
        let mut range: Option<(u64, u64)> = None;
        for series in self.series.values() {
            let (Some(first), Some(last)) = (
                series.cells.keys().next().copied(),
                series.cells.keys().next_back().copied(),
            ) else {
                continue;
            };
            range = Some(match range {
                None => (first, last),
                Some((lo, hi)) => (lo.min(first), hi.max(last)),
            });
        }
        range
    }

    fn hist_line(h: &LogHistogram) -> String {
        match h.count() {
            0 => "count 0".to_string(),
            _ => format!(
                "count {}  sum {}  p50 {}  p95 {}  p99 {}  max {}",
                h.count(),
                h.sum(),
                h.quantile(500).expect("non-empty"),
                h.quantile(950).expect("non-empty"),
                h.quantile(990).expect("non-empty"),
                LogHistogram::bucket_upper_bound(h.max_bucket().expect("non-empty")),
            ),
        }
    }

    /// Renders the byte-stable plain-text report: one block per series
    /// with its run total and every touched window.
    pub fn render_text(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# tango-metrics: {title}");
        let windows = match self.window_range() {
            Some((lo, hi)) => format!("windows {lo}..={hi}"),
            None => "windows none".to_string(),
        };
        let _ = writeln!(
            out,
            "# unit {}  window_width {}  {}  series {}",
            self.unit,
            self.window,
            windows,
            self.series.len()
        );
        for (name, series) in &self.series {
            let _ = writeln!(out);
            match &series.total {
                Cell::Counter(v) => {
                    let _ = writeln!(out, "counter {name}  total {v}");
                }
                Cell::Gauge { value, .. } => {
                    let _ = writeln!(out, "gauge {name}  last {value}");
                }
                Cell::Histogram(h) => {
                    let _ = writeln!(out, "histogram {name}  {}", Self::hist_line(h));
                }
            }
            for (w, cell) in &series.cells {
                let start = w * self.window;
                match cell {
                    Cell::Counter(v) => {
                        let _ = writeln!(out, "  w{w:<6} start {start:>14}  value {v}");
                    }
                    Cell::Gauge { value, .. } => {
                        let _ = writeln!(out, "  w{w:<6} start {start:>14}  last {value}");
                    }
                    Cell::Histogram(h) => {
                        let _ = writeln!(out, "  w{w:<6} start {start:>14}  {}", Self::hist_line(h));
                    }
                }
            }
        }
        out
    }

    /// Renders the JSONL snapshot series: one JSON object per line, one
    /// line per (series, window) plus one `"window":"total"` line per
    /// series. `tag` names the source run (e.g. `fleet/bursty`).
    pub fn snapshot_jsonl(&self, tag: &str) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            let mut e = String::new();
            for c in s.chars() {
                match c {
                    '"' => e.push_str("\\\""),
                    '\\' => e.push_str("\\\\"),
                    '\n' => e.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(e, "\\u{:04x}", c as u32);
                    }
                    c => e.push(c),
                }
            }
            e
        };
        let tag = esc(tag);
        for (name, series) in &self.series {
            let name_esc = esc(name);
            let head = |w: &str| {
                format!(
                    "{{\"series\":\"{tag}\",\"unit\":\"{}\",\"window_width\":{},\"name\":\"{name_esc}\",\"kind\":\"{}\",\"window\":{w}",
                    self.unit,
                    self.window,
                    series.kind.label()
                )
            };
            let body = |cell: &Cell| match cell {
                Cell::Counter(v) => format!(",\"value\":{v}}}"),
                Cell::Gauge { value, .. } => format!(",\"value\":{value}}}"),
                Cell::Histogram(h) => {
                    let (p50, p95, p99) = match h.count() {
                        0 => (0, 0, 0),
                        _ => (
                            h.quantile(500).expect("non-empty"),
                            h.quantile(950).expect("non-empty"),
                            h.quantile(990).expect("non-empty"),
                        ),
                    };
                    format!(
                        ",\"count\":{},\"sum\":{},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99}}}",
                        h.count(),
                        h.sum()
                    )
                }
            };
            for (w, cell) in &series.cells {
                out.push_str(&head(&w.to_string()));
                let start = w * self.window;
                let _ = write!(out, ",\"start\":{start}");
                out.push_str(&body(cell));
                out.push('\n');
            }
            out.push_str(&head("\"total\""));
            out.push_str(&body(&series.total));
            out.push('\n');
        }
        out
    }

    /// Renders Prometheus text-format exposition of the run totals,
    /// grouped by metric family (the name up to the first `{`).
    /// Histograms expand to cumulative `_bucket{le=...}` samples ending
    /// in `+Inf` plus `_sum`/`_count`. The output passes
    /// [`crate::metrics::validate_exposition`].
    pub fn prometheus_text(&self) -> String {
        // family -> [(label part incl. braces, series)]
        let mut families: BTreeMap<&str, Vec<(&str, &Series)>> = BTreeMap::new();
        for (name, series) in &self.series {
            let (family, labels) = match name.find('{') {
                Some(i) => (&name[..i], &name[i..]),
                None => (name.as_str(), ""),
            };
            families.entry(family).or_default().push((labels, series));
        }
        let mut out = String::new();
        for (family, members) in &families {
            let kind = members[0].1.kind;
            debug_assert!(
                members.iter().all(|(_, s)| s.kind == kind),
                "family {family} mixes metric kinds"
            );
            let _ = writeln!(
                out,
                "# HELP {family} tango deterministic {} over {} windows",
                kind.label(),
                self.unit
            );
            let _ = writeln!(out, "# TYPE {family} {}", kind.label());
            for (labels, series) in members {
                match &series.total {
                    Cell::Counter(v) => {
                        let _ = writeln!(out, "{family}{labels} {v}");
                    }
                    Cell::Gauge { value, .. } => {
                        let _ = writeln!(out, "{family}{labels} {value}");
                    }
                    Cell::Histogram(h) => {
                        // label set with `le` appended.
                        let with_le = |le: &str| match labels.is_empty() {
                            true => format!("{{le=\"{le}\"}}"),
                            false => format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1]),
                        };
                        let mut cum = 0u64;
                        let top = h.max_bucket().unwrap_or(0);
                        for (idx, &c) in h.buckets().iter().enumerate().take(top.min(super::histogram::BUCKETS - 2) + 1) {
                            cum = cum.saturating_add(c);
                            let _ = writeln!(
                                out,
                                "{family}_bucket{} {cum}",
                                with_le(&LogHistogram::bucket_upper_bound(idx).to_string())
                            );
                        }
                        let _ = writeln!(out, "{family}_bucket{} {}", with_le("+Inf"), h.count());
                        let _ = writeln!(out, "{family}_sum{labels} {}", h.sum());
                        let _ = writeln!(out, "{family}_count{labels} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_the_timeline() {
        let mut r = MetricsRegistry::new("ns", 100);
        r.counter_add("reqs_total", 0, 1);
        r.counter_add("reqs_total", 99, 1);
        r.counter_add("reqs_total", 100, 1);
        r.counter_add("reqs_total", 250, 1);
        assert_eq!(r.counter_total("reqs_total"), Some(4));
        assert_eq!(r.window_range(), Some((0, 2)));
        let text = r.render_text("t");
        assert!(text.contains("counter reqs_total  total 4"), "{text}");
        assert!(text.contains("w0      start              0  value 2"), "{text}");
        assert!(text.contains("w2      start            200  value 1"), "{text}");
        // Window 1 (ts 100..200) got one hit; empty windows don't render.
        assert!(text.contains("w1      start            100  value 1"), "{text}");
    }

    #[test]
    fn empty_windows_render_nothing_but_headers() {
        let r = MetricsRegistry::new("cycles", 64);
        let text = r.render_text("empty");
        assert!(text.contains("windows none"), "{text}");
        assert!(text.contains("series 0"), "{text}");
        assert_eq!(r.window_range(), None);
        assert_eq!(r.snapshot_jsonl("x"), "");
        assert_eq!(r.prometheus_text(), "");
    }

    #[test]
    fn gauge_latest_sample_wins_regardless_of_merge_order() {
        let mut a = MetricsRegistry::new("ns", 10);
        let mut b = MetricsRegistry::new("ns", 10);
        a.gauge_set("devices", 5, 3);
        b.gauge_set("devices", 7, 1);
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab.gauge_last("devices"), Some(1), "ts 7 is later");
        assert_eq!(ba.gauge_last("devices"), Some(1));
        assert_eq!(ab.render_text("g"), ba.render_text("g"));
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = MetricsRegistry::new("ns", 10);
        let b = MetricsRegistry::new("ns", 20);
        assert!(a.merge(&b).unwrap_err().contains("window mismatch"));
        let c = MetricsRegistry::new("cycles", 10);
        assert!(a.merge(&c).unwrap_err().contains("unit mismatch"));
        a.counter_add("x", 0, 1);
        let mut d = MetricsRegistry::new("ns", 10);
        d.gauge_set("x", 0, 1);
        assert!(a.merge(&d).unwrap_err().contains("\"x\""));
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_collision_panics() {
        let mut r = MetricsRegistry::new("ns", 10);
        r.counter_add("x", 0, 1);
        r.gauge_set("x", 0, 1);
    }

    #[test]
    fn sharded_merge_equals_serial_ingest() {
        let feed = |r: &mut MetricsRegistry, lo: u64, hi: u64| {
            for i in lo..hi {
                r.counter_add("n_total", i * 7, 1);
                r.observe("lat_ns", i * 7, i * 13 % 5000);
                r.gauge_set("depth", i * 7, (i % 9) as i64);
            }
        };
        let mut serial = MetricsRegistry::new("ns", 100);
        feed(&mut serial, 0, 400);
        // Shard by disjoint time ranges (what per-worker collection does).
        let mut shards: Vec<MetricsRegistry> = Vec::new();
        for k in 0..4 {
            let mut r = MetricsRegistry::new("ns", 100);
            feed(&mut r, k * 100, (k + 1) * 100);
            shards.push(r);
        }
        let mut fwd = MetricsRegistry::new("ns", 100);
        for s in &shards {
            fwd.merge(s).unwrap();
        }
        let mut rev = MetricsRegistry::new("ns", 100);
        for s in shards.iter().rev() {
            rev.merge(s).unwrap();
        }
        assert_eq!(fwd.render_text("s"), serial.render_text("s"));
        assert_eq!(rev.render_text("s"), serial.render_text("s"));
        assert_eq!(fwd.snapshot_jsonl("s"), serial.snapshot_jsonl("s"));
        assert_eq!(fwd.prometheus_text(), serial.prometheus_text());
    }

    #[test]
    fn prometheus_histogram_is_cumulative_and_capped_with_inf() {
        let mut r = MetricsRegistry::new("ns", 100);
        r.observe("lat_ns{class=\"fg\"}", 5, 3);
        r.observe("lat_ns{class=\"fg\"}", 5, 100);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        assert!(text.contains("lat_ns_bucket{class=\"fg\",le=\"3\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{class=\"fg\",le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_ns_sum{class=\"fg\"} 103"), "{text}");
        assert!(text.contains("lat_ns_count{class=\"fg\"} 2"), "{text}");
        crate::metrics::validate_exposition(&text).unwrap();
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let mut r = MetricsRegistry::new("ns", 50);
        r.counter_add("a_total", 10, 2);
        r.observe("h_ns", 10, 99);
        r.gauge_set("g", 10, -4);
        let jsonl = r.snapshot_jsonl("demo/run");
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            crate::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // One windowed line + one total line per series.
        assert_eq!(jsonl.lines().count(), 6);
        assert!(jsonl.contains("\"window\":\"total\""), "{jsonl}");
    }
}
