//! Power-of-two log-bucketed histograms.
//!
//! The metrics layer needs a distribution sketch that is (a) fixed
//! size, (b) mergeable in any order with a deterministic result, and
//! (c) integer-only so rendering is byte-stable. A 65-bucket
//! log2 histogram gives all three: bucket 0 holds exact zeros, bucket
//! `i` (1..=64) holds values in `[2^(i-1), 2^i - 1]`, so any `u64`
//! lands in exactly one bucket and merge is element-wise addition.
//! Quantiles come back as the *upper bound* of the nearest-rank bucket
//! — a deterministic over-estimate, never an interpolated float.

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// A fixed-size log2-bucketed histogram with saturating counters.
///
/// All arithmetic saturates rather than wraps: a histogram that has
/// absorbed `u64::MAX` observations stays at the rail instead of
/// silently restarting, so merges remain monotone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index `value` falls into: 0 for zero, else
    /// `64 - leading_zeros(value)` (so 1 → 1, 2..=3 → 2, 4..=7 → 3, …).
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The largest value bucket `index` can hold: 0, 1, 3, 7, …,
    /// `u64::MAX` for the last bucket.
    ///
    /// # Panics
    ///
    /// Panics when `index >= BUCKETS`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        assert!(index < BUCKETS, "bucket index {index} out of range");
        if index == 0 {
            0
        } else if index == BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation of `value`.
    pub fn observe(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds `other` into `self` (element-wise saturating addition).
    /// Merging is commutative and associative, so any grouping of
    /// partial histograms yields identical bytes.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Nearest-rank quantile as a bucket upper bound (`permille` of
    /// 1000 = the maximum). Returns `None` when the histogram is empty.
    ///
    /// The nearest rank is `ceil(permille * count / 1000)`, clamped to
    /// at least 1; the result is the upper bound of the bucket holding
    /// that rank — a deterministic over-estimate of the true quantile
    /// by at most 2×.
    pub fn quantile(&self, permille: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as u128 * permille as u128).div_ceil(1000) as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(Self::bucket_upper_bound(idx));
            }
        }
        Some(u64::MAX)
    }

    /// Mean observation (integer floor), or `None` when empty. With a
    /// saturated `sum` this is a lower bound, consistent everywhere.
    pub fn mean(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(1023), 10);
        assert_eq!(LogHistogram::bucket_index(1024), 11);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_upper_bound(0), 0);
        assert_eq!(LogHistogram::bucket_upper_bound(1), 1);
        assert_eq!(LogHistogram::bucket_upper_bound(10), 1023);
        assert_eq!(LogHistogram::bucket_upper_bound(BUCKETS - 1), u64::MAX);
        // Every value's bucket upper bound is >= the value.
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 33, u64::MAX] {
            assert!(LogHistogram::bucket_upper_bound(LogHistogram::bucket_index(v)) >= v);
        }
    }

    #[test]
    fn single_sample_quantiles_hit_its_bucket() {
        let mut h = LogHistogram::new();
        h.observe(100); // bucket 7, upper bound 127
        for p in [0, 1, 500, 990, 1000] {
            assert_eq!(h.quantile(p), Some(127), "p{p}");
        }
        assert_eq!(h.mean(), Some(100));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(500), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max_bucket(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.observe(10); // bucket 4, ub 15
        }
        for _ in 0..10 {
            h.observe(1000); // bucket 10, ub 1023
        }
        assert_eq!(h.quantile(500), Some(15));
        assert_eq!(h.quantile(900), Some(15));
        assert_eq!(h.quantile(901), Some(1023));
        assert_eq!(h.quantile(1000), Some(1023));
    }

    #[test]
    fn saturation_holds_at_the_rails() {
        let mut h = LogHistogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.count(), 2);
        let mut a = h.clone();
        a.merge(&h);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets()[64], 4);
    }

    #[test]
    fn merge_is_order_independent() {
        let samples: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(2654435761) % 100_000).collect();
        // One histogram fed serially...
        let mut serial = LogHistogram::new();
        for &s in &samples {
            serial.observe(s);
        }
        // ...versus 4 shards merged in two different orders.
        let shard = |k: usize| {
            let mut h = LogHistogram::new();
            for (i, &s) in samples.iter().enumerate() {
                if i % 4 == k {
                    h.observe(s);
                }
            }
            h
        };
        let shards: Vec<LogHistogram> = (0..4).map(shard).collect();
        let mut fwd = LogHistogram::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = LogHistogram::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, serial);
        assert_eq!(rev, serial);
    }
}
