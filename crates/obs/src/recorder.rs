//! The flight recorder: global gate, per-thread ring buffers, and the
//! virtual-cycle cursor.
//!
//! Recording is a three-step fast path: load one relaxed atomic (the
//! gate), grab the thread's ring behind an uncontended mutex, append.
//! Nothing allocates, formats, or locks when the gate is off — call
//! sites that build dynamic names should themselves branch on
//! [`is_enabled`] first.
//!
//! Rings are *bounded*: when a ring is full the oldest event is dropped
//! and counted, so a long run degrades into a flight recorder of the
//! most recent window instead of growing without bound.

use crate::event::{Domain, Event, Phase};
use crate::trace::Trace;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAP: AtomicUsize = AtomicUsize::new(crate::env::DEFAULT_EVENT_CAP);
static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static HOST_EPOCH: OnceLock<Instant> = OnceLock::new();

#[derive(Debug)]
struct Ring {
    tid: u32,
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

struct Local {
    ring: Arc<Mutex<Ring>>,
    tid: u32,
    epoch: u64,
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
    static VCURSOR: Cell<u64> = const { Cell::new(0) };
}

/// Turns recording on with a per-thread ring capacity of `cap` events
/// (clamped to at least 1). Existing rings keep their events; their
/// capacity is refreshed lazily on each thread's next append.
pub fn enable(cap: usize) {
    CAP.store(cap.max(1), Ordering::Relaxed);
    EPOCH.fetch_add(1, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Release);
}

/// Turns recording off. Buffered events stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether recording is on. One relaxed load — the gate every recording
/// call (and every call site building a dynamic name) checks first.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Monotonic nanoseconds since the first host-clock observation of the
/// process (the host-domain timestamp base).
pub fn host_now_ns() -> u64 {
    HOST_EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// This thread's virtual-cycle cursor.
pub fn virtual_now() -> u64 {
    VCURSOR.with(|c| c.get())
}

/// Advances this thread's virtual cursor by `cycles` (a retired launch).
pub fn advance_virtual(cycles: u64) {
    VCURSOR.with(|c| c.set(c.get().saturating_add(cycles)));
}

/// This thread's track id, if it has recorded anything yet.
pub fn current_tid() -> Option<u32> {
    LOCAL.with(|l| l.borrow().as_ref().map(|local| local.tid))
}

/// Resets this thread's state for a fresh deterministic recording:
/// clears its ring and drop count and zeroes the virtual cursor. The
/// thread keeps its track id, so repeated traced runs on one thread
/// produce byte-identical event streams.
pub fn reset_current_thread() {
    VCURSOR.with(|c| c.set(0));
    LOCAL.with(|l| {
        if let Some(local) = l.borrow().as_ref() {
            let mut ring = local.ring.lock().expect("obs ring lock");
            ring.events.clear();
            ring.dropped = 0;
        }
    });
}

/// Runs `f` with this thread's ring (allocating and registering it on
/// first use), passing the thread's track id.
fn with_local<R>(f: impl FnOnce(u32, &mut Ring) -> R) -> R {
    LOCAL.with(|l| {
        let mut slot = l.borrow_mut();
        let epoch = EPOCH.load(Ordering::Relaxed);
        let local = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Mutex::new(Ring {
                tid,
                cap: CAP.load(Ordering::Relaxed),
                events: VecDeque::new(),
                dropped: 0,
            }));
            REGISTRY.lock().expect("obs registry lock").push(Arc::clone(&ring));
            Local { ring, tid, epoch }
        });
        let mut ring = local.ring.lock().expect("obs ring lock");
        if local.epoch != epoch {
            ring.cap = CAP.load(Ordering::Relaxed);
            local.epoch = epoch;
        }
        f(local.tid, &mut ring)
    })
}

/// Appends `event` to this thread's ring exactly as given (the caller
/// chose the logical `tid` — engine events use device/queue tracks).
/// No-op when disabled. Most call sites want the typed helpers
/// ([`vspan`], [`vcounter`], [`engine_span_at`], ...) instead.
pub fn emit(event: Event) {
    if !is_enabled() {
        return;
    }
    with_local(|_, ring| ring.push(event));
}

/// Appends an event on this thread's own track.
fn thread_event(domain: Domain, ts: u64, phase: Phase, cat: &'static str, name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    with_local(|tid, ring| {
        ring.push(Event {
            domain,
            tid,
            ts,
            phase,
            cat,
            name: name.to_string(),
            value,
        });
    });
}

/// Collects every thread's buffered events into a [`Trace`], emptying
/// the rings (recording continues if still enabled). Tracks are ordered
/// by track id; events within a track keep append order, which is
/// chronological (every clock is monotonic per track).
pub fn drain() -> Trace {
    let registry = REGISTRY.lock().expect("obs registry lock");
    let mut rings: Vec<&Arc<Mutex<Ring>>> = registry.iter().collect();
    rings.sort_by_key(|r| r.lock().expect("obs ring lock").tid);
    let mut events = Vec::new();
    let mut dropped = 0;
    let mut dropped_by_track = Vec::new();
    for ring in rings {
        let mut ring = ring.lock().expect("obs ring lock");
        if ring.dropped > 0 {
            dropped_by_track.push((ring.tid, ring.dropped));
        }
        dropped += ring.dropped;
        ring.dropped = 0;
        events.extend(ring.events.drain(..));
    }
    Trace {
        events,
        dropped,
        dropped_by_track,
    }
}

/// An RAII span: emits its `End` event (at the domain's current clock)
/// when dropped. Inert when recording was disabled at construction.
#[must_use = "a span guard ends its span when dropped"]
pub struct SpanGuard {
    open: Option<(Domain, &'static str, String)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((domain, cat, name)) = self.open.take() {
            let ts = match domain {
                Domain::Virtual => virtual_now(),
                Domain::Host => host_now_ns(),
                Domain::Engine | Domain::Fleet => {
                    unreachable!("engine/fleet spans are stamped explicitly")
                }
            };
            thread_event(domain, ts, Phase::End, cat, &name, 0);
        }
    }
}

fn span(domain: Domain, ts: u64, cat: &'static str, name: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { open: None };
    }
    thread_event(domain, ts, Phase::Begin, cat, name, 0);
    SpanGuard {
        open: Some((domain, cat, name.to_string())),
    }
}

/// Opens a virtual-cycle span at the current cursor; the guard closes
/// it at the cursor's position when dropped.
pub fn vspan(cat: &'static str, name: &str) -> SpanGuard {
    span(Domain::Virtual, virtual_now(), cat, name)
}

/// Opens a host-clock span now; the guard closes it when dropped.
pub fn hspan(cat: &'static str, name: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { open: None };
    }
    span(Domain::Host, host_now_ns(), cat, name)
}

/// Emits a bare virtual span begin (no guard) at the current cursor —
/// for spans whose end timestamp is computed, like kernel launches
/// closed by [`vspan_end_at`].
pub fn vspan_begin(cat: &'static str, name: &str) {
    thread_event(Domain::Virtual, virtual_now(), Phase::Begin, cat, name, 0);
}

/// Closes a span opened by [`vspan_begin`] at the explicit cycle `ts`.
pub fn vspan_end_at(ts: u64, cat: &'static str, name: &str) {
    thread_event(Domain::Virtual, ts, Phase::End, cat, name, 0);
}

/// Counter sample at the current virtual cursor.
pub fn vcounter(cat: &'static str, name: &str, value: i64) {
    thread_event(Domain::Virtual, virtual_now(), Phase::Counter, cat, name, value);
}

/// Counter sample at an explicit virtual cycle (mid-launch gauges).
pub fn vcounter_at(ts: u64, cat: &'static str, name: &str, value: i64) {
    thread_event(Domain::Virtual, ts, Phase::Counter, cat, name, value);
}

/// Instant marker at the current virtual cursor.
pub fn vinstant(cat: &'static str, name: &str) {
    thread_event(Domain::Virtual, virtual_now(), Phase::Instant, cat, name, 0);
}

/// Host-clock counter sample (store hit totals, queue depths).
pub fn hcounter(cat: &'static str, name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    thread_event(Domain::Host, host_now_ns(), Phase::Counter, cat, name, value);
}

/// Host-clock instant marker.
pub fn hinstant(cat: &'static str, name: &str) {
    if !is_enabled() {
        return;
    }
    thread_event(Domain::Host, host_now_ns(), Phase::Instant, cat, name, 0);
}

/// A complete engine-clock span `[begin_ts, end_ts]` on logical track
/// `tid` (a device, in practice). Emitted as a B/E pair.
pub fn engine_span_at(begin_ts: u64, end_ts: u64, tid: u32, cat: &'static str, name: &str) {
    if !is_enabled() {
        return;
    }
    emit(Event {
        domain: Domain::Engine,
        tid,
        ts: begin_ts,
        phase: Phase::Begin,
        cat,
        name: name.to_string(),
        value: 0,
    });
    emit(Event {
        domain: Domain::Engine,
        tid,
        ts: end_ts,
        phase: Phase::End,
        cat,
        name: name.to_string(),
        value: 0,
    });
}

/// Engine-clock counter sample on logical track `tid`.
pub fn engine_counter_at(ts: u64, tid: u32, cat: &'static str, name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    emit(Event {
        domain: Domain::Engine,
        tid,
        ts,
        phase: Phase::Counter,
        cat,
        name: name.to_string(),
        value,
    });
}

/// Engine-clock instant marker on logical track `tid`.
pub fn engine_instant_at(ts: u64, tid: u32, cat: &'static str, name: &str) {
    if !is_enabled() {
        return;
    }
    emit(Event {
        domain: Domain::Engine,
        tid,
        ts,
        phase: Phase::Instant,
        cat,
        name: name.to_string(),
        value: 0,
    });
}

/// Opens an engine-clock async span (request lifecycles; may overlap).
pub fn engine_async_begin(ts: u64, tid: u32, cat: &'static str, name: &str, id: u64) {
    if !is_enabled() {
        return;
    }
    emit(Event {
        domain: Domain::Engine,
        tid,
        ts,
        phase: Phase::AsyncBegin,
        cat,
        name: name.to_string(),
        value: id as i64,
    });
}

/// Closes an engine-clock async span by id.
pub fn engine_async_end(ts: u64, tid: u32, cat: &'static str, name: &str, id: u64) {
    if !is_enabled() {
        return;
    }
    emit(Event {
        domain: Domain::Engine,
        tid,
        ts,
        phase: Phase::AsyncEnd,
        cat,
        name: name.to_string(),
        value: id as i64,
    });
}

/// A complete fleet-clock span `[begin_ts, end_ts]` (nanoseconds) on
/// logical track `tid` (a per-pool device track, in practice).
pub fn fleet_span_at(begin_ts: u64, end_ts: u64, tid: u32, cat: &'static str, name: &str) {
    if !is_enabled() {
        return;
    }
    emit(Event {
        domain: Domain::Fleet,
        tid,
        ts: begin_ts,
        phase: Phase::Begin,
        cat,
        name: name.to_string(),
        value: 0,
    });
    emit(Event {
        domain: Domain::Fleet,
        tid,
        ts: end_ts,
        phase: Phase::End,
        cat,
        name: name.to_string(),
        value: 0,
    });
}

/// Fleet-clock counter sample on logical track `tid` (queue depths,
/// pool sizes, shed totals).
pub fn fleet_counter_at(ts: u64, tid: u32, cat: &'static str, name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    emit(Event {
        domain: Domain::Fleet,
        tid,
        ts,
        phase: Phase::Counter,
        cat,
        name: name.to_string(),
        value,
    });
}

/// Fleet-clock instant marker on logical track `tid` (sheds, scale
/// events).
pub fn fleet_instant_at(ts: u64, tid: u32, cat: &'static str, name: &str) {
    if !is_enabled() {
        return;
    }
    emit(Event {
        domain: Domain::Fleet,
        tid,
        ts,
        phase: Phase::Instant,
        cat,
        name: name.to_string(),
        value: 0,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Recorder state is process-global; tests that record serialize
    // here and drain fully before releasing, so they never see each
    // other's events.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn own_events(trace: &Trace) -> Vec<&Event> {
        let tid = current_tid().expect("thread has recorded");
        trace.events.iter().filter(|e| e.tid == tid).collect()
    }

    #[test]
    fn disabled_recording_is_silent() {
        let _g = lock();
        disable();
        reset_current_thread();
        {
            let _s = vspan("test", "ignored");
            vcounter("test", "ignored", 1);
            advance_virtual(10);
        }
        enable(64);
        let trace = drain();
        if current_tid().is_some() {
            assert!(own_events(&trace).is_empty());
        }
        disable();
    }

    #[test]
    fn rings_drop_oldest_and_count() {
        let _g = lock();
        enable(4);
        reset_current_thread();
        for i in 0..6 {
            vcounter("test", "n", i);
        }
        let trace = drain();
        let mine = own_events(&trace);
        assert_eq!(mine.len(), 4);
        // Newest events win: the first two samples were dropped.
        assert_eq!(mine[0].value, 2);
        assert_eq!(mine[3].value, 5);
        assert!(trace.dropped >= 2);
        // The drop is attributed to this thread's ring, by track id.
        let tid = current_tid().expect("recorded");
        assert!(
            trace.dropped_by_track.iter().any(|&(t, d)| t == tid && d >= 2),
            "{:?}",
            trace.dropped_by_track
        );
        // Attribution totals match the aggregate count.
        let sum: u64 = trace.dropped_by_track.iter().map(|&(_, d)| d).sum();
        assert_eq!(sum, trace.dropped);
        // And it shows up in the rendered summary.
        let summary = trace.text_summary();
        assert!(
            summary.contains(&format!("track {tid}: ")) && summary.contains("events dropped"),
            "{summary}"
        );
        disable();
    }

    #[test]
    fn guards_nest_and_advance_virtual_time() {
        let _g = lock();
        enable(64);
        reset_current_thread();
        {
            let _outer = vspan("test.outer", "o");
            advance_virtual(100);
            {
                let _inner = vspan("test.inner", "i");
                advance_virtual(40);
            }
            advance_virtual(10);
        }
        let trace = drain();
        trace.check_nesting().unwrap();
        assert_eq!(trace.span_cycles("test.outer"), 150);
        assert_eq!(trace.span_cycles("test.inner"), 40);
        assert_eq!(virtual_now(), 150);
        disable();
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let _g = lock();
        enable(256);
        let run = || {
            reset_current_thread();
            let _span = vspan("test.run", "body");
            advance_virtual(42);
            vcounter("test.run", "samples", 3);
            vinstant("test.run", "mark");
            drop(_span);
            let trace = drain();
            let tid = current_tid().expect("recorded");
            let events: Vec<Event> = trace.events.into_iter().filter(|e| e.tid == tid).collect();
            Trace {
                events,
                dropped: trace.dropped,
                dropped_by_track: trace.dropped_by_track,
            }
        };
        let first = run();
        let second = run();
        assert_eq!(first.chrome_json(), second.chrome_json());
        assert!(!first.is_empty());
        disable();
    }

    #[test]
    fn tid_is_stable_across_enable_epochs() {
        let _g = lock();
        enable(16);
        vinstant("test", "a");
        let before = current_tid().expect("recorded");
        disable();
        enable(32);
        vinstant("test", "b");
        assert_eq!(current_tid(), Some(before));
        drain();
        disable();
    }

    #[test]
    fn engine_events_keep_their_logical_track() {
        let _g = lock();
        enable(64);
        reset_current_thread();
        engine_span_at(5, 900, 2, "test.batch", "b0");
        engine_counter_at(6, 2, "test.queue", "depth", 3);
        engine_async_begin(1, 2, "test.req", "r", 17);
        engine_async_end(9, 2, "test.req", "r", 17);
        let trace = drain();
        trace.check_nesting().unwrap();
        let batch: Vec<&Event> = trace.events.iter().filter(|e| e.cat == "test.batch").collect();
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|e| e.tid == 2 && e.domain == Domain::Engine));
        assert_eq!(trace.span_cycles("test.batch"), 895);
        disable();
    }
}
