//! The event model: everything a flight recorder stores.

use std::fmt;

/// Which clock an event's timestamp belongs to.
///
/// Chrome trace export maps each domain to its own process (`pid`), so
/// virtual cycles and host nanoseconds never share a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Simulator virtual cycles (the per-thread virtual cursor).
    Virtual,
    /// Serving-engine virtual cycles (explicitly stamped).
    Engine,
    /// Fleet-simulation virtual nanoseconds (explicitly stamped). The
    /// fleet mixes devices with different clocks, so its timeline is
    /// wall-normalized: per-pool device and queue tracks live here.
    Fleet,
    /// Host monotonic nanoseconds since trace start.
    Host,
}

impl Domain {
    /// All domains, in export order.
    pub const ALL: [Domain; 4] = [Domain::Virtual, Domain::Engine, Domain::Fleet, Domain::Host];

    /// The Chrome trace `pid` this domain exports under.
    pub fn pid(self) -> u32 {
        match self {
            Domain::Virtual => 0,
            Domain::Engine => 1,
            Domain::Fleet => 3,
            Domain::Host => 2,
        }
    }

    /// Human label used for Chrome process names and the text summary.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Virtual => "virtual (cycles)",
            Domain::Engine => "engine (cycles)",
            Domain::Fleet => "fleet (ns)",
            Domain::Host => "host (ns)",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of event this is (a subset of the Chrome trace phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Span begin (`ph: "B"`). Must nest: the matching [`Phase::End`]
    /// closes the most recently opened span on the same track.
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// Counter / gauge sample (`ph: "C"`); `value` is the sample.
    Counter,
    /// Instantaneous marker (`ph: "i"`).
    Instant,
    /// Async span begin (`ph: "b"`); `value` is the async id. Async
    /// spans may overlap on a track (request lifecycles).
    AsyncBegin,
    /// Async span end (`ph: "e"`); `value` is the async id.
    AsyncEnd,
}

impl Phase {
    /// The Chrome trace `ph` string.
    pub fn chrome(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Counter => "C",
            Phase::Instant => "i",
            Phase::AsyncBegin => "b",
            Phase::AsyncEnd => "e",
        }
    }
}

/// One recorded observation.
///
/// Events are appended in program order per thread, and every clock in
/// use is monotonic per track, so a drained track is already in
/// timeline order — no sorting happens anywhere, which is part of what
/// keeps enabled traces byte-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Clock domain of `ts`.
    pub domain: Domain,
    /// Logical track (thread for `Virtual`/`Host`; device or queue for
    /// `Engine`).
    pub tid: u32,
    /// Timestamp in the domain's unit (cycles or nanoseconds).
    pub ts: u64,
    /// Event kind.
    pub phase: Phase,
    /// Category (`sim.launch`, `net.layer`, `harness.job`, ...).
    pub cat: &'static str,
    /// Event name (kernel, layer, network, counter name).
    pub name: String,
    /// Counter sample or async id; 0 otherwise.
    pub value: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_have_distinct_pids() {
        let mut pids: Vec<u32> = Domain::ALL.iter().map(|d| d.pid()).collect();
        assert_eq!(pids, vec![0, 1, 3, 2]);
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), Domain::ALL.len(), "pids must be distinct");
    }

    #[test]
    fn phases_map_to_chrome_strings() {
        assert_eq!(Phase::Begin.chrome(), "B");
        assert_eq!(Phase::End.chrome(), "E");
        assert_eq!(Phase::Counter.chrome(), "C");
        assert_eq!(Phase::Instant.chrome(), "i");
        assert_eq!(Phase::AsyncBegin.chrome(), "b");
        assert_eq!(Phase::AsyncEnd.chrome(), "e");
    }
}
