//! AlexNet: five convolutions (conv2/4/5 grouped in two halves, as the
//! paper's Table III shows with its `Conv 2-1/2-2` kernel pairs), two LRN
//! layers, three pools, and three fully-connected layers run one thread
//! per block — the configuration behind the paper's FC observations.

use crate::builder::NetBuilder;
use crate::layer::LayerType;
use crate::network::{Network, NetworkKind, Preset};
use crate::Result;
use tango_kernels::Conv2d;
use tango_sim::Gpu;

struct Dims {
    input: u32,
    c1: u32,
    c2: u32,
    c3: u32,
    c4: u32,
    c5: u32,
    fc: u32,
    classes: u32,
}

fn dims(preset: Preset) -> Dims {
    match preset {
        Preset::Paper => Dims {
            input: 227,
            c1: 96,
            c2: 256,
            c3: 384,
            c4: 384,
            c5: 256,
            fc: 4096,
            classes: 1000,
        },
        Preset::Bench => Dims {
            input: 115,
            c1: 24,
            c2: 64,
            c3: 96,
            c4: 96,
            c5: 64,
            fc: 512,
            classes: 250,
        },
        Preset::Tiny => Dims {
            input: 43,
            c1: 8,
            c2: 16,
            c3: 24,
            c4: 24,
            c5: 16,
            fc: 64,
            classes: 20,
        },
    }
}

/// Emits a two-group convolution: each half of the input channels feeds
/// half of the output channels, as two kernels named `<name>_1`/`<name>_2`
/// (the paper's `Conv 2-1` / `Conv 2-2`).
#[allow(clippy::too_many_arguments)]
fn grouped_conv(
    b: &mut NetBuilder<'_>,
    name: &str,
    c_out: u32,
    k: u32,
    pad: u32,
    relu: bool,
    out_pad: u32,
) -> Result<()> {
    let input = b.cur();
    let half_in = input.channels() / 2;
    let half_out = c_out / 2;
    let kernel = Conv2d::new(half_in, input.height(), input.width(), half_out, k, k, 1, pad, relu)?;
    let output = b.alloc(c_out, kernel.h_out(), kernel.w_out(), out_pad);
    for g in 0..2u32 {
        let in_slice = input.channel_slice(g * half_in, half_in);
        let out_slice = output.channel_slice(g * half_out, half_out);
        b.conv_between(&format!("{name}_{}", g + 1), LayerType::Conv, &kernel, in_slice, out_slice)?;
    }
    b.set_cur(output);
    Ok(())
}

/// Builds AlexNet at `preset` scale with deterministic synthetic weights.
///
/// # Errors
///
/// Propagates kernel-construction failures (dimension-table bugs).
pub fn build(gpu: &mut Gpu, preset: Preset, seed: u64) -> Result<Network> {
    let d = dims(preset);
    let mut b = NetBuilder::image_input(gpu, seed, 3, d.input, d.input, 0);
    b.conv("conv1", LayerType::Conv, d.c1, 11, 4, 0, true, 0)?;
    b.lrn("norm1", 0)?;
    b.max_pool("pool1", 3, 2, 2)?;
    grouped_conv(&mut b, "conv2", d.c2, 5, 2, true, 0)?;
    b.lrn("norm2", 0)?;
    b.max_pool("pool2", 3, 2, 1)?;
    b.conv("conv3", LayerType::Conv, d.c3, 3, 1, 1, true, 1)?;
    grouped_conv(&mut b, "conv4", d.c4, 3, 1, true, 1)?;
    grouped_conv(&mut b, "conv5", d.c5, 3, 1, true, 0)?;
    b.max_pool("pool5", 3, 2, 0)?;
    // The paper launches AlexNet's FC layers as (N,1,1) grids of
    // single-thread blocks.
    b.fc("fc6", d.fc, 1, true)?;
    b.fc("fc7", d.fc, 1, true)?;
    b.fc("fc8", d.classes, 1, false)?;
    b.softmax("softmax")?;
    Ok(b.finish(NetworkKind::AlexNet, preset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkInput;
    use tango_sim::{GpuConfig, SimOptions};
    use tango_tensor::{Shape, SplitMix64, Tensor};

    #[test]
    fn paper_preset_has_published_geometry() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Paper, 1).unwrap();
        // conv1 + 2x(conv2,conv4,conv5) + conv3 = 8 conv kernels.
        let convs = net.layers().iter().filter(|l| l.layer_type() == LayerType::Conv).count();
        assert_eq!(convs, 8);
        let fcs: Vec<_> = net.layers().iter().filter(|l| l.layer_type() == LayerType::Fc).collect();
        assert_eq!(fcs.len(), 3);
        // Table III: FC layers run as (4096,1,1) grids of (1,1,1) blocks.
        assert_eq!(fcs[0].kernel().grid().x, 4096);
        assert_eq!(fcs[0].kernel().block().count(), 1);
        // conv1 covers 96 channels of 55x55 output.
        let conv1 = &net.layers()[0];
        assert_eq!(conv1.kernel().grid().x, 96);
        assert_eq!(conv1.kernel().total_threads(), 96 * 4 * (32 * 32) as u64);
        // ~60M parameters (float) like the published model.
        let params = net.weight_bytes() / 4;
        assert!((55_000_000..70_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn tiny_inference_runs_and_classifies() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Tiny, 2).unwrap();
        let mut rng = SplitMix64::new(20);
        let image = Tensor::uniform(Shape::nchw(1, 3, 43, 43), 0.0, 1.0, &mut rng);
        let report = net
            .infer(&mut gpu, &NetworkInput::Image(image), &SimOptions::new())
            .unwrap();
        let sum: f32 = report.output.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
        // Grouped layers appear as two records with the same stats shape.
        assert!(report.records.iter().any(|r| r.name == "conv2_1"));
        assert!(report.records.iter().any(|r| r.name == "conv2_2"));
    }
}
