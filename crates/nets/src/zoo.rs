//! The model zoo: per-network metadata (the paper's Table I) and the
//! build/input dispatch used by the characterization harness.

use crate::network::{InputSpec, Network, NetworkInput, NetworkKind, Preset};
use crate::{alexnet, cifarnet, mobilenet, resnet, rnn, squeezenet, vggnet, Result};
use tango_sim::Gpu;
use tango_tensor::{Shape, SplitMix64, Tensor};

/// One row of the paper's Table I: what each network consumes, which
/// pre-trained model the paper used (and what this reproduction
/// substitutes), and what it produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelInfo {
    /// The network.
    pub kind: NetworkKind,
    /// Input data description.
    pub input: &'static str,
    /// Pre-trained model the paper used.
    pub paper_model: &'static str,
    /// What this reproduction substitutes for it.
    pub substitute: &'static str,
    /// Output description.
    pub output: &'static str,
}

/// The Table I metadata for every network.
pub fn model_info(kind: NetworkKind) -> ModelInfo {
    match kind {
        NetworkKind::Gru => ModelInfo {
            kind,
            input: "Bitcoin stock price values of past two days (scaled)",
            paper_model: "Trained on kaggle.com/team-ai/bitcoin-price-prediction",
            substitute: "Deterministic synthetic weights (seeded Xavier), identical shapes",
            output: "Projected next stock price",
        },
        NetworkKind::Lstm => ModelInfo {
            kind,
            input: "Bitcoin stock price values of past two days (scaled)",
            paper_model: "Trained on kaggle.com/team-ai/bitcoin-price-prediction",
            substitute: "Deterministic synthetic weights (seeded Xavier), identical shapes",
            output: "Projected next stock price",
        },
        NetworkKind::CifarNet => ModelInfo {
            kind,
            input: "Speed limit 35 image (3x32x32)",
            paper_model: "github.com/chethankeshava/DeepLearningProject",
            substitute: "Deterministic synthetic weights, 9 output classes",
            output: "Confidence level for all 9 classes",
        },
        NetworkKind::AlexNet => ModelInfo {
            kind,
            input: "Cat image (3x227x227)",
            paper_model: "BVLC Caffe bvlc_alexnet",
            substitute: "Deterministic synthetic weights, identical layer shapes",
            output: "Recognized class id",
        },
        NetworkKind::SqueezeNet => ModelInfo {
            kind,
            input: "Cat image (3x227x227)",
            paper_model: "DeepScale SqueezeNet v1.0",
            substitute: "Deterministic synthetic weights, identical layer shapes",
            output: "Recognized class id",
        },
        NetworkKind::ResNet50 => ModelInfo {
            kind,
            input: "Cat image (3x224x224)",
            paper_model: "KaimingHe deep-residual-networks (ResNet-50)",
            substitute: "Deterministic synthetic weights, identical layer shapes",
            output: "Recognized class id",
        },
        NetworkKind::MobileNet => ModelInfo {
            kind,
            input: "Cat image (3x224x224)",
            paper_model: "Announced as in development in the paper (Section III)",
            substitute: "MobileNet v1 with deterministic synthetic weights",
            output: "Recognized class id",
        },
        NetworkKind::VggNet16 => ModelInfo {
            kind,
            input: "Killer whale image (3x224x224)",
            paper_model: "robots.ox.ac.uk/~vgg/research/very_deep (VGG-16)",
            substitute: "Deterministic synthetic weights, identical layer shapes",
            output: "Recognized class id",
        },
    }
}

/// Builds any of the seven networks on `gpu`.
///
/// # Errors
///
/// Propagates kernel-construction failures.
pub fn build_network(gpu: &mut Gpu, kind: NetworkKind, preset: Preset, seed: u64) -> Result<Network> {
    match kind {
        NetworkKind::CifarNet => cifarnet::build(gpu, preset, seed),
        NetworkKind::AlexNet => alexnet::build(gpu, preset, seed),
        NetworkKind::SqueezeNet => squeezenet::build(gpu, preset, seed),
        NetworkKind::ResNet50 => resnet::build(gpu, preset, seed),
        NetworkKind::VggNet16 => vggnet::build(gpu, preset, seed),
        NetworkKind::Gru => rnn::build_gru(gpu, preset, seed),
        NetworkKind::Lstm => rnn::build_lstm(gpu, preset, seed),
        NetworkKind::MobileNet => mobilenet::build(gpu, preset, seed),
    }
}

/// Generates a deterministic synthetic input matching `spec`: an
/// image-like tensor with smooth spatial structure, or a price window for
/// the forecasters.
pub fn synthetic_input(spec: InputSpec, seed: u64) -> NetworkInput {
    match spec {
        InputSpec::Image { c, h, w } => {
            let mut rng = SplitMix64::new(seed);
            // Smooth gradients plus noise: image-like value locality, so
            // cache behaviour resembles a photograph rather than white
            // noise (values do not affect timing, but keep demos sane).
            let (cf, hf, wf) = (c as usize, h as usize, w as usize);
            let data: Vec<f32> = (0..cf * hf * wf)
                .map(|i| {
                    let y = (i / wf) % hf;
                    let x = i % wf;
                    let base = 0.5 + 0.3 * ((x as f32 / wf as f32) - 0.5) + 0.2 * ((y as f32 / hf as f32) - 0.5);
                    (base + rng.uniform(-0.1, 0.1)).clamp(0.0, 1.0)
                })
                .collect();
            NetworkInput::Image(Tensor::from_vec(Shape::nchw(1, cf, hf, wf), data))
        }
        InputSpec::Sequence { len, .. } => NetworkInput::Sequence(rnn::synthetic_price_window(len as usize, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_sim::{GpuConfig, SimOptions};

    #[test]
    fn every_network_has_table_i_metadata() {
        for kind in NetworkKind::ALL {
            let info = model_info(kind);
            assert_eq!(info.kind, kind);
            assert!(!info.input.is_empty());
            assert!(!info.paper_model.is_empty());
        }
    }

    #[test]
    fn all_seven_networks_build_and_infer_at_tiny_scale() {
        for kind in NetworkKind::EXTENDED {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let net = build_network(&mut gpu, kind, Preset::Tiny, 7).unwrap_or_else(|e| panic!("{kind}: {e}"));
            let input = synthetic_input(net.input_spec(), 7);
            let report = net
                .infer(&mut gpu, &input, &SimOptions::new())
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(report.total_cycles() > 0, "{kind}");
            assert!(report.output.as_slice().iter().all(|v| v.is_finite()), "{kind}");
        }
    }

    #[test]
    fn batched_inference_matches_single_and_costs_sublinearly() {
        let kind = NetworkKind::Gru;
        let single = {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let net = build_network(&mut gpu, kind, Preset::Tiny, 7).unwrap();
            let input = synthetic_input(net.input_spec(), 7);
            net.infer(&mut gpu, &input, &SimOptions::new()).unwrap()
        };
        let batched = {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let net = build_network(&mut gpu, kind, Preset::Tiny, 7).unwrap();
            let input = synthetic_input(net.input_spec(), 7);
            let inputs = vec![input; 4];
            net.infer_batch(&mut gpu, &inputs, &SimOptions::new()).unwrap()
        };
        assert_eq!(single.output, batched.output, "batching must not change the output");
        assert!(batched.total_cycles() > 0);
        // Tiny GRU grids are far below one machine wave; batching 4x must
        // cost well under 4x.
        assert!(
            batched.total_cycles() < 4 * single.total_cycles(),
            "batch-4 cycles {} should be under 4x single {}",
            batched.total_cycles(),
            single.total_cycles()
        );
    }

    #[test]
    fn batched_inference_rejects_bad_batches() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_network(&mut gpu, NetworkKind::Gru, Preset::Tiny, 7).unwrap();
        let err = net.infer_batch(&mut gpu, &[], &SimOptions::new()).unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
        let a = synthetic_input(net.input_spec(), 7);
        let b = synthetic_input(net.input_spec(), 8);
        let err = net
            .infer_batch(&mut gpu, &[a.clone(), b], &SimOptions::new())
            .unwrap_err();
        assert!(err.to_string().contains("homogeneous"), "{err}");
        // A homogeneous pair is fine.
        net.infer_batch(&mut gpu, &[a.clone(), a], &SimOptions::new()).unwrap();
    }

    #[test]
    fn synthetic_inputs_match_specs() {
        let img = synthetic_input(InputSpec::Image { c: 3, h: 8, w: 8 }, 1);
        match img {
            NetworkInput::Image(t) => assert_eq!(t.shape().dims(), &[1, 3, 8, 8]),
            _ => panic!("expected image"),
        }
        let seq = synthetic_input(InputSpec::Sequence { len: 2, dim: 1 }, 1);
        match seq {
            NetworkInput::Sequence(v) => assert_eq!(v.len(), 2),
            _ => panic!("expected sequence"),
        }
    }
}
