//! The GRU and LSTM forecasters: a 100-unit recurrent layer unrolled over
//! a short price history (the paper's Bitcoin model consumes the past two
//! days), followed by a one-output fully-connected regressor.

use crate::builder::NetBuilder;
use crate::layer::{LayerType, Op};
use crate::network::{Network, NetworkKind, Preset};
use crate::Result;
use tango_isa::Dim3;
use tango_kernels::{GruDeviceWeights, GruStep, LstmDeviceWeights, LstmStep};
use tango_sim::Gpu;
use tango_tensor::{Shape, SplitMix64, Tensor};

/// Sequence length: the paper's models look at the past two days.
pub const SEQ_LEN: u32 = 2;

/// Per-step input width: one (scaled) closing price.
pub const INPUT_DIM: u32 = 1;

fn hidden(preset: Preset) -> u32 {
    match preset {
        Preset::Paper | Preset::Bench => 100,
        Preset::Tiny => 16,
    }
}

fn gru_block(hidden: u32) -> Dim3 {
    // The paper arranges the GRU's 100 threads as a 10x10 block.
    match hidden {
        100 => Dim3::xy(10, 10),
        16 => Dim3::xy(4, 4),
        other => Dim3::x(other),
    }
}

/// Builds the GRU forecaster.
///
/// # Errors
///
/// Propagates kernel-construction failures (dimension-table bugs).
pub fn build_gru(gpu: &mut Gpu, preset: Preset, seed: u64) -> Result<Network> {
    let h = hidden(preset);
    let step = GruStep::new(INPUT_DIM, h, gru_block(h))?;
    let mut b = NetBuilder::image_input(gpu, seed, 1, 1, INPUT_DIM, 0);
    let x0 = b.cur();
    let mut slots = vec![x0];
    for _ in 1..SEQ_LEN {
        slots.push(b.alloc(1, 1, INPUT_DIM, 0));
    }
    let weights = GruDeviceWeights {
        w_r: b.xavier_weights((h * INPUT_DIM) as usize, INPUT_DIM as usize),
        u_r: b.xavier_weights((h * h) as usize, h as usize),
        b_r: b.uniform_weights(h as usize, -0.05, 0.05),
        w_z: b.xavier_weights((h * INPUT_DIM) as usize, INPUT_DIM as usize),
        u_z: b.xavier_weights((h * h) as usize, h as usize),
        b_z: b.uniform_weights(h as usize, -0.05, 0.05),
        w_h: b.xavier_weights((h * INPUT_DIM) as usize, INPUT_DIM as usize),
        u_h: b.xavier_weights((h * h) as usize, h as usize),
        b_h: b.uniform_weights(h as usize, -0.05, 0.05),
    };
    let mut h_cur = b.alloc(1, 1, h, 0); // zero initial state
    for (t, x) in slots.iter().enumerate() {
        let h_next = b.alloc(1, 1, h, 0);
        b.push_layer(
            &format!("gru_step{t}"),
            LayerType::Gru,
            Op::Gru {
                kernel: step.clone(),
                weights,
                x: *x,
                h_in: h_cur,
                h_out: h_next,
            },
        );
        h_cur = h_next;
    }
    b.set_cur(h_cur);
    b.fc("fc_out", 1, 1, false)?;
    Ok(b.finish_sequence(NetworkKind::Gru, preset, slots, INPUT_DIM))
}

/// Builds the LSTM forecaster.
///
/// # Errors
///
/// Propagates kernel-construction failures (dimension-table bugs).
pub fn build_lstm(gpu: &mut Gpu, preset: Preset, seed: u64) -> Result<Network> {
    let h = hidden(preset);
    // The paper launches the LSTM as a flat (100,1,1) block.
    let step = LstmStep::new(INPUT_DIM, h, Dim3::x(h))?;
    let mut b = NetBuilder::image_input(gpu, seed, 1, 1, INPUT_DIM, 0);
    let x0 = b.cur();
    let mut slots = vec![x0];
    for _ in 1..SEQ_LEN {
        slots.push(b.alloc(1, 1, INPUT_DIM, 0));
    }
    let gate = |b: &mut NetBuilder<'_>| -> (u32, u32, u32) {
        (
            b.xavier_weights((h * INPUT_DIM) as usize, INPUT_DIM as usize),
            b.xavier_weights((h * h) as usize, h as usize),
            b.uniform_weights(h as usize, -0.05, 0.05),
        )
    };
    let (w_i, u_i, b_i) = gate(&mut b);
    let (w_f, u_f, b_f) = gate(&mut b);
    let (w_o, u_o, b_o) = gate(&mut b);
    let (w_g, u_g, b_g) = gate(&mut b);
    let weights = LstmDeviceWeights {
        w_i,
        u_i,
        b_i,
        w_f,
        u_f,
        b_f,
        w_o,
        u_o,
        b_o,
        w_g,
        u_g,
        b_g,
    };
    let mut h_cur = b.alloc(1, 1, h, 0);
    let mut c_cur = b.alloc(1, 1, h, 0);
    for (t, x) in slots.iter().enumerate() {
        let h_next = b.alloc(1, 1, h, 0);
        let c_next = b.alloc(1, 1, h, 0);
        b.push_layer(
            &format!("lstm_step{t}"),
            LayerType::Lstm,
            Op::Lstm {
                kernel: step.clone(),
                weights,
                x: *x,
                h_in: h_cur,
                c_in: c_cur,
                h_out: h_next,
                c_out: c_next,
            },
        );
        h_cur = h_next;
        c_cur = c_next;
    }
    b.set_cur(h_cur);
    b.fc("fc_out", 1, 1, false)?;
    Ok(b.finish_sequence(NetworkKind::Lstm, preset, slots, INPUT_DIM))
}

/// Generates a plausible scaled Bitcoin-style price window: `len` values
/// in `[0, 1]` following a mild random walk, standing in for the Kaggle
/// price history the paper's Table I models consume.
pub fn synthetic_price_window(len: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SplitMix64::new(seed);
    let mut price = rng.uniform(0.3, 0.7);
    (0..len)
        .map(|_| {
            price = (price + rng.uniform(-0.05, 0.05)).clamp(0.0, 1.0);
            Tensor::from_vec(Shape::vector(1), vec![price])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{InputSpec, NetworkInput};
    use tango_sim::{GpuConfig, SimOptions};

    #[test]
    fn gru_runs_and_forecasts_one_value() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_gru(&mut gpu, Preset::Paper, 1).unwrap();
        assert_eq!(net.input_spec(), InputSpec::Sequence { len: 2, dim: 1 });
        let window = synthetic_price_window(2, 77);
        let report = net
            .infer(&mut gpu, &NetworkInput::Sequence(window), &SimOptions::new())
            .unwrap();
        assert_eq!(report.output.len(), 1);
        assert!(report.output.get(&[0]).is_finite());
        assert_eq!(
            report.records.iter().filter(|r| r.layer_type == LayerType::Gru).count(),
            2
        );
    }

    #[test]
    fn lstm_runs_and_forecasts_one_value() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_lstm(&mut gpu, Preset::Paper, 2).unwrap();
        let window = synthetic_price_window(2, 78);
        let report = net
            .infer(&mut gpu, &NetworkInput::Sequence(window), &SimOptions::new())
            .unwrap();
        assert!(report.output.get(&[0]).is_finite());
        assert_eq!(
            report.records.iter().filter(|r| r.layer_type == LayerType::Lstm).count(),
            2
        );
    }

    #[test]
    fn rnn_footprint_is_under_500_kb() {
        // The paper's Figure 11: GRU and LSTM fit in embedded devices.
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let _ = build_lstm(&mut gpu, Preset::Paper, 3).unwrap();
        assert!(gpu.memory_footprint_bytes() < 500 * 1024, "{}", gpu.memory_footprint_bytes());
    }

    #[test]
    fn wrong_sequence_length_is_rejected() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_gru(&mut gpu, Preset::Paper, 4).unwrap();
        let window = synthetic_price_window(3, 79);
        assert!(net
            .infer(&mut gpu, &NetworkInput::Sequence(window), &SimOptions::new())
            .is_err());
    }
}
