//! Per-layer weight-file I/O.
//!
//! The paper's repository encloses per-layer weight files and promises "a
//! script file that collects per-layer weight values, which will help
//! researchers also test the neural network with their pre-trained
//! models". This module is that facility: dump every weight buffer of a
//! built network to a simple self-describing binary container, and load
//! such a container back into a (structurally identical) network —
//! including models trained elsewhere, as long as the shapes match.
//!
//! Container layout (little-endian):
//!
//! ```text
//! magic "TNGW" | u32 version | u32 entry count
//! per entry: u32 name length | name bytes | u32 float count | f32 data
//! ```

use crate::network::Network;
use crate::{NetError, Result};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use tango_sim::Gpu;

const MAGIC: &[u8; 4] = b"TNGW";
const VERSION: u32 = 1;

fn io_err(e: std::io::Error) -> NetError {
    NetError::bad_input("weight_io", e.to_string())
}

/// Collects every named weight buffer of `net` (deduplicated — RNN steps
/// share their weights) in a stable order.
fn buffers(net: &Network) -> Vec<(String, u32, usize)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for layer in net.layers() {
        for (name, addr, len) in layer.weight_buffers() {
            if seen.insert(addr) {
                out.push((name, addr, len));
            }
        }
    }
    out
}

/// Writes all of `net`'s weights (read back from `gpu`) to `writer`.
///
/// A `&mut` reference works wherever a writer is expected.
///
/// # Errors
///
/// Returns [`NetError`] on I/O failure.
pub fn save_weights<W: Write>(gpu: &Gpu, net: &Network, mut writer: W) -> Result<()> {
    let entries = buffers(net);
    writer.write_all(MAGIC).map_err(io_err)?;
    writer.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    writer.write_all(&(entries.len() as u32).to_le_bytes()).map_err(io_err)?;
    for (name, addr, len) in entries {
        let bytes = name.as_bytes();
        writer.write_all(&(bytes.len() as u32).to_le_bytes()).map_err(io_err)?;
        writer.write_all(bytes).map_err(io_err)?;
        writer.write_all(&(len as u32).to_le_bytes()).map_err(io_err)?;
        for v in gpu.download_f32s(addr, len) {
            writer.write_all(&v.to_le_bytes()).map_err(io_err)?;
        }
    }
    Ok(())
}

/// Loads a weight container produced by [`save_weights`] into `net`'s
/// device buffers. Entries are matched by name; every buffer of `net`
/// must be present with the exact float count.
///
/// A `&mut` reference works wherever a reader is expected.
///
/// # Errors
///
/// Returns [`NetError`] on I/O failure, a bad container, or a
/// shape/coverage mismatch.
pub fn load_weights<R: Read>(gpu: &mut Gpu, net: &Network, mut reader: R) -> Result<()> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(NetError::bad_input("weight_io", "not a Tango weight container"));
    }
    let mut u32buf = [0u8; 4];
    reader.read_exact(&mut u32buf).map_err(io_err)?;
    let version = u32::from_le_bytes(u32buf);
    if version != VERSION {
        return Err(NetError::bad_input("weight_io", format!("unsupported version {version}")));
    }
    reader.read_exact(&mut u32buf).map_err(io_err)?;
    let count = u32::from_le_bytes(u32buf) as usize;

    let mut entries: BTreeMap<String, Vec<f32>> = BTreeMap::new();
    for _ in 0..count {
        reader.read_exact(&mut u32buf).map_err(io_err)?;
        let name_len = u32::from_le_bytes(u32buf) as usize;
        let mut name_bytes = vec![0u8; name_len];
        reader.read_exact(&mut name_bytes).map_err(io_err)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| NetError::bad_input("weight_io", "entry name is not UTF-8"))?;
        reader.read_exact(&mut u32buf).map_err(io_err)?;
        let len = u32::from_le_bytes(u32buf) as usize;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            reader.read_exact(&mut u32buf).map_err(io_err)?;
            data.push(f32::from_le_bytes(u32buf));
        }
        entries.insert(name, data);
    }

    for (name, addr, len) in buffers(net) {
        let data = entries.get(&name).ok_or_else(|| {
            NetError::bad_input("weight_io", format!("container is missing buffer {name}"))
        })?;
        if data.len() != len {
            return Err(NetError::bad_input(
                "weight_io",
                format!("{name}: expected {len} floats, container holds {}", data.len()),
            ));
        }
        gpu.memory_mut().write_f32s(addr, data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_network, synthetic_input, NetworkKind, Preset};
    use tango_sim::{GpuConfig, SimOptions};

    #[test]
    fn weights_round_trip_and_preserve_outputs() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_network(&mut gpu, NetworkKind::CifarNet, Preset::Tiny, 5).unwrap();
        let input = synthetic_input(net.input_spec(), 5);
        let before = net.infer(&mut gpu, &input, &SimOptions::new()).unwrap().output;

        let mut container = Vec::new();
        save_weights(&gpu, &net, &mut container).unwrap();

        // A different-seed network has different outputs; loading the
        // saved container must restore the original behaviour exactly.
        let mut gpu2 = Gpu::new(GpuConfig::gp102());
        let net2 = build_network(&mut gpu2, NetworkKind::CifarNet, Preset::Tiny, 999).unwrap();
        let other = net2.infer(&mut gpu2, &input, &SimOptions::new()).unwrap().output;
        assert_ne!(before, other, "different seeds must differ");
        load_weights(&mut gpu2, &net2, container.as_slice()).unwrap();
        let restored = net2.infer(&mut gpu2, &input, &SimOptions::new()).unwrap().output;
        assert_eq!(before, restored, "loaded weights must restore behaviour bitwise");
    }

    #[test]
    fn rnn_weights_round_trip() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_network(&mut gpu, NetworkKind::Lstm, Preset::Tiny, 6).unwrap();
        let mut container = Vec::new();
        save_weights(&gpu, &net, &mut container).unwrap();
        // 12 LSTM buffers + fc weights + fc bias.
        assert!(container.len() > 14 * 8, "container too small: {}", container.len());
        let mut gpu2 = Gpu::new(GpuConfig::gp102());
        let net2 = build_network(&mut gpu2, NetworkKind::Lstm, Preset::Tiny, 7).unwrap();
        load_weights(&mut gpu2, &net2, container.as_slice()).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_network(&mut gpu, NetworkKind::Gru, Preset::Tiny, 1).unwrap();
        let err = load_weights(&mut gpu, &net, &b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("not a Tango weight container"));
    }

    #[test]
    fn missing_buffers_are_reported_by_name() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let small = build_network(&mut gpu, NetworkKind::Gru, Preset::Tiny, 1).unwrap();
        let mut container = Vec::new();
        save_weights(&gpu, &small, &mut container).unwrap();
        let mut gpu2 = Gpu::new(GpuConfig::gp102());
        let other = build_network(&mut gpu2, NetworkKind::CifarNet, Preset::Tiny, 1).unwrap();
        let err = load_weights(&mut gpu2, &other, container.as_slice()).unwrap_err();
        assert!(err.to_string().contains("missing buffer"), "{err}");
    }
}
