//! Internal builder the per-network modules use to assemble layers with
//! synthetic weights and correctly-chained halos.

use crate::layer::{Layer, LayerType, Op};
use crate::network::{InputSlot, InputSpec, Network, NetworkKind, Preset};
use crate::Result;
use tango_kernels::{
    BatchNorm, Conv2d, DepthwiseConv2d, DeviceTensor, EltwiseAdd, FullyConnected, GlobalAvgPool, Lrn,
    MaxPool2d, Relu, ScaleLayer, Softmax,
};
use tango_sim::Gpu;
use tango_tensor::SplitMix64;

pub(crate) struct NetBuilder<'g> {
    pub gpu: &'g mut Gpu,
    rng: SplitMix64,
    layers: Vec<Layer>,
    cur: DeviceTensor,
    input: DeviceTensor,
    weight_bytes: u64,
}

impl<'g> NetBuilder<'g> {
    /// Starts a network with a `c x h x w` image input whose halo covers
    /// the first convolution's padding.
    pub fn image_input(gpu: &'g mut Gpu, seed: u64, c: u32, h: u32, w: u32, pad: u32) -> Self {
        let input = DeviceTensor::alloc(gpu, c, h, w, pad);
        NetBuilder {
            gpu,
            rng: SplitMix64::new(seed),
            layers: Vec::new(),
            cur: input,
            input,
            weight_bytes: 0,
        }
    }

    /// The current activation tensor.
    pub fn cur(&self) -> DeviceTensor {
        self.cur
    }

    /// Redirects the chain (used after assembling parallel branches).
    pub fn set_cur(&mut self, t: DeviceTensor) {
        self.cur = t;
    }

    /// Allocates an activation tensor without linking it into the chain.
    pub fn alloc(&mut self, c: u32, h: u32, w: u32, pad: u32) -> DeviceTensor {
        DeviceTensor::alloc(self.gpu, c, h, w, pad)
    }

    /// Uploads a synthetic Xavier-initialized weight buffer.
    pub fn xavier_weights(&mut self, len: usize, fan_in: usize) -> u32 {
        let data: Vec<f32> = (0..len).map(|_| self.rng.xavier(fan_in)).collect();
        self.weight_bytes += (len * 4) as u64;
        self.gpu.upload_f32s(&data)
    }

    /// Uploads a synthetic uniform buffer (biases, norm statistics).
    pub fn uniform_weights(&mut self, len: usize, lo: f32, hi: f32) -> u32 {
        let data: Vec<f32> = (0..len).map(|_| self.rng.uniform(lo, hi)).collect();
        self.weight_bytes += (len * 4) as u64;
        self.gpu.upload_f32s(&data)
    }

    fn push(&mut self, name: &str, layer_type: LayerType, op: Op) {
        self.layers.push(Layer {
            name: name.to_string(),
            layer_type,
            op,
        });
    }

    /// Appends a convolution on the current activation; the output halo is
    /// `out_pad` (the next convolution's padding).
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        &mut self,
        name: &str,
        layer_type: LayerType,
        c_out: u32,
        k: u32,
        stride: u32,
        pad: u32,
        relu: bool,
        out_pad: u32,
    ) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = Conv2d::new(input.channels(), input.height(), input.width(), c_out, k, k, stride, pad, relu)?;
        let output = self.alloc(c_out, kernel.h_out(), kernel.w_out(), out_pad);
        self.conv_between(name, layer_type, &kernel, input, output)?;
        self.cur = output;
        Ok(output)
    }

    /// Appends a depthwise convolution (MobileNet's spatial filter).
    pub fn dw_conv(&mut self, name: &str, k: u32, stride: u32, pad: u32, relu: bool, out_pad: u32) -> Result<DeviceTensor> {
        let input = self.cur;
        let c = input.channels();
        let kernel = DepthwiseConv2d::new(c, input.height(), input.width(), k, stride, pad, relu)?;
        let weights = self.xavier_weights(kernel.weight_len(), (k * k) as usize);
        let bias = self.uniform_weights(c as usize, -0.05, 0.05);
        let output = self.alloc(c, kernel.h_out(), kernel.w_out(), out_pad);
        self.push(
            name,
            LayerType::Conv,
            Op::DwConv {
                kernel,
                weights,
                bias,
                input,
                output,
            },
        );
        self.cur = output;
        Ok(output)
    }

    /// Appends a single-block channel-loop convolution (the paper's
    /// CifarNet mapping).
    #[allow(clippy::too_many_arguments)]
    pub fn conv_single_block(
        &mut self,
        name: &str,
        layer_type: LayerType,
        c_out: u32,
        k: u32,
        stride: u32,
        pad: u32,
        relu: bool,
        out_pad: u32,
    ) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = Conv2d::new_single_block(
            input.channels(),
            input.height(),
            input.width(),
            c_out,
            k,
            k,
            stride,
            pad,
            relu,
        )?;
        let output = self.alloc(c_out, kernel.h_out(), kernel.w_out(), out_pad);
        self.conv_between(name, layer_type, &kernel, input, output)?;
        self.cur = output;
        Ok(output)
    }

    /// Appends a single-block channel-loop max-pooling layer (CifarNet).
    pub fn max_pool_single_block(&mut self, name: &str, window: u32, stride: u32, out_pad: u32) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = MaxPool2d::new_single_block(input.channels(), input.height(), input.width(), window, stride)?;
        let output = self.alloc(input.channels(), kernel.h_out(), kernel.w_out(), out_pad);
        self.push(
            name,
            LayerType::Pool,
            Op::MaxPool {
                kernel,
                input,
                output,
            },
        );
        self.cur = output;
        Ok(output)
    }

    /// Appends a convolution between explicit tensors (channel slices for
    /// grouped convolutions and fire modules). Does not move the chain.
    pub fn conv_between(
        &mut self,
        name: &str,
        layer_type: LayerType,
        kernel: &Conv2d,
        input: DeviceTensor,
        output: DeviceTensor,
    ) -> Result<()> {
        let fan_in = kernel.weight_len() / kernel.c_out() as usize;
        let weights = self.xavier_weights(kernel.weight_len(), fan_in);
        let bias = self.uniform_weights(kernel.c_out() as usize, -0.05, 0.05);
        self.push(
            name,
            layer_type,
            Op::Conv {
                kernel: kernel.clone(),
                weights,
                bias,
                input,
                output,
            },
        );
        Ok(())
    }

    /// Appends a max-pooling layer.
    pub fn max_pool(&mut self, name: &str, window: u32, stride: u32, out_pad: u32) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = MaxPool2d::new(input.channels(), input.height(), input.width(), window, stride)?;
        let output = self.alloc(input.channels(), kernel.h_out(), kernel.w_out(), out_pad);
        self.push(
            name,
            LayerType::Pool,
            Op::MaxPool {
                kernel,
                input,
                output,
            },
        );
        self.cur = output;
        Ok(output)
    }

    /// Appends a local response normalization layer.
    pub fn lrn(&mut self, name: &str, out_pad: u32) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = Lrn::new(input.channels(), input.height(), input.width())?;
        let output = self.alloc(input.channels(), input.height(), input.width(), out_pad);
        self.push(name, LayerType::Norm, Op::Lrn { kernel, input, output });
        self.cur = output;
        Ok(output)
    }

    /// Appends an inference batch-normalization layer with synthetic
    /// running statistics.
    pub fn batch_norm(&mut self, name: &str, out_pad: u32) -> Result<DeviceTensor> {
        let input = self.cur;
        let c = input.channels();
        let kernel = BatchNorm::new(c, input.height(), input.width())?;
        let mean = self.uniform_weights(c as usize, -0.1, 0.1);
        let var = self.uniform_weights(c as usize, 0.5, 1.5);
        let output = self.alloc(c, input.height(), input.width(), out_pad);
        self.push(
            name,
            LayerType::Norm,
            Op::BatchNorm {
                kernel,
                mean,
                var,
                input,
                output,
            },
        );
        self.cur = output;
        Ok(output)
    }

    /// Appends a per-channel scale layer with synthetic coefficients.
    pub fn scale(&mut self, name: &str, out_pad: u32) -> Result<DeviceTensor> {
        let input = self.cur;
        let c = input.channels();
        let kernel = ScaleLayer::new(c, input.height(), input.width())?;
        let gamma = self.uniform_weights(c as usize, 0.8, 1.2);
        let beta = self.uniform_weights(c as usize, -0.1, 0.1);
        let output = self.alloc(c, input.height(), input.width(), out_pad);
        self.push(
            name,
            LayerType::Scale,
            Op::Scale {
                kernel,
                gamma,
                beta,
                input,
                output,
            },
        );
        self.cur = output;
        Ok(output)
    }

    /// Appends a standalone ReLU layer.
    pub fn relu(&mut self, name: &str, out_pad: u32) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = Relu::new(input.channels(), input.height(), input.width())?;
        let output = self.alloc(input.channels(), input.height(), input.width(), out_pad);
        self.push(name, LayerType::Relu, Op::Relu { kernel, input, output });
        self.cur = output;
        Ok(output)
    }

    /// Appends an elementwise shortcut addition of `a` and `b`.
    pub fn eltwise(&mut self, name: &str, a: DeviceTensor, b: DeviceTensor, out_pad: u32) -> Result<DeviceTensor> {
        let kernel = EltwiseAdd::new(a.channels(), a.height(), a.width())?;
        let output = self.alloc(a.channels(), a.height(), a.width(), out_pad);
        self.push(name, LayerType::Eltwise, Op::Eltwise { kernel, a, b, output });
        self.cur = output;
        Ok(output)
    }

    /// Appends a fully-connected layer over the flattened current
    /// activation, launched as blocks of `block_x` threads.
    pub fn fc(&mut self, name: &str, out_features: u32, block_x: u32, relu: bool) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = FullyConnected::new(
            input.channels(),
            input.height(),
            input.width(),
            out_features,
            block_x,
            relu,
        )?;
        let in_features = (input.channels() * input.height() * input.width()) as usize;
        let weights = self.xavier_weights(kernel.weight_len(), in_features);
        let bias = self.uniform_weights(out_features as usize, -0.05, 0.05);
        let output = DeviceTensor::alloc_vector(self.gpu, out_features);
        self.push(
            name,
            LayerType::Fc,
            Op::Fc {
                kernel,
                weights,
                bias,
                input,
                output,
            },
        );
        self.cur = output;
        Ok(output)
    }

    /// Appends a global average pooling layer producing a channel vector.
    pub fn global_pool(&mut self, name: &str) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = GlobalAvgPool::new(input.channels(), input.height(), input.width())?;
        let output = DeviceTensor::alloc_vector(self.gpu, input.channels());
        self.push(
            name,
            LayerType::Pool,
            Op::GlobalPool {
                kernel,
                input,
                output,
            },
        );
        self.cur = output;
        Ok(output)
    }

    /// Appends a softmax over the current class-score vector.
    pub fn softmax(&mut self, name: &str) -> Result<DeviceTensor> {
        let input = self.cur;
        let kernel = Softmax::new(input.len())?;
        let output = DeviceTensor::alloc_vector(self.gpu, input.len());
        self.push(name, LayerType::Softmax, Op::Softmax { kernel, input, output });
        self.cur = output;
        Ok(output)
    }

    /// Direct access to push RNN step layers (built by `rnn.rs`).
    pub fn push_layer(&mut self, name: &str, layer_type: LayerType, op: Op) {
        self.push(name, layer_type, op);
    }

    /// Seals the network.
    pub fn finish(self, kind: NetworkKind, preset: Preset) -> Network {
        let input = self.input;
        let spec = InputSpec::Image {
            c: input.channels(),
            h: input.height(),
            w: input.width(),
        };
        Network {
            kind,
            preset,
            layers: self.layers,
            input_slot: InputSlot::Image(input),
            input_spec: spec,
            output: self.cur,
            weight_bytes: self.weight_bytes,
        }
    }

    /// Seals an RNN network with sequence input slots.
    pub fn finish_sequence(self, kind: NetworkKind, preset: Preset, slots: Vec<DeviceTensor>, dim: u32) -> Network {
        let spec = InputSpec::Sequence {
            len: slots.len() as u32,
            dim,
        };
        Network {
            kind,
            preset,
            layers: self.layers,
            input_slot: InputSlot::Sequence(slots),
            input_spec: spec,
            output: self.cur,
            weight_bytes: self.weight_bytes,
        }
    }
}
