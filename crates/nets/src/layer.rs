//! Layer records: the typed list of kernel launches a network comprises.

use std::fmt;
use tango_kernels::{
    BatchNorm, Conv2d, DepthwiseConv2d, DeviceTensor, EltwiseAdd, FullyConnected, GlobalAvgPool, GruStep,
    LayerKernel, Lrn, LstmStep, MaxPool2d, Relu, ScaleLayer, Softmax,
};
use tango_kernels::{GruDeviceWeights, LstmDeviceWeights};
use tango_sim::{Gpu, KernelStats, SimOptions};

/// The layer taxonomy the paper's figures aggregate by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerType {
    /// Convolution (including the stem and 1x1 convolutions of ResNet).
    Conv,
    /// Max/average/global pooling.
    Pool,
    /// Fully-connected.
    Fc,
    /// Local response normalization (AlexNet "Norm") and batch
    /// normalization (ResNet) — the paper groups both under "Norm".
    Norm,
    /// SqueezeNet fire-module squeeze convolution.
    FireSqueeze,
    /// SqueezeNet fire-module expand convolution.
    FireExpand,
    /// Per-channel affine scale (ResNet).
    Scale,
    /// Standalone rectified linear unit (ResNet).
    Relu,
    /// Elementwise shortcut addition (ResNet).
    Eltwise,
    /// Softmax classifier output.
    Softmax,
    /// GRU recurrent step.
    Gru,
    /// LSTM recurrent step.
    Lstm,
}

impl LayerType {
    /// The label used in the paper's per-layer-type figures.
    pub fn label(self) -> &'static str {
        match self {
            LayerType::Conv => "Conv",
            LayerType::Pool => "Pool",
            LayerType::Fc => "FC",
            LayerType::Norm => "Norm",
            LayerType::FireSqueeze => "Fire_Squeeze",
            LayerType::FireExpand => "Fire_Expand",
            LayerType::Scale => "Scale",
            LayerType::Relu => "Relu",
            LayerType::Eltwise => "Eltwise",
            LayerType::Softmax => "Softmax",
            LayerType::Gru => "GRU",
            LayerType::Lstm => "LSTM",
        }
    }

    /// Coarser label merging the fire variants (Figure 4/13 granularity).
    pub fn coarse_label(self) -> &'static str {
        match self {
            LayerType::FireSqueeze | LayerType::FireExpand => "Fire",
            other => other.label(),
        }
    }
}

impl fmt::Display for LayerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The concrete kernel launch behind one layer.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    Conv {
        kernel: Conv2d,
        weights: u32,
        bias: u32,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    DwConv {
        kernel: DepthwiseConv2d,
        weights: u32,
        bias: u32,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    MaxPool {
        kernel: MaxPool2d,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    GlobalPool {
        kernel: GlobalAvgPool,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    Fc {
        kernel: FullyConnected,
        weights: u32,
        bias: u32,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    Lrn {
        kernel: Lrn,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    BatchNorm {
        kernel: BatchNorm,
        mean: u32,
        var: u32,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    Scale {
        kernel: ScaleLayer,
        gamma: u32,
        beta: u32,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    Relu {
        kernel: Relu,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    Eltwise {
        kernel: EltwiseAdd,
        a: DeviceTensor,
        b: DeviceTensor,
        output: DeviceTensor,
    },
    Softmax {
        kernel: Softmax,
        input: DeviceTensor,
        output: DeviceTensor,
    },
    Gru {
        kernel: GruStep,
        weights: GruDeviceWeights,
        x: DeviceTensor,
        h_in: DeviceTensor,
        h_out: DeviceTensor,
    },
    Lstm {
        kernel: LstmStep,
        weights: LstmDeviceWeights,
        x: DeviceTensor,
        h_in: DeviceTensor,
        c_in: DeviceTensor,
        h_out: DeviceTensor,
        c_out: DeviceTensor,
    },
}

/// One layer of a built network: a named, typed kernel launch.
#[derive(Debug, Clone)]
pub struct Layer {
    pub(crate) name: String,
    pub(crate) layer_type: LayerType,
    pub(crate) op: Op,
}

impl Layer {
    /// Layer name (e.g. `conv2_1`, `fire3_expand3x3`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The figure taxonomy type.
    pub fn layer_type(&self) -> LayerType {
        self.layer_type
    }

    /// The compiled kernel behind this layer (Table III's source).
    pub fn kernel(&self) -> &LayerKernel {
        match &self.op {
            Op::Conv { kernel, .. } => kernel.kernel(),
            Op::DwConv { kernel, .. } => kernel.kernel(),
            Op::MaxPool { kernel, .. } => kernel.kernel(),
            Op::GlobalPool { kernel, .. } => kernel.kernel(),
            Op::Fc { kernel, .. } => kernel.kernel(),
            Op::Lrn { kernel, .. } => kernel.kernel(),
            Op::BatchNorm { kernel, .. } => kernel.kernel(),
            Op::Scale { kernel, .. } => kernel.kernel(),
            Op::Relu { kernel, .. } => kernel.kernel(),
            Op::Eltwise { kernel, .. } => kernel.kernel(),
            Op::Softmax { kernel, .. } => kernel.kernel(),
            Op::Gru { kernel, .. } => kernel.kernel(),
            Op::Lstm { kernel, .. } => kernel.kernel(),
        }
    }

    /// Analytic workload of this layer: the quantities platform models
    /// (like the `tango-fpga` PynQ model) consume instead of cycle-level
    /// simulation.
    pub fn work(&self) -> LayerWork {
        match &self.op {
            Op::Conv { kernel, output, .. } => LayerWork {
                macs: kernel.weight_len() as u64 / kernel.c_out() as u64 * output.len() as u64,
                weight_bytes: kernel.weight_len() as u64 * 4,
                output_elems: output.len() as u64,
            },
            Op::DwConv { kernel, output, .. } => LayerWork {
                macs: kernel.weight_len() as u64 / output.channels() as u64 * output.len() as u64,
                weight_bytes: kernel.weight_len() as u64 * 4,
                output_elems: output.len() as u64,
            },
            Op::MaxPool { kernel, output, .. } => LayerWork {
                macs: (kernel.window() * kernel.window()) as u64 * output.len() as u64,
                weight_bytes: 0,
                output_elems: output.len() as u64,
            },
            Op::GlobalPool { input, output, .. } => LayerWork {
                macs: input.len() as u64,
                weight_bytes: 0,
                output_elems: output.len() as u64,
            },
            Op::Fc { kernel, output, .. } => LayerWork {
                macs: kernel.weight_len() as u64,
                weight_bytes: kernel.weight_len() as u64 * 4,
                output_elems: output.len() as u64,
            },
            Op::Lrn { output, .. } => LayerWork {
                macs: 6 * output.len() as u64,
                weight_bytes: 0,
                output_elems: output.len() as u64,
            },
            Op::BatchNorm { output, .. } | Op::Scale { output, .. } => LayerWork {
                macs: 2 * output.len() as u64,
                weight_bytes: 2 * output.channels() as u64 * 4,
                output_elems: output.len() as u64,
            },
            Op::Relu { output, .. } | Op::Eltwise { output, .. } | Op::Softmax { output, .. } => LayerWork {
                macs: output.len() as u64,
                weight_bytes: 0,
                output_elems: output.len() as u64,
            },
            Op::Gru { kernel, .. } => {
                let h = kernel.hidden() as u64;
                let i = kernel.input_dim() as u64;
                LayerWork {
                    macs: 3 * (h * i + h * h + h),
                    weight_bytes: 3 * (h * i + h * h + h) * 4,
                    output_elems: h,
                }
            }
            Op::Lstm { kernel, .. } => {
                let h = kernel.hidden() as u64;
                let i = kernel.input_dim() as u64;
                LayerWork {
                    macs: 4 * (h * i + h * h + h),
                    weight_bytes: 4 * (h * i + h * h + h) * 4,
                    output_elems: h,
                }
            }
        }
    }

    /// The layer expressed as a dense GEMM, when it has one: the shape a
    /// matrix accelerator (e.g. a weight-stationary systolic array) tiles
    /// onto its MAC grid. Convolutions lower via implicit im2col (one GEMM
    /// row per output pixel), recurrent steps via their fused gate matrix.
    /// Layers with no MAC-dominated kernel (pooling, normalization,
    /// elementwise) return `None` and fall to a vector unit.
    ///
    /// Invariant: `m * k * n == self.work().macs` for every `Some` shape.
    pub fn gemm(&self) -> Option<GemmShape> {
        match &self.op {
            Op::Conv { kernel, output, .. } => Some(GemmShape {
                m: output.len() as u64 / kernel.c_out() as u64,
                k: kernel.weight_len() as u64 / kernel.c_out() as u64,
                n: kernel.c_out() as u64,
            }),
            Op::DwConv { kernel, output, .. } => Some(GemmShape {
                m: output.len() as u64,
                k: kernel.weight_len() as u64 / output.channels() as u64,
                n: 1,
            }),
            Op::Fc { kernel, output, .. } => Some(GemmShape {
                m: 1,
                k: kernel.weight_len() as u64 / output.len() as u64,
                n: output.len() as u64,
            }),
            // GRU/LSTM: the 3/4 gate mat-vecs fuse into one GEMM over the
            // concatenated [x; h; 1] vector (the +1 row carries the bias).
            Op::Gru { kernel, .. } => {
                let (h, i) = (kernel.hidden() as u64, kernel.input_dim() as u64);
                Some(GemmShape {
                    m: 1,
                    k: i + h + 1,
                    n: 3 * h,
                })
            }
            Op::Lstm { kernel, .. } => {
                let (h, i) = (kernel.hidden() as u64, kernel.input_dim() as u64);
                Some(GemmShape {
                    m: 1,
                    k: i + h + 1,
                    n: 4 * h,
                })
            }
            _ => None,
        }
    }

    /// Named device weight buffers this layer owns: `(name, address,
    /// float count)` triples. Used by the weight-file I/O (`crate::io`)
    /// to dump and restore per-layer weights, the workflow the paper
    /// supports with its per-layer weight files.
    pub fn weight_buffers(&self) -> Vec<(String, u32, usize)> {
        let n = &self.name;
        match &self.op {
            Op::Conv { kernel, weights, bias, .. } => vec![
                (format!("{n}.weights"), *weights, kernel.weight_len()),
                (format!("{n}.bias"), *bias, kernel.c_out() as usize),
            ],
            Op::DwConv { kernel, weights, bias, output, .. } => vec![
                (format!("{n}.weights"), *weights, kernel.weight_len()),
                (format!("{n}.bias"), *bias, output.channels() as usize),
            ],
            Op::Fc { kernel, weights, bias, output, .. } => vec![
                (format!("{n}.weights"), *weights, kernel.weight_len()),
                (format!("{n}.bias"), *bias, output.len() as usize),
            ],
            Op::BatchNorm { mean, var, output, .. } => vec![
                (format!("{n}.mean"), *mean, output.channels() as usize),
                (format!("{n}.var"), *var, output.channels() as usize),
            ],
            Op::Scale { gamma, beta, output, .. } => vec![
                (format!("{n}.gamma"), *gamma, output.channels() as usize),
                (format!("{n}.beta"), *beta, output.channels() as usize),
            ],
            Op::Gru { kernel, weights, .. } => {
                let h = kernel.hidden() as usize;
                let i = kernel.input_dim() as usize;
                vec![
                    (format!("{n}.w_r"), weights.w_r, h * i),
                    (format!("{n}.u_r"), weights.u_r, h * h),
                    (format!("{n}.b_r"), weights.b_r, h),
                    (format!("{n}.w_z"), weights.w_z, h * i),
                    (format!("{n}.u_z"), weights.u_z, h * h),
                    (format!("{n}.b_z"), weights.b_z, h),
                    (format!("{n}.w_h"), weights.w_h, h * i),
                    (format!("{n}.u_h"), weights.u_h, h * h),
                    (format!("{n}.b_h"), weights.b_h, h),
                ]
            }
            Op::Lstm { kernel, weights, .. } => {
                let h = kernel.hidden() as usize;
                let i = kernel.input_dim() as usize;
                vec![
                    (format!("{n}.w_i"), weights.w_i, h * i),
                    (format!("{n}.u_i"), weights.u_i, h * h),
                    (format!("{n}.b_i"), weights.b_i, h),
                    (format!("{n}.w_f"), weights.w_f, h * i),
                    (format!("{n}.u_f"), weights.u_f, h * h),
                    (format!("{n}.b_f"), weights.b_f, h),
                    (format!("{n}.w_o"), weights.w_o, h * i),
                    (format!("{n}.u_o"), weights.u_o, h * h),
                    (format!("{n}.b_o"), weights.b_o, h),
                    (format!("{n}.w_g"), weights.w_g, h * i),
                    (format!("{n}.u_g"), weights.u_g, h * h),
                    (format!("{n}.b_g"), weights.b_g, h),
                ]
            }
            _ => Vec::new(),
        }
    }

    /// Launches the layer on `gpu`.
    pub(crate) fn run(&self, gpu: &mut Gpu, opts: &SimOptions) -> KernelStats {
        match &self.op {
            Op::Conv {
                kernel,
                weights,
                bias,
                input,
                output,
            } => kernel.launch(gpu, input, *weights, *bias, output, opts),
            Op::DwConv {
                kernel,
                weights,
                bias,
                input,
                output,
            } => kernel.launch(gpu, input, *weights, *bias, output, opts),
            Op::MaxPool { kernel, input, output } => kernel.launch(gpu, input, output, opts),
            Op::GlobalPool { kernel, input, output } => kernel.launch(gpu, input, output, opts),
            Op::Fc {
                kernel,
                weights,
                bias,
                input,
                output,
            } => kernel.launch(gpu, input, *weights, *bias, output, opts),
            Op::Lrn { kernel, input, output } => kernel.launch(gpu, input, output, opts),
            Op::BatchNorm {
                kernel,
                mean,
                var,
                input,
                output,
            } => kernel.launch(gpu, input, *mean, *var, output, opts),
            Op::Scale {
                kernel,
                gamma,
                beta,
                input,
                output,
            } => kernel.launch(gpu, input, *gamma, *beta, output, opts),
            Op::Relu { kernel, input, output } => kernel.launch(gpu, input, output, opts),
            Op::Eltwise { kernel, a, b, output } => kernel.launch(gpu, a, b, output, opts),
            Op::Softmax { kernel, input, output } => kernel.launch(gpu, input, output, opts),
            Op::Gru {
                kernel,
                weights,
                x,
                h_in,
                h_out,
            } => kernel.launch(gpu, x, h_in, h_out, weights, opts),
            Op::Lstm {
                kernel,
                weights,
                x,
                h_in,
                c_in,
                h_out,
                c_out,
            } => kernel.launch(gpu, x, h_in, c_in, h_out, c_out, weights, opts),
        }
    }
}

/// A layer lowered to a dense `M x K` by `K x N` matrix multiply (see
/// [`Layer::gemm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Activation rows (output pixels for a convolution, 1 for FC/RNN).
    pub m: u64,
    /// Reduction depth (receptive field x input channels).
    pub k: u64,
    /// Output columns (output channels / gate width).
    pub n: u64,
}

impl GemmShape {
    /// Multiply-accumulates the GEMM performs.
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }
}

/// Analytic per-layer workload for platform models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerWork {
    /// Multiply-accumulate (or comparable elementwise) operations.
    pub macs: u64,
    /// Bytes of weights/statistics the layer streams.
    pub weight_bytes: u64,
    /// Output elements produced.
    pub output_elems: u64,
}

/// Statistics of one executed layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRecord {
    /// Layer name.
    pub name: String,
    /// Figure taxonomy type.
    pub layer_type: LayerType,
    /// Full simulator statistics for the launch.
    pub stats: KernelStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_shapes_account_for_every_mac() {
        use crate::{build_network, NetworkKind, Preset};
        use tango_sim::{Gpu, GpuConfig};
        let mut gpu = Gpu::new(GpuConfig::gp102());
        for kind in [NetworkKind::CifarNet, NetworkKind::Gru, NetworkKind::MobileNet] {
            let net = build_network(&mut gpu, kind, Preset::Tiny, 5).unwrap();
            let mut lowered = 0;
            for layer in net.layers() {
                if let Some(g) = layer.gemm() {
                    assert_eq!(g.macs(), layer.work().macs, "{}: GEMM shape disagrees with work()", layer.name());
                    lowered += 1;
                }
            }
            assert!(lowered > 0, "{kind:?} lowered no layer to a GEMM");
        }
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(LayerType::Fc.label(), "FC");
        assert_eq!(LayerType::FireExpand.label(), "Fire_Expand");
        assert_eq!(LayerType::FireExpand.coarse_label(), "Fire");
        assert_eq!(LayerType::Norm.coarse_label(), "Norm");
    }
}
