//! SqueezeNet v1.0: a 7x7 stem convolution, eight fire modules
//! (squeeze 1x1 -> parallel expand 1x1 / expand 3x3, concatenated), a
//! 1x1 classifier convolution, and global average pooling.

use crate::builder::NetBuilder;
use crate::layer::LayerType;
use crate::network::{Network, NetworkKind, Preset};
use crate::Result;
use tango_kernels::Conv2d;
use tango_sim::Gpu;

struct Dims {
    input: u32,
    stem: u32,
    /// (squeeze, expand) channel pairs for fire2..fire9.
    fires: [(u32, u32); 8],
    classes: u32,
}

fn dims(preset: Preset) -> Dims {
    match preset {
        Preset::Paper => Dims {
            input: 227,
            stem: 96,
            fires: [
                (16, 64),
                (16, 64),
                (32, 128),
                (32, 128),
                (48, 192),
                (48, 192),
                (64, 256),
                (64, 256),
            ],
            classes: 1000,
        },
        Preset::Bench => Dims {
            input: 115,
            stem: 24,
            fires: [
                (4, 16),
                (4, 16),
                (8, 32),
                (8, 32),
                (12, 48),
                (12, 48),
                (16, 64),
                (16, 64),
            ],
            classes: 250,
        },
        Preset::Tiny => Dims {
            input: 59,
            stem: 8,
            fires: [(2, 4), (2, 4), (2, 8), (2, 8), (4, 8), (4, 8), (4, 16), (4, 16)],
            classes: 20,
        },
    }
}

/// Emits one fire module: a squeeze 1x1 convolution, then expand 1x1 and
/// expand 3x3 convolutions whose outputs concatenate along channels.
fn fire(b: &mut NetBuilder<'_>, name: &str, squeeze_c: u32, expand_c: u32, out_pad: u32) -> Result<()> {
    // Squeeze output feeds a 3x3 expand, so it carries a halo of 1.
    let squeezed = b.conv(
        &format!("{name}_squeeze1x1"),
        LayerType::FireSqueeze,
        squeeze_c,
        1,
        1,
        0,
        true,
        1,
    )?;
    let h = squeezed.height();
    let w = squeezed.width();
    let output = b.alloc(2 * expand_c, h, w, out_pad);
    let e1 = Conv2d::new(squeeze_c, h, w, expand_c, 1, 1, 1, 0, true)?;
    b.conv_between(
        &format!("{name}_expand1x1"),
        LayerType::FireExpand,
        &e1,
        squeezed,
        output.channel_slice(0, expand_c),
    )?;
    let e3 = Conv2d::new(squeeze_c, h, w, expand_c, 3, 3, 1, 1, true)?;
    b.conv_between(
        &format!("{name}_expand3x3"),
        LayerType::FireExpand,
        &e3,
        squeezed,
        output.channel_slice(expand_c, expand_c),
    )?;
    b.set_cur(output);
    Ok(())
}

/// Builds SqueezeNet at `preset` scale with deterministic synthetic
/// weights.
///
/// # Errors
///
/// Propagates kernel-construction failures (dimension-table bugs).
pub fn build(gpu: &mut Gpu, preset: Preset, seed: u64) -> Result<Network> {
    let d = dims(preset);
    let mut b = NetBuilder::image_input(gpu, seed, 3, d.input, d.input, 0);
    b.conv("conv1", LayerType::Conv, d.stem, 7, 2, 0, true, 0)?;
    b.max_pool("pool1", 3, 2, 0)?;
    fire(&mut b, "fire2", d.fires[0].0, d.fires[0].1, 0)?;
    fire(&mut b, "fire3", d.fires[1].0, d.fires[1].1, 0)?;
    fire(&mut b, "fire4", d.fires[2].0, d.fires[2].1, 0)?;
    b.max_pool("pool4", 3, 2, 0)?;
    fire(&mut b, "fire5", d.fires[3].0, d.fires[3].1, 0)?;
    fire(&mut b, "fire6", d.fires[4].0, d.fires[4].1, 0)?;
    fire(&mut b, "fire7", d.fires[5].0, d.fires[5].1, 0)?;
    fire(&mut b, "fire8", d.fires[6].0, d.fires[6].1, 0)?;
    b.max_pool("pool8", 3, 2, 0)?;
    fire(&mut b, "fire9", d.fires[7].0, d.fires[7].1, 0)?;
    b.conv("conv10", LayerType::Conv, d.classes, 1, 1, 0, true, 0)?;
    b.global_pool("global_avg_pool")?;
    b.softmax("softmax")?;
    Ok(b.finish(NetworkKind::SqueezeNet, preset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkInput;
    use tango_sim::{GpuConfig, SimOptions};
    use tango_tensor::{Shape, SplitMix64, Tensor};

    #[test]
    fn paper_preset_matches_published_structure() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Paper, 1).unwrap();
        let squeezes = net
            .layers()
            .iter()
            .filter(|l| l.layer_type() == LayerType::FireSqueeze)
            .count();
        let expands = net
            .layers()
            .iter()
            .filter(|l| l.layer_type() == LayerType::FireExpand)
            .count();
        assert_eq!(squeezes, 8);
        assert_eq!(expands, 16, "eight times more fire expand kernels than plain convs per module pair");
        // conv1 output is 111x111 with 96 filters, matching Table III's
        // (111,1,1) x (111,1,1) scale.
        let conv1 = &net.layers()[0];
        assert_eq!(conv1.kernel().grid().x, 96);
        // ~1.2M parameters: SqueezeNet's 50x-fewer-than-AlexNet claim.
        let params = net.weight_bytes() / 4;
        assert!((800_000..2_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn tiny_inference_produces_distribution() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Tiny, 2).unwrap();
        let mut rng = SplitMix64::new(30);
        let image = Tensor::uniform(Shape::nchw(1, 3, 59, 59), 0.0, 1.0, &mut rng);
        let report = net
            .infer(&mut gpu, &NetworkInput::Image(image), &SimOptions::new())
            .unwrap();
        let sum: f32 = report.output.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
        assert!(report.records.iter().any(|r| r.name == "fire9_expand3x3"));
    }
}
