//! Simulated training — the paper's announced training-phase extension:
//! a small CifarNet-style classifier whose forward pass, back-propagation,
//! and SGD updates all run as kernels on the simulated GPU, so training
//! workloads can be characterized the same way inference is.
//!
//! The architecture is the front of CifarNet plus its classifier head:
//! `conv 5x5 pad 2 -> relu -> maxpool 3/2 -> fc -> softmax+cross-entropy`.
//! The softmax/cross-entropy loss and its score gradient are evaluated
//! host-side on the downloaded logits (a dozen floats), like a host-driven
//! training loop's loss bookkeeping.

use crate::{NetError, Result};
use tango_kernels::{
    Conv2d, Conv2dBackward, DeviceTensor, FcBackward, FullyConnected, MaxPool2d, MaxPoolBackward, Relu,
    ReluBackward, SgdStep,
};
use tango_sim::{Gpu, KernelStats, SimOptions};
use tango_tensor::{ops, SplitMix64, Tensor};

/// Configuration of the trainable classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainerConfig {
    /// Input image extent (square, 3 channels).
    pub input: u32,
    /// Convolution output channels.
    pub conv_channels: u32,
    /// Class count.
    pub classes: u32,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            input: 16,
            conv_channels: 8,
            classes: 9,
        }
    }
}

/// Per-step outcome.
#[derive(Debug, Clone)]
pub struct TrainStep {
    /// Cross-entropy loss of this example before the update.
    pub loss: f32,
    /// Statistics of every kernel the step launched (forward, backward,
    /// and SGD updates), in launch order.
    pub kernels: Vec<KernelStats>,
}

/// A trainable CifarNet-front classifier resident on a simulated GPU.
pub struct Trainer {
    cfg: TrainerConfig,
    // Forward kernels.
    conv: Conv2d,
    relu: Relu,
    pool: MaxPool2d,
    fc: FullyConnected,
    // Backward kernels.
    conv_bwd: Conv2dBackward,
    relu_bwd: ReluBackward,
    pool_bwd: MaxPoolBackward,
    fc_bwd: FcBackward,
    sgd_w1: SgdStep,
    sgd_b1: SgdStep,
    sgd_w2: SgdStep,
    sgd_b2: SgdStep,
    // Parameters and activations (device).
    x: DeviceTensor,
    w1: u32,
    b1: u32,
    a1: DeviceTensor,
    r1: DeviceTensor,
    p1: DeviceTensor,
    w2: u32,
    b2: u32,
    logits: DeviceTensor,
    // Gradients (device).
    d_logits: DeviceTensor,
    d_p1: DeviceTensor,
    d_r1: DeviceTensor,
    d_a1: DeviceTensor,
    d_x: DeviceTensor,
    d_w1: u32,
    d_b1: u32,
    d_w2: u32,
    w1_len: u32,
    w2_len: u32,
}

impl Trainer {
    /// Builds the classifier with synthetic initial weights on `gpu`.
    ///
    /// # Errors
    ///
    /// Propagates kernel-construction failures.
    pub fn new(gpu: &mut Gpu, cfg: TrainerConfig, seed: u64) -> Result<Self> {
        let n = cfg.input;
        let c = cfg.conv_channels;
        let conv = Conv2d::new(3, n, n, c, 5, 5, 1, 2, false)?;
        let relu = Relu::new(c, n, n)?;
        let pool = MaxPool2d::new(c, n, n, 3, 2)?;
        let (ph, pw) = (pool.h_out(), pool.w_out());
        let fc = FullyConnected::new(c, ph, pw, cfg.classes, cfg.classes.min(64), false)?;

        let conv_bwd = Conv2dBackward::new(3, n, n, c, 5, 2)?;
        let relu_bwd = ReluBackward::new(c, n, n)?;
        let pool_bwd = MaxPoolBackward::new(c, n, n, 3, 2)?;
        let fc_bwd = FcBackward::new(c * ph * pw, cfg.classes)?;

        let mut rng = SplitMix64::new(seed);
        let w1_len = conv.weight_len() as u32;
        let w2_len = fc.weight_len() as u32;
        let fan1 = (3 * 5 * 5) as usize;
        let fan2 = (c * ph * pw) as usize;
        let w1_host: Vec<f32> = (0..w1_len).map(|_| rng.xavier(fan1)).collect();
        let b1_host: Vec<f32> = (0..c).map(|_| rng.uniform(-0.01, 0.01)).collect();
        let w2_host: Vec<f32> = (0..w2_len).map(|_| rng.xavier(fan2)).collect();
        let b2_host: Vec<f32> = (0..cfg.classes).map(|_| rng.uniform(-0.01, 0.01)).collect();

        let x = DeviceTensor::alloc(gpu, 3, n, n, 2);
        let w1 = gpu.upload_f32s(&w1_host);
        let b1 = gpu.upload_f32s(&b1_host);
        // Activation gradients that flow into the convolution backward
        // need a halo of k = 5 (the full-correlation window); the matching
        // forward tensors share the layout so backward kernels can assert
        // pitch equality.
        let halo = conv_bwd.d_out_pad();
        let a1 = DeviceTensor::alloc(gpu, c, n, n, halo);
        let r1 = DeviceTensor::alloc(gpu, c, n, n, halo);
        let p1 = DeviceTensor::alloc(gpu, c, ph, pw, 0);
        let w2 = gpu.upload_f32s(&w2_host);
        let b2 = gpu.upload_f32s(&b2_host);
        let logits = DeviceTensor::alloc_vector(gpu, cfg.classes);

        let d_logits = DeviceTensor::alloc_vector(gpu, cfg.classes);
        let d_p1 = DeviceTensor::alloc(gpu, c, ph, pw, 0);
        let d_r1 = DeviceTensor::alloc(gpu, c, n, n, halo);
        let d_a1 = DeviceTensor::alloc(gpu, c, n, n, halo);
        let d_x = DeviceTensor::alloc(gpu, 3, n, n, 0);
        let d_w1 = gpu.alloc_bytes(w1_len * 4);
        let d_b1 = gpu.alloc_bytes(c * 4);
        let d_w2 = gpu.alloc_bytes(w2_len * 4);

        Ok(Trainer {
            cfg,
            sgd_w1: SgdStep::new(w1_len)?,
            sgd_b1: SgdStep::new(c)?,
            sgd_w2: SgdStep::new(w2_len)?,
            sgd_b2: SgdStep::new(cfg.classes)?,
            conv,
            relu,
            pool,
            fc,
            conv_bwd,
            relu_bwd,
            pool_bwd,
            fc_bwd,
            x,
            w1,
            b1,
            a1,
            r1,
            p1,
            w2,
            b2,
            logits,
            d_logits,
            d_p1,
            d_r1,
            d_a1,
            d_x,
            d_w1,
            d_b1,
            d_w2,
            w1_len,
            w2_len,
        })
    }

    /// The configuration.
    pub fn config(&self) -> TrainerConfig {
        self.cfg
    }

    /// Runs the forward pass on `image` and returns the class scores.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadInput`] if the image does not match the
    /// configured input shape.
    pub fn forward(&self, gpu: &mut Gpu, image: &Tensor, opts: &SimOptions) -> Result<(Tensor, Vec<KernelStats>)> {
        self.x
            .overwrite(gpu, image)
            .map_err(|e| NetError::bad_input("trainer", e.to_string()))?;
        let stats = vec![
            self.conv.launch(gpu, &self.x, self.w1, self.b1, &self.a1, opts),
            self.relu.launch(gpu, &self.a1, &self.r1, opts),
            self.pool.launch(gpu, &self.r1, &self.p1, opts),
            self.fc.launch(gpu, &self.p1, self.w2, self.b2, &self.logits, opts),
        ];
        Ok((self.logits.download(gpu), stats))
    }

    /// One full training step (forward, loss, backward, SGD update) on a
    /// single labelled example. Returns the pre-update loss and all kernel
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadInput`] on a mismatched image or an
    /// out-of-range label.
    pub fn step(&self, gpu: &mut Gpu, image: &Tensor, label: usize, lr: f32, opts: &SimOptions) -> Result<TrainStep> {
        if label as u32 >= self.cfg.classes {
            return Err(NetError::bad_input("trainer", format!("label {label} out of range")));
        }
        let (scores, mut kernels) = self.forward(gpu, image, opts)?;
        let (loss, d_scores) =
            ops::softmax_cross_entropy(&scores, label).map_err(|e| NetError::bad_input("trainer", e.to_string()))?;
        self.d_logits
            .overwrite(gpu, &d_scores)
            .map_err(|e| NetError::bad_input("trainer", e.to_string()))?;

        // Backward through the head and the conv block.
        kernels.extend(self.fc_bwd.launch(gpu, &self.p1, self.w2, &self.d_logits, &self.d_p1, self.d_w2, opts));
        kernels.push(self.pool_bwd.launch(gpu, &self.r1, &self.p1, &self.d_p1, &self.d_r1, opts));
        kernels.push(self.relu_bwd.launch(gpu, &self.a1, &self.d_r1, &self.d_a1, opts));
        kernels.extend(self.conv_bwd.launch(
            gpu,
            &self.x,
            self.w1,
            &self.d_a1,
            &self.d_x,
            self.d_w1,
            self.d_b1,
            opts,
        ));

        // SGD updates. The FC bias gradient is d_scores itself.
        kernels.push(self.sgd_w1.launch(gpu, self.w1, self.d_w1, lr, opts));
        kernels.push(self.sgd_b1.launch(gpu, self.b1, self.d_b1, lr, opts));
        kernels.push(self.sgd_w2.launch(gpu, self.w2, self.d_w2, lr, opts));
        kernels.push(self.sgd_b2.launch(gpu, self.b2, self.d_logits.interior_addr(), lr, opts));

        Ok(TrainStep { loss, kernels })
    }

    /// Parameter counts, for reports.
    pub fn parameter_count(&self) -> u32 {
        self.w1_len + self.cfg.conv_channels + self.w2_len + self.cfg.classes
    }
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("config", &self.cfg)
            .field("parameters", &self.parameter_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_sim::GpuConfig;
    use tango_tensor::Shape;

    fn image(seed: u64, n: usize) -> Tensor {
        let mut rng = SplitMix64::new(seed);
        Tensor::uniform(Shape::nchw(1, 3, n, n), 0.0, 1.0, &mut rng)
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_example() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let trainer = Trainer::new(&mut gpu, TrainerConfig::default(), 42).unwrap();
        let img = image(7, 16);
        let opts = SimOptions::new().with_cta_sample_limit(None);
        let first = trainer.step(&mut gpu, &img, 3, 0.05, &opts).unwrap();
        let mut last = first.loss;
        for _ in 0..8 {
            last = trainer.step(&mut gpu, &img, 3, 0.05, &opts).unwrap().loss;
        }
        assert!(
            last < first.loss * 0.8,
            "loss should fall on a memorized example: {} -> {}",
            first.loss,
            last
        );
    }

    #[test]
    fn step_reports_kernel_stats_for_every_phase() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let trainer = Trainer::new(&mut gpu, TrainerConfig::default(), 1).unwrap();
        let img = image(2, 16);
        let step = trainer.step(&mut gpu, &img, 0, 0.01, &SimOptions::new()).unwrap();
        // 4 forward + 2 fc-bwd + 1 pool-bwd + 1 relu-bwd + 3 conv-bwd + 4 sgd.
        assert_eq!(step.kernels.len(), 15);
        assert!(step.kernels.iter().all(|k| k.cycles > 0));
        assert!(step.loss.is_finite() && step.loss > 0.0);
    }

    #[test]
    fn gradient_step_matches_reference_training_step() {
        // One simulated step must move the loss the same way a pure
        // reference-computed step does (same forward, same gradients).
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let trainer = Trainer::new(&mut gpu, TrainerConfig::default(), 9).unwrap();
        let img = image(10, 16);
        let opts = SimOptions::new().with_cta_sample_limit(None);
        let before = trainer.step(&mut gpu, &img, 2, 0.1, &opts).unwrap().loss;
        let after = trainer.forward(&mut gpu, &img, &opts).unwrap().0;
        let (loss_after, _) = ops::softmax_cross_entropy(&after, 2).unwrap();
        assert!(loss_after < before, "one step should reduce loss: {before} -> {loss_after}");
    }

    #[test]
    fn bad_label_is_rejected() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let trainer = Trainer::new(&mut gpu, TrainerConfig::default(), 3).unwrap();
        let img = image(4, 16);
        assert!(trainer.step(&mut gpu, &img, 99, 0.1, &SimOptions::new()).is_err());
    }
}
