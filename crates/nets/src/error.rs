use std::error::Error;
use std::fmt;
use tango_kernels::KernelError;

/// Error produced when building or running a network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A layer kernel failed to build.
    Kernel(KernelError),
    /// The supplied inference input does not match the network.
    BadInput {
        /// Network name.
        network: &'static str,
        /// What was wrong.
        message: String,
    },
}

impl NetError {
    pub(crate) fn bad_input(network: &'static str, message: impl Into<String>) -> Self {
        NetError::BadInput {
            network,
            message: message.into(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Kernel(e) => write!(f, "layer construction failed: {e}"),
            NetError::BadInput { network, message } => write!(f, "{network}: bad input, {message}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<KernelError> for NetError {
    fn from(e: KernelError) -> Self {
        NetError::Kernel(e)
    }
}
