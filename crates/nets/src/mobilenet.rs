//! MobileNet v1 — the network the paper names as the suite's next
//! addition ("We are currently developing more networks such as
//! MobileNet"). Included here as the implemented extension: a 3x3 stem
//! followed by thirteen depthwise-separable blocks (depthwise 3x3 then
//! pointwise 1x1, each with fused ReLU), global average pooling, one FC
//! layer, and a softmax.

use crate::builder::NetBuilder;
use crate::layer::LayerType;
use crate::network::{Network, NetworkKind, Preset};
use crate::Result;
use tango_sim::Gpu;

struct Dims {
    input: u32,
    stem: u32,
    /// (output channels, depthwise stride) per separable block.
    blocks: [(u32, u32); 13],
    classes: u32,
}

fn dims(preset: Preset) -> Dims {
    match preset {
        Preset::Paper => Dims {
            input: 224,
            stem: 32,
            blocks: [
                (64, 1),
                (128, 2),
                (128, 1),
                (256, 2),
                (256, 1),
                (512, 2),
                (512, 1),
                (512, 1),
                (512, 1),
                (512, 1),
                (512, 1),
                (1024, 2),
                (1024, 1),
            ],
            classes: 1000,
        },
        Preset::Bench => Dims {
            input: 64,
            stem: 8,
            blocks: [
                (16, 1),
                (32, 2),
                (32, 1),
                (64, 2),
                (64, 1),
                (128, 2),
                (128, 1),
                (128, 1),
                (128, 1),
                (128, 1),
                (128, 1),
                (256, 2),
                (256, 1),
            ],
            classes: 250,
        },
        Preset::Tiny => Dims {
            input: 32,
            stem: 4,
            blocks: [
                (8, 1),
                (8, 2),
                (8, 1),
                (16, 2),
                (16, 1),
                (16, 2),
                (16, 1),
                (16, 1),
                (16, 1),
                (16, 1),
                (16, 1),
                (32, 1),
                (32, 1),
            ],
            classes: 20,
        },
    }
}

/// Builds MobileNet v1 at `preset` scale with deterministic synthetic
/// weights.
///
/// # Errors
///
/// Propagates kernel-construction failures (dimension-table bugs).
pub fn build(gpu: &mut Gpu, preset: Preset, seed: u64) -> Result<Network> {
    let d = dims(preset);
    let mut b = NetBuilder::image_input(gpu, seed, 3, d.input, d.input, 1);
    // Stem: 3x3 stride-2 convolution, then depthwise-separable blocks.
    b.conv("conv1", LayerType::Conv, d.stem, 3, 2, 1, true, 1)?;
    for (i, &(c_out, stride)) in d.blocks.iter().enumerate() {
        let n = i + 2;
        // Depthwise output feeds a 1x1 pointwise conv (no halo needed);
        // pointwise output feeds the next block's 3x3 depthwise (halo 1).
        b.dw_conv(&format!("conv{n}_dw"), 3, stride, 1, true, 0)?;
        b.conv(&format!("conv{n}_pw"), LayerType::Conv, c_out, 1, 1, 0, true, 1)?;
    }
    b.global_pool("avg_pool")?;
    b.fc("fc", d.classes, 1, false)?;
    b.softmax("softmax")?;
    Ok(b.finish(NetworkKind::MobileNet, preset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkInput;
    use tango_sim::{GpuConfig, SimOptions};
    use tango_tensor::{Shape, SplitMix64, Tensor};

    #[test]
    fn paper_preset_matches_published_structure() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Paper, 1).unwrap();
        // 1 stem + 13 dw + 13 pw = 27 convolution kernels.
        let convs = net.layers().iter().filter(|l| l.layer_type() == LayerType::Conv).count();
        assert_eq!(convs, 27);
        // ~4.2M parameters (the MobileNet v1 headline).
        let params = net.weight_bytes() / 4;
        assert!((3_500_000..5_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn tiny_inference_produces_distribution() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Tiny, 2).unwrap();
        let mut rng = SplitMix64::new(60);
        let image = Tensor::uniform(Shape::nchw(1, 3, 32, 32), 0.0, 1.0, &mut rng);
        let report = net
            .infer(&mut gpu, &NetworkInput::Image(image), &SimOptions::new())
            .unwrap();
        let sum: f32 = report.output.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        assert!(report.records.iter().any(|r| r.name == "conv5_dw"));
    }
}
