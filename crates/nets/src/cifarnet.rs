//! CifarNet: three 5x5 convolutions with pooling, two fully-connected
//! layers, and a 9-class softmax (the paper's traffic-signal model).

use crate::builder::NetBuilder;
use crate::layer::LayerType;
use crate::network::{Network, NetworkKind, Preset};
use crate::Result;
use tango_sim::Gpu;

struct Dims {
    input: u32,
    c1: u32,
    c2: u32,
    c3: u32,
    fc1: u32,
    classes: u32,
}

fn dims(preset: Preset) -> Dims {
    match preset {
        // The published model: 32x32x3 input, 32/32/64 channels, 64-wide
        // FC, 9 traffic-signal classes.
        Preset::Paper | Preset::Bench => Dims {
            input: 32,
            c1: 32,
            c2: 32,
            c3: 64,
            fc1: 64,
            classes: 9,
        },
        Preset::Tiny => Dims {
            input: 16,
            c1: 8,
            c2: 8,
            c3: 16,
            fc1: 16,
            classes: 9,
        },
    }
}

/// Builds CifarNet at `preset` scale with deterministic synthetic weights.
///
/// # Errors
///
/// Propagates kernel-construction failures (which indicate a bug in the
/// dimension tables, not a runtime condition).
pub fn build(gpu: &mut Gpu, preset: Preset, seed: u64) -> Result<Network> {
    let d = dims(preset);
    // conv1 is 5x5 pad 2, so the input tensor carries a halo of 2.
    // The paper runs every CifarNet layer as a single thread block
    // (Table III: gridDim (1,1,1)), looping over channels in-kernel.
    let mut b = NetBuilder::image_input(gpu, seed, 3, d.input, d.input, 2);
    b.conv_single_block("conv1", LayerType::Conv, d.c1, 5, 1, 2, true, 0)?;
    b.max_pool_single_block("pool1", 3, 2, 2)?;
    b.conv_single_block("conv2", LayerType::Conv, d.c2, 5, 1, 2, true, 0)?;
    b.max_pool_single_block("pool2", 3, 2, 2)?;
    b.conv_single_block("conv3", LayerType::Conv, d.c3, 5, 1, 2, true, 0)?;
    b.max_pool_single_block("pool3", 3, 2, 0)?;
    b.fc("fc1", d.fc1, 64.min(d.fc1), true)?;
    b.fc("fc2", d.classes, 32, false)?;
    b.softmax("softmax")?;
    Ok(b.finish(NetworkKind::CifarNet, preset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{InputSpec, NetworkInput};
    use tango_sim::{GpuConfig, SimOptions};
    use tango_tensor::{Shape, SplitMix64, Tensor};

    #[test]
    fn paper_preset_matches_published_structure() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Paper, 1).unwrap();
        // 3 conv + 3 pool + 2 fc + softmax.
        assert_eq!(net.layers().len(), 9);
        let convs = net.layers().iter().filter(|l| l.layer_type() == LayerType::Conv).count();
        assert_eq!(convs, 3);
        assert_eq!(net.input_spec(), InputSpec::Image { c: 3, h: 32, w: 32 });
        // Table III: every CifarNet kernel runs as a single block.
        for layer in net.layers() {
            assert_eq!(layer.kernel().grid().count(), 1, "{}", layer.name());
        }
    }

    #[test]
    fn inference_produces_probability_distribution() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Tiny, 2).unwrap();
        let mut rng = SplitMix64::new(9);
        let image = Tensor::uniform(Shape::nchw(1, 3, 16, 16), 0.0, 1.0, &mut rng);
        let report = net
            .infer(&mut gpu, &NetworkInput::Image(image), &SimOptions::new())
            .unwrap();
        let sum: f32 = report.output.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "softmax output sums to 1, got {sum}");
        assert!(report.output.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(report.records.len(), 9);
        assert!(report.total_cycles() > 0);
    }

    #[test]
    fn inference_is_deterministic() {
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::gp102());
            let net = build(&mut gpu, Preset::Tiny, 3).unwrap();
            let mut rng = SplitMix64::new(10);
            let image = Tensor::uniform(Shape::nchw(1, 3, 16, 16), 0.0, 1.0, &mut rng);
            net.infer(&mut gpu, &NetworkInput::Image(image), &SimOptions::new())
                .unwrap()
                .output
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Tiny, 4).unwrap();
        let bad = Tensor::zeros(Shape::nchw(1, 3, 8, 8));
        assert!(net.infer(&mut gpu, &NetworkInput::Image(bad), &SimOptions::new()).is_err());
    }
}
