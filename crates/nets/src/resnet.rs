//! ResNet-50: a 7x7 stem, sixteen bottleneck blocks across four stages
//! (each convolution followed by BatchNorm, Scale, and ReLU kernels, with
//! Eltwise shortcut additions — the Caffe deployment graph the paper's
//! Table III excerpts), global average pooling, and one FC layer.

use crate::builder::NetBuilder;
use crate::layer::LayerType;
use crate::network::{Network, NetworkKind, Preset};
use crate::Result;
use tango_kernels::DeviceTensor;
use tango_sim::Gpu;

struct Dims {
    input: u32,
    stem: u32,
    /// Bottleneck (mid, out) channels per stage.
    stages: [(u32, u32); 4],
    /// Blocks per stage (3, 4, 6, 3 for ResNet-50).
    blocks: [u32; 4],
    classes: u32,
}

fn dims(preset: Preset) -> Dims {
    match preset {
        Preset::Paper => Dims {
            input: 224,
            stem: 64,
            stages: [(64, 256), (128, 512), (256, 1024), (512, 2048)],
            blocks: [3, 4, 6, 3],
            classes: 1000,
        },
        Preset::Bench => Dims {
            input: 64,
            stem: 16,
            stages: [(8, 32), (16, 64), (32, 128), (64, 256)],
            blocks: [3, 4, 6, 3],
            classes: 250,
        },
        Preset::Tiny => Dims {
            input: 32,
            stem: 8,
            stages: [(4, 16), (8, 32), (8, 32), (16, 64)],
            blocks: [1, 1, 1, 1],
            classes: 20,
        },
    }
}

/// Emits one bottleneck block: 1x1 -> 3x3 -> 1x1 convolutions (each with
/// BatchNorm/Scale, the first two with ReLU), a projection shortcut on the
/// first block of a stage, an Eltwise addition, and a final ReLU.
fn bottleneck(b: &mut NetBuilder<'_>, name: &str, mid: u32, out: u32, stride: u32, project: bool) -> Result<()> {
    let block_input = b.cur();

    // Main path.
    b.conv(&format!("{name}_conv1"), LayerType::Conv, mid, 1, stride, 0, false, 1)?;
    b.batch_norm(&format!("{name}_bn1"), 1)?;
    b.scale(&format!("{name}_scale1"), 1)?;
    b.relu(&format!("{name}_relu1"), 1)?;
    b.conv(&format!("{name}_conv2"), LayerType::Conv, mid, 3, 1, 1, false, 0)?;
    b.batch_norm(&format!("{name}_bn2"), 0)?;
    b.scale(&format!("{name}_scale2"), 0)?;
    b.relu(&format!("{name}_relu2"), 0)?;
    b.conv(&format!("{name}_conv3"), LayerType::Conv, out, 1, 1, 0, false, 0)?;
    b.batch_norm(&format!("{name}_bn3"), 0)?;
    let main = b.scale(&format!("{name}_scale3"), 0)?;

    // Shortcut path.
    let shortcut: DeviceTensor = if project {
        b.set_cur(block_input);
        b.conv(&format!("{name}_conv_proj"), LayerType::Conv, out, 1, stride, 0, false, 0)?;
        b.batch_norm(&format!("{name}_bn_proj"), 0)?;
        b.scale(&format!("{name}_scale_proj"), 0)?
    } else {
        block_input
    };

    b.eltwise(&format!("{name}_eltwise"), main, shortcut, 0)?;
    b.relu(&format!("{name}_relu"), 0)?;
    Ok(())
}

/// Builds ResNet-50 at `preset` scale with deterministic synthetic
/// weights.
///
/// # Errors
///
/// Propagates kernel-construction failures (dimension-table bugs).
pub fn build(gpu: &mut Gpu, preset: Preset, seed: u64) -> Result<Network> {
    let d = dims(preset);
    let mut b = NetBuilder::image_input(gpu, seed, 3, d.input, d.input, 3);
    b.conv("conv1", LayerType::Conv, d.stem, 7, 2, 3, false, 0)?;
    b.batch_norm("bn_conv1", 0)?;
    b.scale("scale_conv1", 0)?;
    b.relu("conv1_relu", 0)?;
    b.max_pool("pool1", 3, 2, 0)?;

    for (stage, (&(mid, out), &blocks)) in d.stages.iter().zip(d.blocks.iter()).enumerate() {
        let stage_no = stage + 2; // Caffe naming: res2a, res3a, ...
        for block in 0..blocks {
            let letter = (b'a' + block as u8) as char;
            let name = format!("res{stage_no}{letter}");
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            bottleneck(&mut b, &name, mid, out, stride, block == 0)?;
        }
    }

    b.global_pool("pool5")?;
    b.fc("fc1000", d.classes, 1, false)?;
    b.softmax("softmax")?;
    Ok(b.finish(NetworkKind::ResNet50, preset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkInput;
    use tango_sim::{GpuConfig, SimOptions};
    use tango_tensor::{Shape, SplitMix64, Tensor};

    #[test]
    fn paper_preset_has_50_weight_layers() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Paper, 1).unwrap();
        let convs = net.layers().iter().filter(|l| l.layer_type() == LayerType::Conv).count();
        let fcs = net.layers().iter().filter(|l| l.layer_type() == LayerType::Fc).count();
        // 49 convolutions + 1 FC = the paper's "50 layers".
        // (1 stem + 16 blocks x 3 + 4 projections = 53 conv kernels; the
        // canonical "49 conv" counts projection convs too: 1 + 16*3 + 4 = 53.
        // He et al. count 1 + 48 weighted conv layers + fc = 50; our kernel
        // count includes the 4 projection shortcuts.)
        assert_eq!(convs, 53);
        assert_eq!(fcs, 1);
        let eltwise = net.layers().iter().filter(|l| l.layer_type() == LayerType::Eltwise).count();
        assert_eq!(eltwise, 16);
        // ~25M parameters.
        let params = net.weight_bytes() / 4;
        assert!((20_000_000..30_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn tiny_inference_runs() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Tiny, 2).unwrap();
        let mut rng = SplitMix64::new(40);
        let image = Tensor::uniform(Shape::nchw(1, 3, 32, 32), 0.0, 1.0, &mut rng);
        let report = net
            .infer(&mut gpu, &NetworkInput::Image(image), &SimOptions::new())
            .unwrap();
        let sum: f32 = report.output.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        assert!(report.output.as_slice().iter().all(|p| p.is_finite()));
        // Every bottleneck contributes Norm/Scale/Relu/Eltwise records.
        for ty in [LayerType::Norm, LayerType::Scale, LayerType::Relu, LayerType::Eltwise] {
            assert!(report.records.iter().any(|r| r.layer_type == ty), "{ty} missing");
        }
    }
}
