//! The built-network type and its inference runner.

use crate::layer::{Layer, LayerRecord};
use crate::{NetError, Result};
use std::fmt;
use tango_kernels::DeviceTensor;
use tango_sim::{Gpu, SimOptions};
use tango_tensor::Tensor;

/// Which of the suite's seven networks a [`Network`] instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// 3-conv/2-fc CIFAR-style net (traffic-signal model in the paper).
    CifarNet,
    /// 5-conv/3-fc ImageNet classifier (grouped convolutions).
    AlexNet,
    /// Fire-module ImageNet classifier.
    SqueezeNet,
    /// 50-layer residual ImageNet classifier.
    ResNet50,
    /// 16-layer VGG ImageNet classifier.
    VggNet16,
    /// Gated recurrent unit price forecaster.
    Gru,
    /// Long short-term memory price forecaster.
    Lstm,
    /// MobileNet v1 — the suite extension the paper announces
    /// ("we are currently developing more networks such as MobileNet").
    /// Not part of [`NetworkKind::ALL`] (the paper's seven evaluated
    /// networks); see [`NetworkKind::EXTENDED`].
    MobileNet,
}

impl NetworkKind {
    /// All seven networks, CNNs first, in the paper's ordering.
    pub const ALL: [NetworkKind; 7] = [
        NetworkKind::CifarNet,
        NetworkKind::AlexNet,
        NetworkKind::SqueezeNet,
        NetworkKind::ResNet50,
        NetworkKind::VggNet16,
        NetworkKind::Gru,
        NetworkKind::Lstm,
    ];

    /// The paper's seven networks plus the implemented extensions.
    pub const EXTENDED: [NetworkKind; 8] = [
        NetworkKind::CifarNet,
        NetworkKind::AlexNet,
        NetworkKind::SqueezeNet,
        NetworkKind::ResNet50,
        NetworkKind::VggNet16,
        NetworkKind::Gru,
        NetworkKind::Lstm,
        NetworkKind::MobileNet,
    ];

    /// The four CNNs most per-layer-type figures plot.
    pub const FIGURE_CNNS: [NetworkKind; 4] = [
        NetworkKind::CifarNet,
        NetworkKind::AlexNet,
        NetworkKind::SqueezeNet,
        NetworkKind::ResNet50,
    ];

    /// Display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            NetworkKind::CifarNet => "CifarNet",
            NetworkKind::AlexNet => "AlexNet",
            NetworkKind::SqueezeNet => "SqueezeNet",
            NetworkKind::ResNet50 => "ResNet",
            NetworkKind::VggNet16 => "VGGNet",
            NetworkKind::Gru => "GRU",
            NetworkKind::Lstm => "LSTM",
            NetworkKind::MobileNet => "MobileNet",
        }
    }

    /// Whether this is one of the two recurrent networks.
    pub fn is_rnn(self) -> bool {
        matches!(self, NetworkKind::Gru | NetworkKind::Lstm)
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Size preset a network is built at.
///
/// `Paper` reproduces the exact published architectures (the right preset
/// for static/footprint experiments: Table III, Figures 11-12). `Bench`
/// keeps every layer and its type/order but scales channel counts and
/// input resolution down so cycle-level simulation of the full suite
/// completes in seconds (the timing/power experiments; see DESIGN.md on
/// why shapes survive scaling). `Tiny` is a minimal variant for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preset {
    /// Exact published dimensions.
    Paper,
    /// Structure-preserving reduction for cycle-level runs.
    #[default]
    Bench,
    /// Miniature variant for fast tests.
    Tiny,
}

impl Preset {
    /// All presets.
    pub const ALL: [Preset; 3] = [Preset::Paper, Preset::Bench, Preset::Tiny];

    /// Lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Paper => "paper",
            Preset::Bench => "bench",
            Preset::Tiny => "tiny",
        }
    }
}

impl fmt::Display for Preset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a network consumes per inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSpec {
    /// A `c x h x w` image.
    Image {
        /// Channels.
        c: u32,
        /// Height.
        h: u32,
        /// Width.
        w: u32,
    },
    /// A sequence of `len` vectors of `dim` values.
    Sequence {
        /// Sequence length.
        len: u32,
        /// Vector width per step.
        dim: u32,
    },
}

/// Host-side inference input.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkInput {
    /// Image input (`1 x c x h x w` tensor).
    Image(Tensor),
    /// Sequence input (one vector per time step).
    Sequence(Vec<Tensor>),
}

pub(crate) enum InputSlot {
    Image(DeviceTensor),
    Sequence(Vec<DeviceTensor>),
}

/// A fully-built network: device-resident weights plus an ordered list of
/// layer kernels.
pub struct Network {
    pub(crate) kind: NetworkKind,
    pub(crate) preset: Preset,
    pub(crate) layers: Vec<Layer>,
    pub(crate) input_slot: InputSlot,
    pub(crate) input_spec: InputSpec,
    pub(crate) output: DeviceTensor,
    pub(crate) weight_bytes: u64,
}

impl Network {
    /// Which network this is.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// The preset it was built at.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// What one inference consumes.
    pub fn input_spec(&self) -> InputSpec {
        self.input_spec
    }

    /// Total bytes of weights/statistics resident on the device — the
    /// model-size component of the paper's Figure 11.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// Runs one inference, simulating every layer kernel, and returns the
    /// output plus the per-layer statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadInput`] if `input` does not match
    /// [`input_spec`](Self::input_spec).
    pub fn infer(&self, gpu: &mut Gpu, input: &NetworkInput, opts: &SimOptions) -> Result<InferenceReport> {
        self.bind_input(gpu, input)?;
        self.run_layers(gpu, opts)
    }

    /// Runs one batched inference: `inputs.len()` requests simulated as a
    /// single device pass with [`SimOptions::batch`] set to the batch size
    /// (CTA-level grid replication — see `tango_sim::LaunchFrame`).
    ///
    /// The simulator binds one logical copy of the input, so a batch must
    /// be homogeneous: every element identical to the first. This is
    /// exactly the shape a serving coalescer produces (identical requests
    /// folded into one batch); heterogeneous batching would need
    /// per-replica device buffers, which the kernels do not address yet.
    /// The returned report's output and per-layer outputs are identical to
    /// an unbatched run; its cycle counts are the batched cost.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadInput`] if `inputs` is empty, any element
    /// differs from the first, or the first does not match
    /// [`input_spec`](Self::input_spec).
    pub fn infer_batch(&self, gpu: &mut Gpu, inputs: &[NetworkInput], opts: &SimOptions) -> Result<InferenceReport> {
        let name = self.kind.name();
        let first = inputs
            .first()
            .ok_or_else(|| NetError::bad_input(name, "batch must contain at least one input"))?;
        if let Some(pos) = inputs.iter().position(|i| i != first) {
            return Err(NetError::bad_input(
                name,
                format!("batch must be homogeneous; input {pos} differs from input 0"),
            ));
        }
        self.bind_input(gpu, first)?;
        self.run_layers(gpu, &opts.clone().with_batch(inputs.len() as u32))
    }

    /// Uploads `input` into the network's device-resident input slot.
    fn bind_input(&self, gpu: &mut Gpu, input: &NetworkInput) -> Result<()> {
        let name = self.kind.name();
        match (&self.input_slot, input) {
            (InputSlot::Image(slot), NetworkInput::Image(host)) => {
                slot.overwrite(gpu, host)
                    .map_err(|e| NetError::bad_input("network", e.to_string()))?;
            }
            (InputSlot::Sequence(slots), NetworkInput::Sequence(steps)) => {
                if slots.len() != steps.len() {
                    return Err(NetError::bad_input(
                        name,
                        format!("expected {} time steps, got {}", slots.len(), steps.len()),
                    ));
                }
                for (slot, host) in slots.iter().zip(steps) {
                    slot.overwrite(gpu, host)
                        .map_err(|e| NetError::bad_input("network", e.to_string()))?;
                }
            }
            (InputSlot::Image(_), _) => {
                return Err(NetError::bad_input(name, "expected an image input"));
            }
            (InputSlot::Sequence(_), _) => {
                return Err(NetError::bad_input(name, "expected a sequence input"));
            }
        }
        Ok(())
    }

    /// Simulates every layer kernel under `opts` and assembles the report.
    fn run_layers(&self, gpu: &mut Gpu, opts: &SimOptions) -> Result<InferenceReport> {
        let _infer_span = tango_obs::vspan("net.infer", self.kind.name());
        let mut records = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            if std::env::var_os("TANGO_TRACE_LAYERS").is_some() {
                eprintln!("[tango] running layer {}", layer.name);
            }
            let _layer_span = tango_obs::vspan("net.layer", &layer.name);
            let stats = layer.run(gpu, opts);
            records.push(LayerRecord {
                name: layer.name.clone(),
                layer_type: layer.layer_type,
                stats,
            });
        }
        Ok(InferenceReport {
            output: self.output.download(gpu),
            records,
        })
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("kind", &self.kind)
            .field("preset", &self.preset)
            .field("layers", &self.layers.len())
            .field("weight_bytes", &self.weight_bytes)
            .finish()
    }
}

/// Output and statistics of one simulated inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// The network output (class scores/probabilities or the forecast).
    pub output: Tensor,
    /// Per-layer statistics, in execution order.
    pub records: Vec<LayerRecord>,
}

impl InferenceReport {
    /// Total simulated cycles across layers.
    pub fn total_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.stats.cycles).sum()
    }

    /// Total simulated kernel time in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.records.iter().map(|r| r.stats.time_s).sum()
    }

    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.records.iter().map(|r| r.stats.energy.total()).sum()
    }

    /// Maximum windowed power across all layers — the paper's "peak power
    /// ever measured during network execution" (Figure 3).
    pub fn peak_power_w(&self) -> f64 {
        self.records.iter().map(|r| r.stats.peak_power_w).fold(0.0, f64::max)
    }
}
