//! VGGNet-16: thirteen 3x3 convolutions in five blocks separated by 2x2
//! pools, three fully-connected layers, and a softmax.

use crate::builder::NetBuilder;
use crate::layer::LayerType;
use crate::network::{Network, NetworkKind, Preset};
use crate::Result;
use tango_sim::Gpu;

struct Dims {
    input: u32,
    blocks: [(u32, u32); 5], // (channels, conv count)
    fc: u32,
    classes: u32,
}

fn dims(preset: Preset) -> Dims {
    match preset {
        Preset::Paper => Dims {
            input: 224,
            blocks: [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)],
            fc: 4096,
            classes: 1000,
        },
        Preset::Bench => Dims {
            input: 64,
            blocks: [(8, 2), (16, 2), (32, 3), (64, 3), (64, 3)],
            fc: 256,
            classes: 250,
        },
        Preset::Tiny => Dims {
            input: 32,
            blocks: [(4, 2), (8, 2), (8, 3), (16, 3), (16, 3)],
            fc: 32,
            classes: 10,
        },
    }
}

/// Builds VGGNet-16 at `preset` scale with deterministic synthetic
/// weights.
///
/// # Errors
///
/// Propagates kernel-construction failures (dimension-table bugs).
pub fn build(gpu: &mut Gpu, preset: Preset, seed: u64) -> Result<Network> {
    let d = dims(preset);
    let mut b = NetBuilder::image_input(gpu, seed, 3, d.input, d.input, 1);
    for (bi, &(channels, convs)) in d.blocks.iter().enumerate() {
        for ci in 0..convs {
            // The last conv before a pool needs no output halo; the others
            // feed another 3x3 pad-1 conv.
            let out_pad = if ci + 1 == convs { 0 } else { 1 };
            b.conv(
                &format!("conv{}_{}", bi + 1, ci + 1),
                LayerType::Conv,
                channels,
                3,
                1,
                1,
                true,
                out_pad,
            )?;
        }
        // Pool output feeds the next block's pad-1 conv (or the FC head).
        let out_pad = if bi + 1 == d.blocks.len() { 0 } else { 1 };
        b.max_pool(&format!("pool{}", bi + 1), 2, 2, out_pad)?;
    }
    b.fc("fc6", d.fc, 8, true)?;
    b.fc("fc7", d.fc, 8, true)?;
    b.fc("fc8", d.classes, 10, false)?;
    b.softmax("softmax")?;
    Ok(b.finish(NetworkKind::VggNet16, preset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkInput;
    use tango_sim::{GpuConfig, SimOptions};
    use tango_tensor::{Shape, SplitMix64, Tensor};

    #[test]
    fn paper_preset_is_16_weight_layers() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Paper, 1).unwrap();
        let convs = net.layers().iter().filter(|l| l.layer_type() == LayerType::Conv).count();
        let fcs = net.layers().iter().filter(|l| l.layer_type() == LayerType::Fc).count();
        let pools = net.layers().iter().filter(|l| l.layer_type() == LayerType::Pool).count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
        assert_eq!(pools, 5);
        // ~138M parameters.
        let params = net.weight_bytes() / 4;
        assert!((120_000_000..150_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn tiny_inference_runs() {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build(&mut gpu, Preset::Tiny, 2).unwrap();
        let mut rng = SplitMix64::new(50);
        let image = Tensor::uniform(Shape::nchw(1, 3, 32, 32), 0.0, 1.0, &mut rng);
        let report = net
            .infer(&mut gpu, &NetworkInput::Image(image), &SimOptions::new())
            .unwrap();
        let sum: f32 = report.output.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
    }
}
