//! The seven Tango networks, built over `tango-kernels` and runnable on
//! the `tango-sim` GPU: five CNNs (CifarNet, AlexNet, SqueezeNet,
//! ResNet-50, VGGNet-16) and two RNNs (GRU, LSTM).
//!
//! The paper ships pre-trained Caffe/Kaggle models (its Table I); this
//! reproduction substitutes deterministic synthetic weights with the exact
//! architecture shapes (see DESIGN.md), so parameter counts, memory
//! footprints, launch geometry, and every timing/power statistic match the
//! structural properties the paper characterizes.
//!
//! # Example
//!
//! ```
//! use tango_nets::{build_network, synthetic_input, NetworkKind, Preset};
//! use tango_sim::{Gpu, GpuConfig, SimOptions};
//!
//! # fn main() -> Result<(), tango_nets::NetError> {
//! let mut gpu = Gpu::new(GpuConfig::gp102());
//! let net = build_network(&mut gpu, NetworkKind::CifarNet, Preset::Tiny, 42)?;
//! let input = synthetic_input(net.input_spec(), 42);
//! let report = net.infer(&mut gpu, &input, &SimOptions::new())?;
//! println!("predicted class {}", report.output.argmax());
//! assert_eq!(report.records.len(), net.layers().len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alexnet;
mod builder;
mod cifarnet;
mod error;
pub mod io;
mod layer;
mod mobilenet;
mod network;
mod resnet;
mod rnn;
mod squeezenet;
pub mod train;
mod vggnet;
mod zoo;

pub use error::NetError;
pub use layer::{GemmShape, Layer, LayerRecord, LayerType, LayerWork};
pub use network::{InferenceReport, InputSpec, Network, NetworkInput, NetworkKind, Preset};
pub use rnn::synthetic_price_window;
pub use zoo::{build_network, model_info, synthetic_input, ModelInfo};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetError>;
