//! Conformance: every kernel of every network at every preset passes the
//! static verifier with no error-severity diagnostics.
//!
//! This is the suite-wide half of the verifier contract. (The negative
//! half — each diagnostic kind firing on a purpose-built bad kernel —
//! lives in `tango_isa::verify`'s unit tests.) `LayerKernel::new` already
//! panics on error diagnostics in debug builds, so this test would fail
//! at construction too; running the verifier explicitly also asserts the
//! *warning* level stays clean and keeps the contract enforced in
//! release-mode test runs.

use tango_isa::verify::{verify_launch, LaunchSpec, Severity};
use tango_nets::{build_network, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig};

const SEED: u64 = 0x7A16_0201_9151;

fn check_suite(preset: Preset) {
    for kind in NetworkKind::EXTENDED {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_network(&mut gpu, kind, preset, SEED)
            .unwrap_or_else(|e| panic!("cannot build {}@{}: {e}", kind.name(), preset.name()));
        for layer in net.layers() {
            let k = layer.kernel();
            let spec = LaunchSpec {
                grid: k.grid(),
                block: k.block(),
                params: None,
                param_align: 256,
                mem_bytes: None,
            };
            let report = verify_launch(k.program(), &spec);
            let bad: Vec<String> = report
                .diagnostics
                .iter()
                .filter(|d| d.kind.severity() >= Severity::Warning)
                .map(|d| d.to_string())
                .collect();
            assert!(
                bad.is_empty(),
                "{}@{} kernel `{}` (layer {}):\n{}",
                kind.name(),
                preset.name(),
                k.program().name(),
                layer.name(),
                bad.join("\n")
            );
        }
    }
}

#[test]
fn tiny_preset_kernels_verify_clean() {
    check_suite(Preset::Tiny);
}

#[test]
fn bench_preset_kernels_verify_clean() {
    check_suite(Preset::Bench);
}

#[test]
fn paper_preset_kernels_verify_clean() {
    check_suite(Preset::Paper);
}
