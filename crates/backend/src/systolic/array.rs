//! The cycle model of the weight-stationary MAC grid, and a small
//! functional GEMM that computes real outputs at each supported
//! precision (the path the quantization accuracy tests pin).
//!
//! # Microarchitecture modelled
//!
//! A `rows x cols` grid of MACs holds one weight tile stationary
//! (`rows` reduction taps by `cols` output channels). Activations
//! stream in from the unified buffer one row per cycle and results
//! drain into per-column accumulators of depth `acc_depth`. Weight
//! tiles load from DRAM through a fill FIFO at
//! `weight_bytes_per_cycle`; the fill of tile *i+1* is double-buffered
//! behind the compute of tile *i*, so only the *excess* fill time shows
//! up as stall. Activation reads are bounded by
//! `ub_bytes_per_cycle`; the unified buffer itself is split in two
//! (double-buffered), which caps how many GEMM rows a pass may carry.
//!
//! All timing arithmetic is integer, so a timing is a pure function of
//! `(config, shape, batch, precision)` — the determinism the store key
//! relies on.

use super::SystolicConfig;
use crate::Precision;
use tango_kernels::{quantize_weights, quantize_weights_i8};
use tango_nets::{GemmShape, LayerWork};
use tango_tensor::Tensor;

/// Cycle accounting for one lowered layer on the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmTiming {
    /// Total cycles, stalls included.
    pub cycles: u64,
    /// Cycles lost waiting on weight-tile fills the double buffer could
    /// not hide.
    pub fill_stall_cycles: u64,
    /// Cycles lost waiting on unified-buffer activation bandwidth.
    pub act_stall_cycles: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// Weight bytes streamed from DRAM (reloads across accumulator
    /// passes included — the capacity effect of `acc_depth`).
    pub weight_bytes: u64,
    /// Unified-buffer bytes moved (activation reads + result writes).
    pub ub_bytes: u64,
}

impl GemmTiming {
    /// An all-zero timing (fused / free layer).
    pub fn zero() -> Self {
        GemmTiming {
            cycles: 0,
            fill_stall_cycles: 0,
            act_stall_cycles: 0,
            macs: 0,
            weight_bytes: 0,
            ub_bytes: 0,
        }
    }

    /// Total stall cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.fill_stall_cycles + self.act_stall_cycles
    }
}

/// Rows one pass may carry: bounded by the accumulator depth and by
/// half the unified buffer (the other half is the double buffer's
/// in-flight side) holding a full `m_pass x K` activation panel.
fn rows_per_pass(cfg: &SystolicConfig, k: u64) -> u64 {
    let ub_rows = (cfg.unified_buffer_bytes / 2) / (k.max(1) * 4);
    u64::from(cfg.acc_depth).min(ub_rows).max(1)
}

/// Times one lowered GEMM (`batch` stacked copies of its `M` rows) on
/// the array. Pure integer arithmetic; see the module docs for the
/// pipeline being counted.
pub fn gemm_timing(cfg: &SystolicConfig, shape: GemmShape, batch: u32, precision: Precision) -> GemmTiming {
    let (rows, cols) = (u64::from(cfg.rows), u64::from(cfg.cols));
    let m_total = shape.m * u64::from(batch).max(1);
    let k_tiles = shape.k.div_ceil(rows);
    let n_tiles = shape.n.div_ceil(cols);
    let m_pass = rows_per_pass(cfg, shape.k);
    let m_tiles = m_total.div_ceil(m_pass);
    let wbytes = precision.weight_bytes();
    let wfill_bw = u64::from(cfg.weight_bytes_per_cycle).max(1);
    let ub_bw = u64::from(cfg.ub_bytes_per_cycle).max(1);

    let mut t = GemmTiming::zero();
    // The previous tile's compute window, which the next fill hides
    // behind. Starts at 0: the very first fill is fully exposed.
    let mut prev_compute = 0u64;
    for mt in 0..m_tiles {
        let m_r = m_pass.min(m_total - mt * m_pass);
        // Weight-stationary: every pass over a fresh row panel must
        // re-walk all (n, k) weight tiles — the accumulator-capacity
        // cost of a deep M.
        for nt in 0..n_tiles {
            let tc = cols.min(shape.n - nt * cols);
            for kt in 0..k_tiles {
                let tr = rows.min(shape.k - kt * rows);
                let tile_weight_bytes = tr * tc * wbytes;
                // Loading a tile takes `tr` shift-in cycles or the FIFO
                // fill time, whichever dominates.
                let fill = tr.max(tile_weight_bytes.div_ceil(wfill_bw));
                let fill_stall = fill.saturating_sub(prev_compute);
                // Streaming m_r activation rows through a tr x tc grid:
                // pipeline depth tr + tc, one row per cycle.
                let compute = m_r + tr + tc - 1;
                let act_bytes = m_r * tr * 4;
                let act_stall = act_bytes.div_ceil(ub_bw).saturating_sub(compute);
                t.cycles += fill_stall + compute + act_stall;
                t.fill_stall_cycles += fill_stall;
                t.act_stall_cycles += act_stall;
                t.macs += m_r * tr * tc;
                t.weight_bytes += tile_weight_bytes;
                t.ub_bytes += act_bytes;
                prev_compute = compute;
            }
            // Accumulators write the finished m_r x tc panel back.
            t.ub_bytes += m_r * tc * 4;
        }
    }
    t
}

/// Times a non-GEMM layer on the post-array vector unit (pooling,
/// normalization, elementwise, softmax): `lanes` elements per cycle
/// plus a fixed issue overhead. The MAC grid idles, so these layers
/// report zero array utilization.
pub fn vector_timing(cfg: &SystolicConfig, work: &LayerWork, batch: u32) -> GemmTiming {
    let elems = work.output_elems * u64::from(batch).max(1);
    let ops = work.macs * u64::from(batch).max(1);
    let cycles = ops.div_ceil(u64::from(cfg.vector_lanes).max(1)) + cfg.vector_overhead_cycles;
    GemmTiming {
        cycles,
        fill_stall_cycles: 0,
        act_stall_cycles: 0,
        macs: 0, // the MAC grid did nothing; vector ops are not array MACs
        weight_bytes: work.weight_bytes, // stats/scale streams load once per dispatch
        ub_bytes: 2 * elems * 4, // read + write each element once
    }
}

/// Runs a real `M x K` by `K x N` GEMM functionally at `precision`:
/// fp32 multiplies against the float weights, int16/int8 against the
/// `tango_kernels::quant` fixed-point weights dequantized by their
/// per-tensor scale. Accumulation order is ascending `k` — identical to
/// the array's tile walk (tiles partition `k` in order) — so results
/// are bit-deterministic and the int-vs-fp32 delta is a stable,
/// testable quantity.
///
/// `a` must be `M x K` row-major, `w` must be `K x N` row-major.
///
/// # Panics
///
/// Panics when the operand lengths are not `m*k` and `k*n`.
pub fn run_gemm(a: &Tensor, w: &Tensor, m: usize, k: usize, n: usize, precision: Precision) -> Vec<f32> {
    assert_eq!(a.as_slice().len(), m * k, "A must be M x K");
    assert_eq!(w.as_slice().len(), k * n, "W must be K x N");
    let wd: Vec<f32> = match precision {
        Precision::Fp32 => w.as_slice().to_vec(),
        Precision::Int16 => {
            let (q, scale) = quantize_weights(w);
            q.iter().map(|&v| f32::from(v) * scale).collect()
        }
        Precision::Int8 => {
            let (q, scale) = quantize_weights_i8(w);
            q.iter().map(|&v| f32::from(v) * scale).collect()
        }
    };
    let av = a.as_slice();
    let mut c = vec![0.0f32; m * n];
    for mi in 0..m {
        for ni in 0..n {
            let mut acc = 0.0f32;
            for ki in 0..k {
                acc += av[mi * k + ki] * wd[ki * n + ni];
            }
            c[mi * n + ni] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_tensor::{Shape, SplitMix64};

    fn cfg() -> SystolicConfig {
        SystolicConfig::edge()
    }

    #[test]
    fn timing_is_deterministic_and_macs_are_exact() {
        let shape = GemmShape { m: 100, k: 200, n: 96 };
        let a = gemm_timing(&cfg(), shape, 1, Precision::Fp32);
        let b = gemm_timing(&cfg(), shape, 1, Precision::Fp32);
        assert_eq!(a, b);
        assert_eq!(a.macs, shape.macs());
        assert!(a.cycles > 0);
    }

    #[test]
    fn utilization_never_exceeds_the_grid() {
        let c = cfg();
        for shape in [
            GemmShape { m: 1, k: 10, n: 10 },
            GemmShape { m: 1000, k: 64, n: 64 },
            GemmShape { m: 64, k: 500, n: 3 },
        ] {
            let t = gemm_timing(&c, shape, 1, Precision::Fp32);
            let peak = t.cycles as f64 * f64::from(c.rows) * f64::from(c.cols);
            assert!(t.macs as f64 <= peak, "{shape:?}: {} macs in {} cycles", t.macs, t.cycles);
        }
    }

    #[test]
    fn narrow_weights_stream_fewer_bytes_and_stall_less() {
        let shape = GemmShape { m: 4, k: 2000, n: 512 }; // FC-like: fill-bound
        let fp32 = gemm_timing(&cfg(), shape, 1, Precision::Fp32);
        let int8 = gemm_timing(&cfg(), shape, 1, Precision::Int8);
        assert_eq!(fp32.weight_bytes, 4 * int8.weight_bytes);
        assert!(int8.fill_stall_cycles < fp32.fill_stall_cycles, "int8 quarters the fill traffic");
        assert!(int8.cycles < fp32.cycles);
        assert_eq!(fp32.macs, int8.macs, "precision changes time, not work");
    }

    #[test]
    fn batching_amortizes_weight_fills() {
        let shape = GemmShape { m: 1, k: 512, n: 512 }; // mat-vec: the RNN serve case
        let one = gemm_timing(&cfg(), shape, 1, Precision::Fp32);
        let eight = gemm_timing(&cfg(), shape, 8, Precision::Fp32);
        assert!(
            eight.cycles < 8 * one.cycles,
            "batch 8 ({}) must beat 8x batch 1 ({})",
            eight.cycles,
            8 * one.cycles
        );
        assert_eq!(eight.macs, 8 * one.macs);
    }

    #[test]
    fn deep_m_reloads_weights_across_accumulator_passes() {
        let c = cfg();
        let shallow = gemm_timing(&c, GemmShape { m: 10, k: 64, n: 64 }, 1, Precision::Fp32);
        let deep_m = 10 * u64::from(c.acc_depth);
        let deep = gemm_timing(&c, GemmShape { m: deep_m, k: 64, n: 64 }, 1, Precision::Fp32);
        assert!(
            deep.weight_bytes > shallow.weight_bytes,
            "M beyond acc_depth must re-stream the weight tiles"
        );
    }

    #[test]
    fn functional_gemm_matches_a_hand_result_and_quantization_degrades_gracefully() {
        let mut rng = SplitMix64::new(77);
        let (m, k, n) = (4, 32, 8);
        let a = Tensor::uniform(Shape::new(&[m, k]), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::new(&[k, n]), -0.5, 0.5, &mut rng);
        let fp = run_gemm(&a, &w, m, k, n, Precision::Fp32);
        let i16r = run_gemm(&a, &w, m, k, n, Precision::Int16);
        let i8r = run_gemm(&a, &w, m, k, n, Precision::Int8);
        let delta = |x: &[f32]| {
            x.iter()
                .zip(&fp)
                .map(|(v, r)| (v - r).abs())
                .fold(0.0f32, f32::max)
        };
        let (d16, d8) = (delta(&i16r), delta(&i8r));
        assert!(d16 > 0.0 && d16 < 1e-3, "int16 delta {d16}");
        assert!(d8 >= d16, "int8 ({d8}) cannot beat int16 ({d16})");
        assert!(d8 < 0.1, "int8 delta {d8}");
        // Bit-exact repeatability: same inputs, same bits.
        assert_eq!(i8r, run_gemm(&a, &w, m, k, n, Precision::Int8));
    }
}
