//! A cycle-level weight-stationary systolic array (TPU-style).
//!
//! The machine: a square MAC grid fed by a double-buffered unified
//! on-chip buffer, per-column accumulators, a DRAM weight-fill FIFO,
//! and a post-array vector unit for the layers that are not matrix
//! multiplies. ReLU is fused into the accumulator drain, so it costs
//! zero cycles — the classic TPU activation-on-the-way-out trick.
//!
//! [`SystolicBackend`] lowers a network with [`crate::lower::LoweredNet`],
//! tiles every GEMM-shaped layer onto the grid with
//! [`array::gemm_timing`], routes the rest through
//! [`array::vector_timing`], and reports per-layer cycles, stalls,
//! utilization, and energy as a [`BackendRun`]. Weights may be fp32 or
//! the `tango_kernels::quant` int16/int8 fixed-point formats — narrower
//! weights quarter/halve the fill traffic, which is the whole
//! quantization story on this machine.

mod array;

pub use array::{gemm_timing, run_gemm, vector_timing, GemmTiming};

use crate::lower::LoweredNet;
use crate::{Backend, BackendError, BackendJob, BackendKind, BackendLayerStats, BackendRun, Precision};

/// Every architectural parameter of the modelled array. All integers, so
/// timings derived from a config are exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicConfig {
    /// Display name (appears in comparison tables and store keys).
    pub name: String,
    /// MAC grid rows (the reduction dimension).
    pub rows: u32,
    /// MAC grid columns (the output-channel dimension).
    pub cols: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Unified on-chip buffer capacity in bytes (half usable per pass —
    /// the other half is the double buffer's in-flight side).
    pub unified_buffer_bytes: u64,
    /// Accumulator depth: GEMM rows one pass may hold before weights
    /// must be re-streamed.
    pub acc_depth: u32,
    /// DRAM weight-fill bandwidth in bytes per core cycle.
    pub weight_bytes_per_cycle: u32,
    /// Unified-buffer activation bandwidth in bytes per core cycle.
    pub ub_bytes_per_cycle: u32,
    /// Post-array vector unit lanes (elements per cycle).
    pub vector_lanes: u32,
    /// Fixed vector-op issue overhead in cycles.
    pub vector_overhead_cycles: u64,
    /// Energy per fp32 MAC, picojoules.
    pub mac_fp32_pj: f64,
    /// Energy per int16 MAC, picojoules.
    pub mac_int16_pj: f64,
    /// Energy per int8 MAC, picojoules.
    pub mac_int8_pj: f64,
    /// Energy per unified-buffer byte moved, picojoules.
    pub ub_pj_per_byte: f64,
    /// Energy per DRAM byte streamed, picojoules.
    pub dram_pj_per_byte: f64,
    /// Static (leakage + clock tree) power in watts.
    pub static_w: f64,
}

impl SystolicConfig {
    /// A TPU-v1-class datacenter array: 256x256 grid at 0.7 GHz with a
    /// 24 MiB unified buffer and 4096-deep accumulators.
    pub fn tpu_v1() -> SystolicConfig {
        SystolicConfig {
            name: "TPUv1-256x256".to_string(),
            rows: 256,
            cols: 256,
            clock_ghz: 0.7,
            unified_buffer_bytes: 24 * 1024 * 1024,
            acc_depth: 4096,
            weight_bytes_per_cycle: 43, // ~30 GB/s DDR3 at 0.7 GHz
            ub_bytes_per_cycle: 256,
            vector_lanes: 256,
            vector_overhead_cycles: 64,
            mac_fp32_pj: 4.6,
            mac_int16_pj: 1.2,
            mac_int8_pj: 0.4,
            ub_pj_per_byte: 0.3,
            dram_pj_per_byte: 20.0,
            static_w: 40.0,
        }
    }

    /// An edge-class array sized like the suite's embedded boards:
    /// 64x64 grid, 2 MiB unified buffer — small enough that the paper's
    /// tiny networks cannot trivially hide every weight fill. This is
    /// the harness's default systolic device.
    pub fn edge() -> SystolicConfig {
        SystolicConfig {
            name: "edge-64x64".to_string(),
            rows: 64,
            cols: 64,
            clock_ghz: 0.7,
            unified_buffer_bytes: 2 * 1024 * 1024,
            acc_depth: 2048,
            weight_bytes_per_cycle: 16,
            ub_bytes_per_cycle: 128,
            vector_lanes: 64,
            vector_overhead_cycles: 32,
            mac_fp32_pj: 4.6,
            mac_int16_pj: 1.2,
            mac_int8_pj: 0.4,
            ub_pj_per_byte: 0.3,
            dram_pj_per_byte: 20.0,
            static_w: 2.0,
        }
    }

    /// Energy of one MAC at `precision`, picojoules.
    pub fn mac_pj(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp32 => self.mac_fp32_pj,
            Precision::Int16 => self.mac_int16_pj,
            Precision::Int8 => self.mac_int8_pj,
        }
    }

    /// Peak MAC throughput per cycle (`rows * cols`).
    pub fn peak_macs_per_cycle(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }
}

/// The systolic-array [`Backend`] implementation.
#[derive(Debug, Clone)]
pub struct SystolicBackend {
    config: SystolicConfig,
}

impl SystolicBackend {
    /// Wraps a hardware description.
    pub fn new(config: SystolicConfig) -> SystolicBackend {
        SystolicBackend { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// Energy for one layer's timing at `precision`: dynamic MAC + UB +
    /// DRAM energy plus the static power burned over the layer's cycles.
    fn layer_energy_j(&self, t: &GemmTiming, vector_ops: u64, precision: Precision) -> f64 {
        let c = &self.config;
        // Grid MACs run at the job's precision; vector ops are always
        // fp32 (activations never narrow in this scheme).
        let dynamic = t.macs as f64 * c.mac_pj(precision)
            + vector_ops as f64 * c.mac_fp32_pj
            + t.ub_bytes as f64 * c.ub_pj_per_byte
            + t.weight_bytes as f64 * c.dram_pj_per_byte;
        let static_j = t.cycles as f64 / (c.clock_ghz * 1e9) * c.static_w;
        dynamic * 1e-12 + static_j
    }
}

impl Backend for SystolicBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Systolic
    }

    fn describe(&self) -> String {
        let c = &self.config;
        format!(
            "{}: {}x{} weight-stationary MAC grid @ {:.2} GHz, {} KiB unified buffer, acc depth {}",
            c.name,
            c.rows,
            c.cols,
            c.clock_ghz,
            c.unified_buffer_bytes / 1024,
            c.acc_depth
        )
    }

    fn run(&self, job: &BackendJob) -> Result<BackendRun, BackendError> {
        let net = LoweredNet::build(job.kind, job.preset, job.seed)?;
        let batch = job.batch.max(1);
        let peak = self.config.peak_macs_per_cycle();
        let mut layers = Vec::with_capacity(net.layers.len());
        for layer in &net.layers {
            let fused = layer.gemm.is_none() && layer.label == "Relu";
            let (timing, vector_ops) = if fused {
                // ReLU folds into the accumulator drain: zero cycles.
                (GemmTiming::zero(), 0)
            } else if let Some(shape) = layer.gemm {
                (gemm_timing(&self.config, shape, batch, job.precision), 0)
            } else {
                let t = vector_timing(&self.config, &layer.work, batch);
                (t, layer.work.macs * u64::from(batch))
            };
            if timing.cycles > 0 {
                let vbase = tango_obs::virtual_now();
                tango_obs::vspan_begin("backend.launch", &layer.name);
                tango_obs::vspan_end_at(vbase + timing.cycles, "backend.launch", &layer.name);
                tango_obs::advance_virtual(timing.cycles);
            }
            let utilization = if timing.cycles == 0 {
                0.0
            } else {
                timing.macs as f64 / (timing.cycles as f64 * peak as f64)
            };
            layers.push(BackendLayerStats {
                name: layer.name.clone(),
                label: layer.label.clone(),
                cycles: timing.cycles,
                macs: layer.work.macs * u64::from(batch),
                stall_cycles: timing.stall_cycles(),
                utilization,
                energy_j: self.layer_energy_j(&timing, vector_ops, job.precision),
            });
        }
        Ok(BackendRun {
            backend: BackendKind::Systolic,
            kind: job.kind,
            batch,
            precision: job.precision,
            clock_ghz: self.config.clock_ghz,
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_nets::{NetworkKind, Preset};

    fn job(kind: NetworkKind, precision: Precision) -> BackendJob {
        BackendJob {
            kind,
            preset: Preset::Tiny,
            seed: 7,
            batch: 1,
            precision,
        }
    }

    #[test]
    fn runs_are_deterministic_and_relu_is_fused() {
        let be = SystolicBackend::new(SystolicConfig::edge());
        let a = be.run(&job(NetworkKind::CifarNet, Precision::Fp32)).unwrap();
        let b = be.run(&job(NetworkKind::CifarNet, Precision::Fp32)).unwrap();
        assert_eq!(a, b);
        assert!(a.total_cycles() > 0);
        assert!(a.utilization() > 0.0 && a.utilization() <= 1.0);
        // Standalone ReLU layers only appear in ResNet's bottlenecks.
        let resnet = be.run(&job(NetworkKind::ResNet50, Precision::Fp32)).unwrap();
        let relu = resnet.layers.iter().find(|l| l.label == "Relu").expect("ResNet has ReLU");
        assert_eq!(relu.cycles, 0, "ReLU fuses into the accumulator drain");
    }

    #[test]
    fn int8_is_faster_and_cheaper_than_fp32() {
        let be = SystolicBackend::new(SystolicConfig::edge());
        let fp32 = be.run(&job(NetworkKind::CifarNet, Precision::Fp32)).unwrap();
        let int8 = be.run(&job(NetworkKind::CifarNet, Precision::Int8)).unwrap();
        assert!(int8.total_cycles() < fp32.total_cycles());
        assert!(int8.total_energy_j() < fp32.total_energy_j());
        assert_eq!(int8.total_macs(), fp32.total_macs());
    }

    #[test]
    fn rnns_run_and_report_gate_gemm_stalls() {
        let be = SystolicBackend::new(SystolicConfig::edge());
        let run = be.run(&job(NetworkKind::Gru, Precision::Fp32)).unwrap();
        assert!(run.total_cycles() > 0);
        // Mat-vec at batch 1 cannot keep a 64x64 grid busy.
        assert!(run.utilization() < 0.5, "util {}", run.utilization());
        assert!(run.total_stall_cycles() > 0, "weight fills must show as stalls");
    }

    #[test]
    fn bigger_arrays_finish_sooner() {
        let j = job(NetworkKind::CifarNet, Precision::Fp32);
        let edge = SystolicBackend::new(SystolicConfig::edge()).run(&j).unwrap();
        let tpu = SystolicBackend::new(SystolicConfig::tpu_v1()).run(&j).unwrap();
        assert!(tpu.total_cycles() < edge.total_cycles());
    }
}
