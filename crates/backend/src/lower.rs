//! The shared lowering pass: one network description -> the per-layer
//! workload every backend consumes.
//!
//! Network construction never consults the accelerator (kernel geometry
//! and weights are properties of `(kind, preset, seed)` alone — the same
//! fact `tango::BuildSpec` relies on), so all three backends lower
//! through this one pass and are guaranteed to agree on layer names,
//! order, MAC counts, and GEMM shapes. That agreement is what makes the
//! per-layer comparison table meaningful.

use crate::BackendError;
use tango_nets::{build_network, GemmShape, LayerWork, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig};

/// One layer after lowering: its identity plus the analytic workload and
/// (when MAC-dominated) the dense GEMM a matrix accelerator tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredLayer {
    /// Layer name (e.g. `conv2_1`).
    pub name: String,
    /// Figure-taxonomy label (`Conv`, `FC`, ...).
    pub label: String,
    /// Analytic workload (MACs, weight bytes, output elements).
    pub work: LayerWork,
    /// Dense GEMM shape, `None` for vector-unit layers.
    pub gemm: Option<GemmShape>,
}

/// A whole network lowered to backend-neutral form.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredNet {
    /// Which network was lowered.
    pub kind: NetworkKind,
    /// Per-layer workloads in execution order.
    pub layers: Vec<LoweredLayer>,
}

impl LoweredNet {
    /// Builds `kind` at `preset`/`seed` (on a scratch device — geometry
    /// is device-independent) and lowers every layer.
    ///
    /// # Errors
    ///
    /// Propagates network-construction failures.
    pub fn build(kind: NetworkKind, preset: Preset, seed: u64) -> Result<LoweredNet, BackendError> {
        let mut gpu = Gpu::new(GpuConfig::gp102());
        let net = build_network(&mut gpu, kind, preset, seed)?;
        let layers = net
            .layers()
            .iter()
            .map(|layer| LoweredLayer {
                name: layer.name().to_string(),
                label: layer.layer_type().label().to_string(),
                work: layer.work(),
                gemm: layer.gemm(),
            })
            .collect();
        Ok(LoweredNet { kind, layers })
    }

    /// Total MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.work.macs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_is_deterministic_and_covers_every_layer() {
        let a = LoweredNet::build(NetworkKind::CifarNet, Preset::Tiny, 7).unwrap();
        let b = LoweredNet::build(NetworkKind::CifarNet, Preset::Tiny, 7).unwrap();
        assert_eq!(a, b);
        assert!(!a.layers.is_empty());
        assert!(a.layers.iter().any(|l| l.gemm.is_some()), "a CNN must lower conv layers to GEMMs");
        assert!(a.total_macs() > 0);
    }

    #[test]
    fn rnn_layers_lower_to_gate_gemms() {
        let net = LoweredNet::build(NetworkKind::Gru, Preset::Tiny, 7).unwrap();
        let gemms = net.layers.iter().filter(|l| l.gemm.is_some()).count();
        assert!(gemms > 0, "GRU steps must lower to fused gate GEMMs");
    }
}
