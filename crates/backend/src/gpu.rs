//! The SIMT GPU simulator as a [`Backend`]: a thin adapter over
//! `tango::simulate_run` that reshapes the simulator's per-layer
//! [`tango_nets::LayerRecord`]s into the backend-neutral
//! [`BackendRun`] form. The simulator already advances the `tango-obs`
//! virtual clock per kernel launch, so the adapter only wraps the run
//! in a `backend.launch` span covering exactly those cycles.

use crate::lower::LoweredNet;
use crate::{Backend, BackendError, BackendJob, BackendKind, BackendLayerStats, BackendRun, Precision};
use tango::{simulate_run, NetworkRun, RunSpec};
use tango_sim::{GpuConfig, SimOptions};

/// The cycle-level SIMT simulator behind the [`Backend`] trait.
#[derive(Debug, Clone)]
pub struct GpuBackend {
    config: GpuConfig,
}

impl GpuBackend {
    /// Wraps a device configuration (e.g. `GpuConfig::gp102()`).
    pub fn new(config: GpuConfig) -> GpuBackend {
        GpuBackend { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }
}

/// Reshapes a simulator [`NetworkRun`] into the backend-neutral form,
/// pairing each layer record with its lowered workload (the two lists
/// come from the same `Network::layers()` walk, so they zip 1:1).
///
/// Per layer: stall cycles are the gap between actual cycles and the
/// ideal issue-limited cycles (`warp_instructions / issue_width`), and
/// utilization is the fraction of issue slots filled — the SIMT
/// analogue of the systolic grid's MAC occupancy.
pub fn convert_gpu_run(run: &NetworkRun, config: &GpuConfig, lowered: &LoweredNet, batch: u32) -> BackendRun {
    let issue = u64::from(config.issue_width).max(1);
    let layers = run
        .report
        .records
        .iter()
        .zip(&lowered.layers)
        .map(|(record, low)| {
            let cycles = record.stats.cycles;
            let ideal = record.stats.warp_instructions.div_ceil(issue);
            let utilization = if cycles == 0 {
                0.0
            } else {
                (record.stats.warp_instructions as f64 / (cycles as f64 * issue as f64)).min(1.0)
            };
            BackendLayerStats {
                name: record.name.clone(),
                label: record.layer_type.label().to_string(),
                cycles,
                macs: low.work.macs * u64::from(batch.max(1)),
                stall_cycles: cycles.saturating_sub(ideal),
                utilization,
                energy_j: record.stats.energy.total(),
            }
        })
        .collect();
    BackendRun {
        backend: BackendKind::Gpu,
        kind: run.kind,
        batch: batch.max(1),
        precision: Precision::Fp32,
        clock_ghz: config.clock_ghz,
        layers,
    }
}

impl Backend for GpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Gpu
    }

    fn describe(&self) -> String {
        format!(
            "{}: SIMT simulator, issue width {} @ {:.2} GHz",
            self.config.name, self.config.issue_width, self.config.clock_ghz
        )
    }

    fn run(&self, job: &BackendJob) -> Result<BackendRun, BackendError> {
        if job.precision != Precision::Fp32 {
            return Err(BackendError::Unsupported {
                backend: BackendKind::Gpu,
                reason: format!("{} weights (the SIMT kernel pipeline is fp32-only)", job.precision),
            });
        }
        let lowered = LoweredNet::build(job.kind, job.preset, job.seed)?;
        let spec = RunSpec {
            config: self.config.clone(),
            preset: job.preset,
            seed: job.seed,
            kind: job.kind,
            options: SimOptions::new().with_batch(job.batch.max(1)),
        };
        // The simulator advances the virtual clock per kernel launch;
        // bracket the whole inference so `backend.launch` covers exactly
        // the simulated cycles, matching the other backends' contract.
        let vbase = tango_obs::virtual_now();
        tango_obs::vspan_begin("backend.launch", job.kind.name());
        let run = simulate_run(&spec).map_err(BackendError::Tango)?;
        tango_obs::vspan_end_at(vbase + run.report.total_cycles(), "backend.launch", job.kind.name());
        Ok(convert_gpu_run(&run, &self.config, &lowered, job.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_nets::{NetworkKind, Preset};

    #[test]
    fn gpu_runs_are_deterministic_and_reject_narrow_weights() {
        let be = GpuBackend::new(GpuConfig::gp102());
        let job = BackendJob {
            kind: NetworkKind::CifarNet,
            preset: Preset::Tiny,
            seed: 7,
            batch: 1,
            precision: Precision::Fp32,
        };
        let a = be.run(&job).unwrap();
        let b = be.run(&job).unwrap();
        assert_eq!(a, b);
        assert!(a.total_cycles() > 0);
        assert!(a.total_macs() > 0);
        assert!(a.utilization() > 0.0 && a.utilization() <= 1.0);

        let narrow = BackendJob { precision: Precision::Int8, ..job };
        let err = be.run(&narrow).unwrap_err();
        assert!(matches!(err, BackendError::Unsupported { backend: BackendKind::Gpu, .. }), "{err}");
    }
}
