//! The PynQ-Z1 dataflow model as a [`Backend`].
//!
//! `tango-fpga` reports seconds; the trait contract is cycles on an
//! observable virtual clock. The adapter quantizes each layer's
//! analytic time to whole fabric cycles (at `fabric_mhz`) and emits one
//! `backend.launch` span per layer, so per-layer cycles sum *exactly*
//! to the reported total — the same invariant the other backends keep.
//!
//! Batching reuses staged weights: the MAC-bound compute term scales
//! with the batch while the DDR weight stream and per-partition
//! reconfiguration are paid once per dispatch (that split is what
//! [`tango_fpga::LayerTimeParts`] exists for).

use crate::lower::LoweredNet;
use crate::{Backend, BackendError, BackendJob, BackendKind, BackendLayerStats, BackendRun, Precision};
use tango_fpga::{PynqConfig, PynqZ1};

/// The PynQ-Z1 analytic model behind the [`Backend`] trait.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaBackend {
    board: PynqZ1,
}

impl FpgaBackend {
    /// A board with datasheet defaults.
    pub fn new() -> FpgaBackend {
        FpgaBackend { board: PynqZ1::new() }
    }

    /// A board with custom parameters.
    pub fn with_config(config: PynqConfig) -> FpgaBackend {
        FpgaBackend {
            board: PynqZ1::with_config(config),
        }
    }

    /// The underlying board model.
    pub fn board(&self) -> &PynqZ1 {
        &self.board
    }
}

impl Default for FpgaBackend {
    fn default() -> Self {
        FpgaBackend::new()
    }
}

impl Backend for FpgaBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Fpga
    }

    fn describe(&self) -> String {
        let c = self.board.config();
        format!(
            "PynQ-Z1: {} fp32 MACs @ {:.0} MHz fabric, {} KiB BRAM, analytic dataflow",
            c.mac_units,
            c.fabric_mhz,
            c.bram_bytes / 1024
        )
    }

    fn run(&self, job: &BackendJob) -> Result<BackendRun, BackendError> {
        if job.precision != Precision::Fp32 {
            return Err(BackendError::Unsupported {
                backend: BackendKind::Fpga,
                reason: format!("{} weights (the HLS dataflow pipeline is fp32-only)", job.precision),
            });
        }
        let net = LoweredNet::build(job.kind, job.preset, job.seed)?;
        let cfg = *self.board.config();
        let batch = u64::from(job.batch.max(1));
        let cycles_per_s = cfg.fabric_mhz * 1e6;
        let mut layers = Vec::with_capacity(net.layers.len());
        for layer in &net.layers {
            // ReLU fuses into the producing layer's fabric output stage.
            let fused = layer.label == "Relu";
            let (cycles, stall_cycles, time_s, util) = if fused {
                (0, 0, 0.0, 0.0)
            } else {
                let parts = self.board.layer_time_parts(layer.work.macs, layer.work.weight_bytes, layer.work.output_elems);
                // Weights stay staged across the batch; only compute scales.
                let compute_s = parts.compute_s * batch as f64;
                let time_s = compute_s.max(parts.stream_s) + parts.partitions as f64 * cfg.partition_overhead_s;
                let cycles = (time_s * cycles_per_s).round() as u64;
                let compute_cycles = (compute_s * cycles_per_s).round() as u64;
                let stall = cycles.saturating_sub(compute_cycles);
                let util = if cycles == 0 {
                    0.0
                } else {
                    let peak = cycles as f64 * f64::from(cfg.mac_units);
                    ((layer.work.macs * batch) as f64 / peak).min(1.0)
                };
                (cycles, stall, time_s, util)
            };
            if cycles > 0 {
                let vbase = tango_obs::virtual_now();
                tango_obs::vspan_begin("backend.launch", &layer.name);
                tango_obs::vspan_end_at(vbase + cycles, "backend.launch", &layer.name);
                tango_obs::advance_virtual(cycles);
            }
            layers.push(BackendLayerStats {
                name: layer.name.clone(),
                label: layer.label.clone(),
                cycles,
                macs: layer.work.macs * batch,
                stall_cycles,
                utilization: util,
                energy_j: cfg.active_power_w * time_s,
            });
        }
        Ok(BackendRun {
            backend: BackendKind::Fpga,
            kind: job.kind,
            batch: job.batch.max(1),
            precision: Precision::Fp32,
            clock_ghz: cfg.fabric_mhz / 1000.0,
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_nets::{NetworkKind, Preset};

    fn job(kind: NetworkKind) -> BackendJob {
        BackendJob {
            kind,
            preset: Preset::Tiny,
            seed: 7,
            batch: 1,
            precision: Precision::Fp32,
        }
    }

    #[test]
    fn fpga_runs_are_deterministic_and_fuse_relu() {
        let be = FpgaBackend::new();
        let a = be.run(&job(NetworkKind::CifarNet)).unwrap();
        let b = be.run(&job(NetworkKind::CifarNet)).unwrap();
        assert_eq!(a, b);
        assert!(a.total_cycles() > 0);
        assert!(a.layers.iter().filter(|l| l.label == "Relu").all(|l| l.cycles == 0));
        // Energy must agree with the analytic model's peak-power x time.
        let expect = be.board().config().active_power_w * a.time_s();
        assert!((a.total_energy_j() - expect).abs() / expect < 0.01, "{} vs {expect}", a.total_energy_j());
    }

    #[test]
    fn batching_amortizes_staging() {
        let be = FpgaBackend::new();
        let one = be.run(&job(NetworkKind::CifarNet)).unwrap();
        let four = be.run(&BackendJob { batch: 4, ..job(NetworkKind::CifarNet) }).unwrap();
        assert!(four.total_cycles() > one.total_cycles());
        assert!(
            four.total_cycles() < 4 * one.total_cycles(),
            "weights stay staged across the batch: {} vs {}",
            four.total_cycles(),
            4 * one.total_cycles()
        );
    }

    #[test]
    fn narrow_weights_are_rejected() {
        let err = FpgaBackend::new()
            .run(&BackendJob { precision: Precision::Int16, ..job(NetworkKind::Gru) })
            .unwrap_err();
        assert!(matches!(err, BackendError::Unsupported { backend: BackendKind::Fpga, .. }), "{err}");
    }
}
