//! Accelerator backend abstraction: "various accelerators" as a trait.
//!
//! The paper's premise is comparing DNN workloads *across* accelerators,
//! but until this crate the stack was hard-wired to the SIMT GPU
//! simulator, with the PynQ FPGA model bolted on as detached analytic
//! code. [`Backend`] unifies them: lower a network, run it, and report
//! per-layer cycles, stalls, utilization, and energy in one
//! [`BackendRun`] shape — deterministically, so results are
//! content-addressable in the harness `RunStore` and byte-reproducible
//! across hosts and worker counts.
//!
//! Three implementations ship:
//!
//! * [`GpuBackend`] — an adapter over `tango::simulate_run` (the
//!   cycle-level SIMT simulator). fp32 only.
//! * [`SystolicBackend`] — a **new** cycle-level weight-stationary
//!   systolic array (TPU-style): a MAC grid with per-column
//!   accumulators, a double-buffered unified buffer, and a lowering
//!   pass that tiles conv/FC/RNN layers onto the grid via
//!   `tango_nets::GemmShape`. Runs fp32, int16, and int8 (consuming
//!   `tango_kernels::quantize_weights` output for the narrow types).
//! * [`FpgaBackend`] — the `tango-fpga` PynQ-Z1 dataflow model promoted
//!   to a trait citizen (per-layer cycles at the fabric clock). fp32
//!   only.
//!
//! Every backend emits `backend.launch` spans on the `tango-obs`
//! virtual clock that sum *exactly* to the reported total cycles — the
//! same observability contract the GPU simulator honours with its
//! `sim.launch` spans.
//!
//! # Example
//!
//! ```
//! use tango_backend::{run_backend, BackendJob, BackendRunSpec, BackendSpec, Precision, SystolicConfig};
//! use tango_nets::{NetworkKind, Preset};
//!
//! let spec = BackendRunSpec {
//!     spec: BackendSpec::Systolic(SystolicConfig::edge()),
//!     job: BackendJob {
//!         kind: NetworkKind::CifarNet,
//!         preset: Preset::Tiny,
//!         seed: 7,
//!         batch: 1,
//!         precision: Precision::Int8,
//!     },
//! };
//! let run = run_backend(&spec).unwrap();
//! assert!(run.total_cycles() > 0);
//! assert!(run.utilization() <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fpga;
mod gpu;
pub mod lower;
pub mod systolic;

pub use fpga::FpgaBackend;
pub use gpu::{convert_gpu_run, GpuBackend};
pub use systolic::{run_gemm, GemmTiming, SystolicBackend, SystolicConfig};

use std::error::Error;
use std::fmt;
use tango::TangoError;
use tango_nets::{NetError, NetworkKind, Preset};
use tango_sim::GpuConfig;

/// The accelerator families the suite can retarget a network onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendKind {
    /// The cycle-level SIMT GPU simulator (`tango-sim`).
    Gpu,
    /// The cycle-level weight-stationary systolic array.
    Systolic,
    /// The PynQ-Z1 analytic dataflow model (`tango-fpga`).
    Fpga,
}

impl BackendKind {
    /// All backends, in the fixed comparison-table order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Gpu, BackendKind::Systolic, BackendKind::Fpga];

    /// Lower-case name (CLI selector and store-file vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Gpu => "gpu",
            BackendKind::Systolic => "systolic",
            BackendKind::Fpga => "fpga",
        }
    }

    /// Stable numeric code (part of the on-disk schema — append-only).
    pub fn code(self) -> u8 {
        match self {
            BackendKind::Gpu => 0,
            BackendKind::Systolic => 1,
            BackendKind::Fpga => 2,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<BackendKind> {
        Some(match code {
            0 => BackendKind::Gpu,
            1 => BackendKind::Systolic,
            2 => BackendKind::Fpga,
            _ => return None,
        })
    }

    /// Case-insensitive name lookup (`"gpu"`, `"Systolic"`, ...).
    pub fn parse(raw: &str) -> Option<BackendKind> {
        let want = raw.trim().to_lowercase();
        BackendKind::ALL.into_iter().find(|b| b.name() == want)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Arithmetic precision a backend runs its MACs at. Only the weight
/// datatype narrows (W8/W16 with fp32 activations, matching the
/// `tango_kernels::quant` scheme), so the lowering stays functional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// 32-bit float weights (the paper's baseline).
    Fp32,
    /// 16-bit fixed-point weights (`quantize_weights`).
    Int16,
    /// 8-bit fixed-point weights (`quantize_weights_i8`).
    Int8,
}

impl Precision {
    /// All precisions, widest first.
    pub const ALL: [Precision; 3] = [Precision::Fp32, Precision::Int16, Precision::Int8];

    /// Lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Int16 => "int16",
            Precision::Int8 => "int8",
        }
    }

    /// Stable numeric code (on-disk schema — append-only).
    pub fn code(self) -> u8 {
        match self {
            Precision::Fp32 => 0,
            Precision::Int16 => 1,
            Precision::Int8 => 2,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<Precision> {
        Some(match code {
            0 => Precision::Fp32,
            1 => Precision::Int16,
            2 => Precision::Int8,
            _ => return None,
        })
    }

    /// Bytes each weight occupies in transit and on chip.
    pub fn weight_bytes(self) -> u64 {
        match self {
            Precision::Fp32 => 4,
            Precision::Int16 => 2,
            Precision::Int8 => 1,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What to run: the workload half of a backend request. Together with a
/// [`BackendSpec`] this determines the outcome completely, which is what
/// makes the pair content-addressable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendJob {
    /// The network.
    pub kind: NetworkKind,
    /// Network scale preset.
    pub preset: Preset,
    /// Weight/input seed.
    pub seed: u64,
    /// Coalesced inferences per dispatch (>= 1).
    pub batch: u32,
    /// MAC precision (non-fp32 is systolic-only today).
    pub precision: Precision,
}

/// Where to run it: one backend's full hardware description.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// SIMT GPU simulator configuration.
    Gpu(GpuConfig),
    /// Systolic-array configuration.
    Systolic(SystolicConfig),
    /// PynQ FPGA board parameters.
    Fpga(tango_fpga::PynqConfig),
}

impl BackendSpec {
    /// Which backend family the spec describes.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendSpec::Gpu(_) => BackendKind::Gpu,
            BackendSpec::Systolic(_) => BackendKind::Systolic,
            BackendSpec::Fpga(_) => BackendKind::Fpga,
        }
    }

    /// The hardware's display name.
    pub fn device_name(&self) -> &str {
        match self {
            BackendSpec::Gpu(c) => &c.name,
            BackendSpec::Systolic(c) => &c.name,
            BackendSpec::Fpga(_) => "PynQ-Z1",
        }
    }
}

/// A complete backend request: hardware + workload. This is the unit the
/// harness `RunStore` keys and caches.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendRunSpec {
    /// The hardware description.
    pub spec: BackendSpec,
    /// The workload.
    pub job: BackendJob,
}

/// Per-layer statistics every backend reports in the same shape —
/// the `Stats`-compatible common denominator the comparison table and
/// the serve cost model consume.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendLayerStats {
    /// Layer name (e.g. `conv2_1`).
    pub name: String,
    /// Figure-taxonomy label (`Conv`, `FC`, `GRU`, ...).
    pub label: String,
    /// Cycles the layer occupied the accelerator (0 = fused away).
    pub cycles: u64,
    /// Multiply-accumulates performed (batch included).
    pub macs: u64,
    /// Cycles the compute resource sat idle waiting (weight fills,
    /// bandwidth, unissued slots — each backend's own stall notion).
    pub stall_cycles: u64,
    /// Fraction of peak MAC (or issue-slot) capacity used, in [0, 1].
    pub utilization: f64,
    /// Energy attributed to the layer, in joules.
    pub energy_j: f64,
}

/// One network's execution on one backend: the deterministic,
/// store-round-trippable result record.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendRun {
    /// Which backend produced the run.
    pub backend: BackendKind,
    /// The network that ran.
    pub kind: NetworkKind,
    /// Coalesced inferences the run carried.
    pub batch: u32,
    /// MAC precision the run used.
    pub precision: Precision,
    /// The backend's clock, for cycles -> seconds conversion.
    pub clock_ghz: f64,
    /// Per-layer statistics in execution order.
    pub layers: Vec<BackendLayerStats>,
}

impl BackendRun {
    /// Total cycles across all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total MACs across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total stall cycles across all layers.
    pub fn total_stall_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.stall_cycles).sum()
    }

    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_j).sum()
    }

    /// Wall-clock time at the backend's clock, in seconds.
    pub fn time_s(&self) -> f64 {
        self.total_cycles() as f64 / (self.clock_ghz * 1e9)
    }

    /// Cycle-weighted whole-network utilization, in [0, 1].
    pub fn utilization(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        self.layers.iter().map(|l| l.utilization * l.cycles as f64).sum::<f64>() / total as f64
    }
}

/// An accelerator that can lower and run a Tango network. Contract:
/// implementations are **deterministic** (same [`BackendJob`] -> same
/// [`BackendRun`], bit for bit) and emit `backend.launch` virtual spans
/// summing exactly to [`BackendRun::total_cycles`].
pub trait Backend {
    /// The backend family.
    fn kind(&self) -> BackendKind;

    /// One-line human description of the modelled hardware.
    fn describe(&self) -> String;

    /// Lowers and runs `job` end to end.
    ///
    /// # Errors
    ///
    /// [`BackendError::Unsupported`] when the job asks for something the
    /// hardware cannot do (e.g. int8 on the fp32-only GPU pipeline);
    /// otherwise propagates network-construction/simulation failures.
    fn run(&self, job: &BackendJob) -> Result<BackendRun, BackendError>;
}

/// Dispatches `spec` to the matching backend implementation.
///
/// # Errors
///
/// See [`Backend::run`].
pub fn run_backend(spec: &BackendRunSpec) -> Result<BackendRun, BackendError> {
    match &spec.spec {
        BackendSpec::Gpu(config) => GpuBackend::new(config.clone()).run(&spec.job),
        BackendSpec::Systolic(config) => SystolicBackend::new(config.clone()).run(&spec.job),
        BackendSpec::Fpga(config) => FpgaBackend::with_config(*config).run(&spec.job),
    }
}

/// Why a backend request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The hardware cannot execute the requested job.
    Unsupported {
        /// The backend that rejected it.
        backend: BackendKind,
        /// What was asked for and why it cannot be done.
        reason: String,
    },
    /// Building or simulating the network failed.
    Tango(TangoError),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unsupported { backend, reason } => {
                write!(f, "{backend} backend cannot run this job: {reason}")
            }
            BackendError::Tango(e) => write!(f, "{e}"),
        }
    }
}

impl Error for BackendError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BackendError::Unsupported { .. } => None,
            BackendError::Tango(e) => Some(e),
        }
    }
}

impl From<TangoError> for BackendError {
    fn from(e: TangoError) -> Self {
        BackendError::Tango(e)
    }
}

impl From<NetError> for BackendError {
    fn from(e: NetError) -> Self {
        BackendError::Tango(TangoError::Net(e))
    }
}

impl From<BackendError> for TangoError {
    fn from(e: BackendError) -> Self {
        match e {
            BackendError::Unsupported { backend, reason } => TangoError::Backend(format!("{backend}: {reason}")),
            BackendError::Tango(inner) => inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_precision_codes_round_trip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::from_code(b.code()), Some(b));
            assert_eq!(BackendKind::parse(b.name()), Some(b));
            assert_eq!(BackendKind::parse(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(BackendKind::from_code(9), None);
        assert_eq!(BackendKind::parse("npu"), None);
        for p in Precision::ALL {
            assert_eq!(Precision::from_code(p.code()), Some(p));
        }
        assert_eq!(Precision::from_code(9), None);
        assert!(Precision::Fp32.weight_bytes() > Precision::Int8.weight_bytes());
    }

    #[test]
    fn unsupported_error_names_the_backend() {
        let e = BackendError::Unsupported {
            backend: BackendKind::Fpga,
            reason: "int8 weights".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("fpga") && msg.contains("int8"), "{msg}");
        let t: TangoError = e.into();
        assert!(t.to_string().contains("fpga"), "{t}");
    }
}
