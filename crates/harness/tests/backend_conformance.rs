//! Trait-level conformance suite for the accelerator backends.
//!
//! Every [`tango_backend::Backend`] implementation — GPU adapter,
//! systolic array, FPGA — must satisfy the same contract:
//!
//! 1. **Determinism** — the same [`BackendRunSpec`] yields an identical
//!    [`BackendRun`], layer by layer, across repeated invocations.
//! 2. **Observability** — with tracing armed, the `backend.launch`
//!    virtual spans sum *exactly* to the reported total cycles, so the
//!    obs timeline and the report can never disagree.
//! 3. **Store round-trip** — a backend-tagged record survives the
//!    store: cold run, memory hit, and a disk replay through a fresh
//!    store all compare equal, and a warm store performs zero model
//!    evaluations.
//! 4. **Schema migration** — records from an older store schema are
//!    rejected with a clear error (never misread), treated as cache
//!    misses, and collectable by `gc`.

use std::fs;
use tango_backend::{
    run_backend, BackendJob, BackendKind, BackendRun, BackendRunSpec, BackendSpec, Precision, SystolicConfig,
};
use tango_fpga::PynqConfig;
use tango_harness::{decode_backend, RunKey, RunStore};
use tango_nets::{NetworkKind, Preset};
use tango_sim::GpuConfig;

fn spec_for(kind: BackendKind, net: NetworkKind, precision: Precision) -> BackendRunSpec {
    let spec = match kind {
        BackendKind::Gpu => BackendSpec::Gpu(GpuConfig::gp102()),
        BackendKind::Systolic => BackendSpec::Systolic(SystolicConfig::edge()),
        BackendKind::Fpga => BackendSpec::Fpga(PynqConfig::pynq_z1()),
    };
    BackendRunSpec {
        spec,
        job: BackendJob {
            kind: net,
            preset: Preset::Tiny,
            seed: 0x7A16_0201_9151,
            batch: 1,
            precision,
        },
    }
}

/// Runs `spec` with tracing armed on this thread and returns the run
/// plus the cycles its `backend.launch` spans cover.
fn traced(spec: &BackendRunSpec) -> (BackendRun, u64) {
    tango_obs::reset_current_thread();
    let run = run_backend(spec).expect("backend run succeeds");
    let trace = tango_obs::drain();
    trace.check_nesting().expect("span tree nests");
    (run, trace.span_cycles("backend.launch"))
}

/// One test body because the obs recorder is process-global: the three
/// backends share a single enable/disable window instead of racing.
#[test]
fn backends_are_deterministic_and_spans_cover_every_cycle() {
    let nets = [NetworkKind::CifarNet, NetworkKind::Gru];
    tango_obs::disable();
    tango_obs::enable(1 << 20);
    for kind in BackendKind::ALL {
        for net in nets {
            let spec = spec_for(kind, net, Precision::Fp32);
            let (first, first_span_cycles) = traced(&spec);
            let (second, second_span_cycles) = traced(&spec);
            assert_eq!(first, second, "{kind} {net:?}: reruns diverged");
            assert!(first.total_cycles() > 0, "{kind} {net:?}: empty run");
            assert_eq!(
                first_span_cycles,
                first.total_cycles(),
                "{kind} {net:?}: backend.launch spans must sum exactly to reported cycles"
            );
            assert_eq!(first_span_cycles, second_span_cycles);
        }
    }
    tango_obs::disable();
}

#[test]
fn store_round_trips_backend_records_for_every_backend() {
    let root = std::env::temp_dir().join(format!("tango-conform-store-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let store = RunStore::at(&root);
    for kind in BackendKind::ALL {
        let spec = spec_for(kind, NetworkKind::Gru, Precision::Fp32);
        let (cold, hit) = store.fetch_backend(&spec).expect("cold fetch");
        assert!(!hit, "{kind}: first fetch must miss");
        let (warm, hit) = store.fetch_backend(&spec).expect("warm fetch");
        assert!(hit, "{kind}: second fetch must hit memory");
        assert_eq!(warm, cold);
        // A fresh store over the same directory replays from disk —
        // from the `.acc` record (systolic, FPGA) or, for the GPU
        // adapter, from the underlying `.run` record.
        let reopened = RunStore::at(&root);
        let (replayed, hit) = reopened.fetch_backend(&spec).expect("disk fetch");
        assert!(hit, "{kind}: fresh store must replay the persisted record");
        assert_eq!(replayed, cold, "{kind}: disk replay must be bit-faithful");
        assert_eq!(reopened.misses(), 0, "{kind}: warm store must run zero models");
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn stale_schema_records_are_rejected_with_a_clear_error() {
    let root = std::env::temp_dir().join(format!("tango-conform-schema-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let store = RunStore::at(&root);
    let spec = spec_for(BackendKind::Systolic, NetworkKind::Gru, Precision::Int8);
    let (fresh, _) = store.fetch_backend(&spec).expect("populate store");

    // Rewind the persisted record's schema version to the previous one
    // (bytes 4..8 are the little-endian version right after the magic).
    let path = root.join(RunKey::for_backend(&spec).file_name());
    let mut bytes = fs::read(&path).expect("record exists on disk");
    bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
    fs::write(&path, &bytes).expect("rewrite record");

    // Decoding names the schema mismatch rather than misreading.
    let err = decode_backend(&bytes).expect_err("stale version must not decode");
    assert!(err.contains("schema version"), "unclear decode error: {err}");

    // A fresh store treats the stale record as a miss and repairs it.
    let reopened = RunStore::at(&root);
    let (rebuilt, hit) = reopened.fetch_backend(&spec).expect("re-fetch");
    assert!(!hit, "stale record must be a cache miss");
    assert_eq!(rebuilt, fresh, "repair must reproduce the same run");
    let (_, hit) = reopened.fetch_backend(&spec).expect("warm fetch");
    assert!(hit, "repaired record must serve hits again");

    // A stale record that is never re-fetched shows up as garbage and
    // is collected.
    bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
    let orphan = root.join("00deadbeef.acc");
    fs::write(&orphan, &bytes).expect("plant orphan");
    let stats = RunStore::at(&root).disk_stats().expect("disk stats");
    assert!(stats.stale_records >= 1, "orphaned stale record must be counted");
    let report = RunStore::at(&root).gc().expect("gc");
    assert!(report.removed_records >= 1, "gc must remove stale records");
    assert!(!orphan.exists(), "gc must delete the orphan file");
    let _ = fs::remove_dir_all(&root);
}
