//! The observability contract, end to end: tracing a run changes none
//! of its outputs, and two traced runs of the same `RunKey` produce
//! byte-identical event streams.

use tango::{simulate_run, NetworkRun, RunSpec};
use tango_nets::{NetworkKind, Preset};
use tango_obs::Trace;
use tango_sim::{GpuConfig, SimOptions};

fn spec() -> RunSpec {
    RunSpec {
        config: GpuConfig::gp102(),
        preset: Preset::Tiny,
        seed: 0x7A16_0201_9151,
        kind: NetworkKind::CifarNet,
        options: SimOptions::new(),
    }
}

/// One traced simulation from a fresh recorder state on this thread.
fn traced_run() -> (NetworkRun, Trace) {
    tango_obs::reset_current_thread();
    let run = simulate_run(&spec()).expect("simulation succeeds");
    (run, tango_obs::drain())
}

/// A single test body because recorder state is process-global; the
/// phases share one enable/disable window instead of racing over it.
#[test]
fn tracing_is_deterministic_and_output_neutral() {
    // Baseline: the untraced result.
    tango_obs::disable();
    let untraced = simulate_run(&spec()).expect("simulation succeeds");

    tango_obs::enable(1 << 20);
    let (first_run, first) = traced_run();
    let (second_run, second) = traced_run();
    tango_obs::disable();

    // Tracing must not perturb the simulation: traced and untraced runs
    // agree on cycles and output bits.
    assert_eq!(first_run.report.total_cycles(), untraced.report.total_cycles());
    assert_eq!(
        first_run.report.output.as_slice(),
        untraced.report.output.as_slice(),
        "tracing changed the network output"
    );

    // The trace is real, well-formed, and accounts for every cycle.
    assert!(!first.is_empty(), "traced run recorded nothing");
    assert_eq!(first.dropped, 0, "ring overflowed; raise the test cap");
    first.check_nesting().expect("span tree nests");
    assert_eq!(
        first.span_cycles("sim.launch"),
        first_run.report.total_cycles(),
        "launch spans must sum to the reported total"
    );

    // Same RunKey, same bytes: the exported stream is reproducible.
    assert_eq!(second_run.report.total_cycles(), first_run.report.total_cycles());
    let json = first.chrome_json();
    assert_eq!(json, second.chrome_json(), "traced reruns diverged");
    tango_obs::json::validate(&json).expect("exported trace parses as JSON");
}
