//! Integration tests over the store + suite pair: a warmed store must
//! serve a repeated suite with zero simulations, and parallel execution
//! must leave the store bit-identical to serial execution.

use std::path::PathBuf;
use std::sync::Arc;
use tango::{Characterizer, RunSource};
use tango_harness::{encode_run, RunKey, RunStore, Suite};
use tango_nets::{NetworkKind, Preset};
use tango_sim::{GpuConfig, SimOptions};

const SEED: u64 = 0x7A16_0201_9151;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tango-suite-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A suite exercising both job kinds and both target networks of the
/// parallel-determinism acceptance check (one CNN, one RNN).
fn tiny_suite() -> Suite {
    let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, SEED);
    let mut suite = Suite::new();
    for kind in [NetworkKind::CifarNet, NetworkKind::Gru] {
        suite.add_run(ch.run_spec(kind, &SimOptions::new()));
        suite.add_run(ch.run_spec(kind, &SimOptions::new().with_l1d_bytes(0)));
        suite.add_build(tango::BuildSpec {
            preset: Preset::Tiny,
            seed: SEED,
            kind,
        });
    }
    suite
}

#[test]
fn warm_suite_rerun_performs_zero_simulations() {
    let dir = scratch_dir("warm");
    let suite = tiny_suite();

    let cold = RunStore::at(&dir);
    let first = suite.execute(&cold, 2).expect("cold pass");
    assert_eq!(first.jobs, suite.len());
    assert_eq!(first.misses, suite.len() as u64, "cold store must simulate everything");

    // A fresh handle on the same directory has an empty memory cache, so
    // every hit below is a disk hit — proving persistence, not memory.
    let warm = RunStore::at(&dir);
    let second = suite.execute(&warm, 2).expect("warm pass");
    assert_eq!(second.hits, suite.len() as u64, "warm store must hit on every job");
    assert_eq!(second.misses, 0, "warm store must not simulate");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let serial_dir = scratch_dir("serial");
    let parallel_dir = scratch_dir("parallel");
    let suite = tiny_suite();

    let serial = RunStore::at(&serial_dir);
    suite.execute(&serial, 1).expect("serial pass");
    let parallel = RunStore::at(&parallel_dir);
    suite.execute(&parallel, 4).expect("parallel pass");

    // Every persisted record must be byte-identical across the two
    // stores, both on disk and as fetched values.
    for job in suite.jobs() {
        let file = job.key().file_name();
        let a = std::fs::read(serial_dir.join(&file)).expect("serial record");
        let b = std::fs::read(parallel_dir.join(&file)).expect("parallel record");
        assert_eq!(a, b, "{file} differs between serial and parallel stores");
    }

    // And the figure producers see identical runs through either store.
    let mk = |store: RunStore| {
        Characterizer::new(GpuConfig::gp102(), Preset::Tiny, SEED).with_source(Arc::new(store))
    };
    let ch_a = mk(RunStore::at(&serial_dir));
    let ch_b = mk(RunStore::at(&parallel_dir));
    for kind in [NetworkKind::CifarNet, NetworkKind::Gru] {
        let a = ch_a.run_network(kind, &SimOptions::new()).unwrap();
        let b = ch_b.run_network(kind, &SimOptions::new()).unwrap();
        assert_eq!(a, b, "{kind}: fetched runs differ");
        assert_eq!(encode_run(&a), encode_run(&b), "{kind}: encodings differ");
    }

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}

#[test]
fn store_serves_characterizer_without_resimulating() {
    let dir = scratch_dir("source");
    let store = Arc::new(RunStore::at(&dir));
    let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, SEED).with_source(store.clone());

    let first = ch.run_network(NetworkKind::Gru, &SimOptions::new()).unwrap();
    assert_eq!(store.misses(), 1);
    let again = ch.run_network(NetworkKind::Gru, &SimOptions::new()).unwrap();
    assert_eq!(store.hits(), 1, "second request must be a store hit");
    assert_eq!(first, again);

    // The same spec resolves to the same record through the raw trait.
    let spec = ch.run_spec(NetworkKind::Gru, &SimOptions::new());
    let via_trait = store.network_run(&spec).unwrap();
    assert_eq!(via_trait, first);
    assert!(dir.join(RunKey::for_run(&spec).file_name()).exists());

    let _ = std::fs::remove_dir_all(&dir);
}
