//! The suite scheduler: expands an experiment plan into deduplicated
//! jobs and executes them across worker threads against a shared
//! [`RunStore`].
//!
//! Figures share runs heavily (Figures 1/3/4/5/8/9/10 all read the same
//! default suite; Figure 16's AlexNet scheduler sweeps are a subset of
//! Figure 15's; Figures 13/14's no-L1 runs are a subset of Figure 2's
//! L1-sweep). Jobs are therefore keyed by [`RunKey`] digest and added at
//! most once, so the plan's job count is the number of *distinct*
//! simulations the whole suite needs.

use crate::key::RunKey;
use crate::store::RunStore;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tango::{BuildSpec, Result, RunSpec, TangoError};
use tango_backend::BackendRunSpec;
use tango_nets::{NetworkKind, Preset};
use tango_sim::{GpuConfig, SchedulerPolicy, SimOptions};

/// One unit of work: a full simulated run, a build-only measurement, or
/// an accelerator-backend execution.
#[derive(Debug, Clone)]
pub enum Job {
    /// Simulate a full inference.
    Run(RunSpec),
    /// Build a network and capture static stats.
    Build(BuildSpec),
    /// Run a network on an accelerator backend.
    Backend(BackendRunSpec),
}

impl Job {
    /// The job's store key.
    pub fn key(&self) -> RunKey {
        match self {
            Job::Run(spec) => RunKey::for_run(spec),
            Job::Build(spec) => RunKey::for_build(spec),
            Job::Backend(spec) => RunKey::for_backend(spec),
        }
    }

    /// Human label for progress and trace spans, e.g. `run AlexNet@bench`.
    pub fn label(&self) -> String {
        match self {
            Job::Run(spec) => format!("run {}@{}", spec.kind.name(), spec.preset.name()),
            Job::Build(spec) => format!("build {}@{}", spec.kind.name(), spec.preset.name()),
            Job::Backend(spec) => format!(
                "backend {} {}@{}",
                spec.spec.kind().name(),
                spec.job.kind.name(),
                spec.job.preset.name()
            ),
        }
    }
}

/// What [`Suite::execute`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteReport {
    /// Distinct jobs executed.
    pub jobs: usize,
    /// Jobs served from the store (memory or disk).
    pub hits: u64,
    /// Jobs that had to simulate.
    pub misses: u64,
}

/// A deduplicated batch of jobs.
#[derive(Debug, Default)]
pub struct Suite {
    jobs: Vec<Job>,
    seen: HashSet<u64>,
}

impl Suite {
    /// An empty suite.
    pub fn new() -> Self {
        Suite::default()
    }

    /// Queues a run job; returns `false` (and drops it) when an
    /// identical job is already queued.
    pub fn add_run(&mut self, spec: RunSpec) -> bool {
        let key = RunKey::for_run(&spec);
        self.seen.insert(key.digest) && {
            self.jobs.push(Job::Run(spec));
            true
        }
    }

    /// Queues a build job; returns `false` when already queued.
    pub fn add_build(&mut self, spec: BuildSpec) -> bool {
        let key = RunKey::for_build(&spec);
        self.seen.insert(key.digest) && {
            self.jobs.push(Job::Build(spec));
            true
        }
    }

    /// Queues a backend job; returns `false` when already queued.
    pub fn add_backend(&mut self, spec: BackendRunSpec) -> bool {
        let key = RunKey::for_backend(&spec);
        self.seen.insert(key.digest) && {
            self.jobs.push(Job::Backend(spec));
            true
        }
    }

    /// Number of distinct jobs queued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The queued jobs.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Executes every job against `store` on `workers` threads (clamped
    /// to at least 1). Results land in the store's caches; callers then
    /// read them back through a `Characterizer` attached to the same
    /// store, where every request is a memory hit.
    ///
    /// Workers pull jobs off a shared index, so a long job (VGG) does
    /// not serialize the queue behind it. The store itself is the only
    /// shared state, which is what makes parallel execution produce
    /// bit-identical results to serial: each job is an independent,
    /// deterministic simulation.
    ///
    /// # Errors
    ///
    /// Returns the first job failure (remaining jobs still run).
    pub fn execute(&self, store: &RunStore, workers: usize) -> Result<SuiteReport> {
        let hits_before = store.hits();
        let misses_before = store.misses();
        let next = AtomicUsize::new(0);
        let first_error: Mutex<Option<TangoError>> = Mutex::new(None);
        let workers = workers.max(1).min(self.jobs.len().max(1));
        // Trace spans are host-clock: suite wall time, each worker's
        // busy window (per-worker utilization), and each job within it.
        // The `is_enabled` gates keep the dynamic labels free when off.
        let _suite_span = tango_obs::is_enabled()
            .then(|| tango_obs::hspan("harness.suite", &format!("execute {} jobs x{} workers", self.jobs.len(), workers)));

        std::thread::scope(|scope| {
            for w in 0..workers {
                let (next, first_error) = (&next, &first_error);
                scope.spawn(move || {
                    let _worker_span =
                        tango_obs::is_enabled().then(|| tango_obs::hspan("harness.worker", &format!("worker{w}")));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = self.jobs.get(i) else { break };
                        let _job_span =
                            tango_obs::is_enabled().then(|| tango_obs::hspan("harness.job", &job.label()));
                        let outcome = match job {
                            Job::Run(spec) => store.fetch_run(spec).map(|_| ()),
                            Job::Build(spec) => store.fetch_build(spec).map(|_| ()),
                            Job::Backend(spec) => {
                                store.fetch_backend(spec).map(|_| ()).map_err(TangoError::from)
                            }
                        };
                        if let Err(e) = outcome {
                            let mut slot = first_error.lock().expect("error lock");
                            slot.get_or_insert(e);
                        }
                    }
                });
            }
        });

        if let Some(e) = first_error.into_inner().expect("error lock") {
            return Err(e);
        }
        Ok(SuiteReport {
            jobs: self.jobs.len(),
            hits: store.hits() - hits_before,
            misses: store.misses() - misses_before,
        })
    }
}

/// Parses a worker count a user typed into an env var. Unlike a silent
/// `unwrap_or(default)`, a value that is present but unusable (`0`,
/// `-1`, `lots`, an empty string) is an error naming the variable — a
/// typo'd `TANGO_JOBS=O8` should stop the run, not quietly serialize it.
///
/// # Errors
///
/// Returns a human-readable message naming `name` and the offending
/// value when `raw` is not a positive integer.
pub fn parse_worker_count(name: &str, raw: &str) -> std::result::Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!("{name} must be a positive worker count, got 0 (unset it to use all cores)")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{name} must be a positive worker count, got {raw:?}")),
    }
}

/// Worker count from the env var `name`: unset means the machine's
/// available parallelism (at least 1); a set value must parse as a
/// positive integer.
///
/// # Errors
///
/// Returns the [`parse_worker_count`] message when the variable is set
/// to `0` or garbage.
pub fn workers_from_env(name: &str) -> std::result::Result<usize, String> {
    match std::env::var(name) {
        Ok(v) => parse_worker_count(name, &v),
        Err(std::env::VarError::NotPresent) => Ok(std::thread::available_parallelism().map_or(1, |n| n.get())),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{name} is set to a non-UTF-8 value")),
    }
}

/// Worker count from `TANGO_JOBS`, defaulting to the machine's available
/// parallelism (at least 1).
///
/// # Panics
///
/// Panics with a clear message when `TANGO_JOBS` is set to `0` or does
/// not parse; binaries that prefer an exit code should call
/// [`workers_from_env`] themselves.
pub fn jobs_from_env() -> usize {
    workers_from_env("TANGO_JOBS").unwrap_or_else(|e| panic!("{e}"))
}

/// The full experiment plan behind `repro_all`: every distinct
/// simulation and build that the 16 figures and 4 tables request at
/// `preset`/`seed`, deduplicated.
///
/// The plan mirrors the producers exactly — a spec here that drifts from
/// what a producer requests would cold-simulate inside the producer
/// instead, which the warm-pass tests would catch as a miss.
pub fn repro_plan(preset: Preset, seed: u64) -> Suite {
    let gp102 = GpuConfig::gp102();
    let mut suite = Suite::new();
    let run = |config: &GpuConfig, kind: NetworkKind, options: SimOptions| RunSpec {
        config: config.clone(),
        preset,
        seed,
        kind,
        options,
    };

    // Figures 1, 3, 4, 5, 8, 9, 10: the shared default suite on GP102.
    for kind in NetworkKind::ALL {
        suite.add_run(run(&gp102, kind, SimOptions::new()));
    }
    // Figure 2: the L1D sweep ({bypassed, 64K, 128K, 256K}); the bypassed
    // runs double as Figures 13/14's inputs.
    for kind in NetworkKind::ALL {
        for bytes in [0u32, 64 << 10, 128 << 10, 256 << 10] {
            suite.add_run(run(&gp102, kind, SimOptions::new().with_l1d_bytes(bytes)));
        }
    }
    // Figure 7: stall breakdown on the GK210.
    let gk210 = GpuConfig::gk210();
    for kind in NetworkKind::ALL {
        suite.add_run(run(&gk210, kind, SimOptions::new()));
    }
    // Figures 15/16: the scheduler sweep (16's AlexNet runs dedup into 15's).
    for kind in NetworkKind::ALL {
        for policy in SchedulerPolicy::ALL {
            suite.add_run(run(&gp102, kind, SimOptions::new().with_scheduler(policy)));
        }
    }
    // Figure 6: TX1 side of the embedded comparison, always at published
    // model sizes with CTA sampling (see `fig6_tx1_vs_pynq`).
    let tx1 = GpuConfig::tx1();
    for kind in [NetworkKind::CifarNet, NetworkKind::SqueezeNet] {
        suite.add_run(RunSpec {
            config: tx1.clone(),
            preset: Preset::Paper,
            seed,
            kind,
            options: SimOptions::new().with_cta_sample_limit(Some(48)),
        });
    }
    // Figures 11/12 and Table III: build-only stats at published sizes.
    for kind in NetworkKind::ALL {
        suite.add_build(BuildSpec {
            preset: Preset::Paper,
            seed,
            kind,
        });
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_run(seed: u64, kind: NetworkKind) -> RunSpec {
        RunSpec {
            config: GpuConfig::gp102(),
            preset: Preset::Tiny,
            seed,
            kind,
            options: SimOptions::new(),
        }
    }

    #[test]
    fn duplicate_jobs_are_dropped() {
        let mut suite = Suite::new();
        assert!(suite.add_run(tiny_run(1, NetworkKind::Gru)));
        assert!(!suite.add_run(tiny_run(1, NetworkKind::Gru)));
        assert!(suite.add_run(tiny_run(2, NetworkKind::Gru)));
        assert_eq!(suite.len(), 2);
    }

    #[test]
    fn plan_covers_every_figure_without_duplicates() {
        let suite = repro_plan(Preset::Tiny, 7);
        // 7 default + 28 L1-sweep + 7 GK210 + 21 scheduler + 2 TX1 + 7 builds.
        assert_eq!(suite.len(), 72);
        let runs = suite.jobs().iter().filter(|j| matches!(j, Job::Run(_))).count();
        assert_eq!(runs, 65);
    }

    #[test]
    fn plan_scheduler_sweep_subsumes_fig16() {
        let suite = repro_plan(Preset::Tiny, 7);
        let mut digests = HashSet::new();
        for job in suite.jobs() {
            assert!(digests.insert(job.key().digest), "plan contains a duplicate");
        }
        // Figure 16's request: AlexNet under each scheduler at the plan's
        // preset/seed must already be in the plan.
        for policy in SchedulerPolicy::ALL {
            let spec = RunSpec {
                config: GpuConfig::gp102(),
                preset: Preset::Tiny,
                seed: 7,
                kind: NetworkKind::AlexNet,
                options: SimOptions::new().with_scheduler(policy),
            };
            assert!(digests.contains(&RunKey::for_run(&spec).digest));
        }
    }

    #[test]
    fn jobs_env_parsing() {
        // Only exercises the parse path indirectly safe cases: the
        // function must always return at least 1.
        assert!(jobs_from_env() >= 1);
    }

    #[test]
    fn worker_count_parsing_rejects_zero_and_garbage() {
        assert_eq!(parse_worker_count("TANGO_JOBS", "4"), Ok(4));
        assert_eq!(parse_worker_count("TANGO_JOBS", " 8 "), Ok(8));
        let err = parse_worker_count("TANGO_JOBS", "0").unwrap_err();
        assert!(err.contains("TANGO_JOBS") && err.contains('0'), "{err}");
        for bad in ["", "lots", "-1", "3.5", "O8"] {
            let err = parse_worker_count("TANGO_SERVE_WORKERS", bad).unwrap_err();
            assert!(err.contains("TANGO_SERVE_WORKERS"), "{err}");
            assert!(err.contains(&format!("{bad:?}")), "{err}");
        }
        // Env-var wrapper: unset means available parallelism.
        assert!(workers_from_env("TANGO_TEST_UNSET_WORKER_VAR").unwrap() >= 1);
    }
}
