//! Stable, process-independent hashing for store keys.
//!
//! `std::hash` offers no cross-process stability guarantee (and
//! `RandomState` is explicitly randomized), so store keys are digested
//! with FNV-1a 64 over an explicit, versioned byte encoding of every
//! field, finished with the SplitMix64 avalanche to disperse the low
//! bits FNV leaves correlated. The same inputs therefore produce the
//! same key in every process, on every platform, forever — which is what
//! lets `results/store/` survive across runs.

/// FNV-1a 64-bit streaming hasher with a SplitMix64 finalizer.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern (exact, including the sign of zero).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds an optional `u32` (presence byte + value).
    pub fn write_opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.write_u8(0),
            Some(x) => {
                self.write_u8(1);
                self.write_u32(x);
            }
        }
    }

    /// Feeds an optional `u64` (presence byte + value).
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(x) => {
                self.write_u8(1);
                self.write_u64(x);
            }
        }
    }

    /// Finishes with the SplitMix64 avalanche.
    pub fn finish(&self) -> u64 {
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_identical_digests() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        for h in [&mut a, &mut b] {
            h.write_u64(42);
            h.write_str("gp102");
            h.write_f64(1.48);
            h.write_opt_u32(Some(0));
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn any_field_change_changes_digest() {
        let digest = |seed: u64, name: &str, opt: Option<u32>| {
            let mut h = StableHasher::new();
            h.write_u64(seed);
            h.write_str(name);
            h.write_opt_u32(opt);
            h.finish()
        };
        let base = digest(1, "a", None);
        assert_ne!(base, digest(2, "a", None));
        assert_ne!(base, digest(1, "b", None));
        assert_ne!(base, digest(1, "a", Some(0)));
    }

    #[test]
    fn empty_vs_zero_length_strings_are_framed() {
        // Length prefixes keep "ab" + "c" distinct from "a" + "bc".
        let digest = |parts: &[&str]| {
            let mut h = StableHasher::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
    }

    #[test]
    fn digest_is_stable_across_releases() {
        // Golden value: this is what makes the on-disk store valid across
        // processes and builds. Changing the hash function requires
        // bumping STORE_SCHEMA_VERSION.
        let mut h = StableHasher::new();
        h.write_str("tango");
        h.write_u64(0x7A16_0201_9151);
        assert_eq!(h.finish(), 0xcb58_7e57_9178_f3f2);
    }
}
