//! Perf-diff attribution between two benchmark baselines.
//!
//! `bench_perf` emits flat JSON baselines (`BENCH_sim.json`,
//! `BENCH_serve.json`, `BENCH_fleet.json`) and appends one combined
//! line per run to `bench_history.jsonl`. This module diffs two such
//! records and *attributes* every delta to the pipeline leg it
//! belongs to — sim (cold build vs warm memoized phase), serve (per
//! network), or fleet (per routing policy) — so a throughput drop
//! reads as "the warm sim leg regressed 23%", not as a wall of
//! numbers. The same classification drives `ci.sh`'s perf-regression
//! gate: a >20% drop on any *warm rate* key prints the full
//! attribution table.
//!
//! Everything here is deterministic string/number processing over
//! [`tango_obs::json::parse_flat`] values; file loading lives in
//! [`load_source`] so the diff core stays I/O-free and testable.

use std::fmt::Write as _;
use tango_obs::json::{parse_flat, FlatValue};

/// A rate drop of more than this (percent) on a gating key counts as a
/// regression.
pub const REGRESSION_THRESHOLD_PCT: f64 = 20.0;

/// Which pipeline leg a benchmark key belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Simulator throughput (`*_sim_cycles_per_sec`, memo table…).
    Sim,
    /// Serve engine (per-network queueing/batching keys).
    Serve,
    /// Fleet engine (per-policy keys, `fleet_requests_per_sec`).
    Fleet,
    /// Run metadata (preset, seed, memo mode, …).
    Meta,
}

impl Leg {
    /// Fixed-width label for the attribution table.
    pub fn label(self) -> &'static str {
        match self {
            Leg::Sim => "sim",
            Leg::Serve => "serve",
            Leg::Fleet => "fleet",
            Leg::Meta => "meta",
        }
    }
}

/// The classification of one benchmark key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyClass {
    /// Pipeline leg.
    pub leg: Leg,
    /// Phase within the leg: `cold`/`warm` for sim, the network for
    /// serve, the routing policy (or `overall`) for fleet.
    pub phase: String,
    /// Whether a drop on this key gates CI (warm throughput rates
    /// only — cold rates are build-dominated and wall times are the
    /// inverse view of the rates).
    pub gating_rate: bool,
}

const FLEET_PREFIXES: [&str; 4] = ["round_robin_", "least_queue_", "cost_aware_", "fleet_"];
const META_KEYS: [&str; 9] = [
    "bench", "preset", "seed", "memo", "timed_runs", "ts_unix", "note", "devices", "pools",
];

/// Classifies one `BENCH_*.json` / `bench_history.jsonl` key.
pub fn classify(key: &str) -> KeyClass {
    if META_KEYS.contains(&key) || key == "requests" || key == "max_batch" {
        return KeyClass {
            leg: Leg::Meta,
            phase: String::new(),
            gating_rate: false,
        };
    }
    if key.ends_with("_sim_cycles_per_sec") || key.ends_with("_total_cycles") || key.starts_with("memo_table_") {
        let cold = key.contains("_cold_");
        return KeyClass {
            leg: Leg::Sim,
            phase: if cold { "cold" } else { "warm" }.into(),
            gating_rate: !cold && key.ends_with("_sim_cycles_per_sec"),
        };
    }
    if key.ends_with("_cold_wall_s") {
        return KeyClass {
            leg: Leg::Sim,
            phase: "cold".into(),
            gating_rate: false,
        };
    }
    if let Some(prefix) = FLEET_PREFIXES.iter().find(|p| key.starts_with(**p)) {
        return KeyClass {
            leg: Leg::Fleet,
            phase: if *prefix == "fleet_" {
                "overall".into()
            } else {
                prefix.trim_end_matches('_').into()
            },
            gating_rate: key.ends_with("_requests_per_sec"),
        };
    }
    // Everything else keyed `<network>_...` is the serve leg.
    let phase = key.split('_').next().unwrap_or("").to_string();
    KeyClass {
        leg: Leg::Serve,
        phase,
        gating_rate: key.ends_with("_requests_per_sec"),
    }
}

/// One key's before/after in the attribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// The benchmark key.
    pub key: String,
    /// Its classification.
    pub class: KeyClass,
    /// Old numeric value (`None` when absent or non-numeric).
    pub old: Option<f64>,
    /// New numeric value.
    pub new: Option<f64>,
}

impl DiffRow {
    /// Percent change new vs old, when both sides are present and the
    /// old value is nonzero.
    pub fn delta_pct(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o != 0.0 => Some((n - o) / o * 100.0),
            _ => None,
        }
    }

    /// True when this row is a gating rate that dropped by more than
    /// [`REGRESSION_THRESHOLD_PCT`].
    pub fn is_regression(&self) -> bool {
        self.class.gating_rate && self.delta_pct().is_some_and(|d| d < -REGRESSION_THRESHOLD_PCT)
    }
}

/// The full attribution of one baseline pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDiff {
    /// Numeric rows in a fixed order: old-record order first, then
    /// keys only the new record has.
    pub rows: Vec<DiffRow>,
    /// Metadata fields that differ, as `(key, old, new)` — a differing
    /// preset or seed means the comparison is apples-to-oranges.
    pub meta_changes: Vec<(String, String, String)>,
}

impl PerfDiff {
    /// Rows that regressed past the threshold.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.is_regression()).collect()
    }

    /// Renders the byte-stable attribution table.
    pub fn render(&self, old_label: &str, new_label: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "perfdiff: {old_label} -> {new_label}");
        if !self.meta_changes.is_empty() {
            for (key, old, new) in &self.meta_changes {
                let _ = writeln!(out, "note: {key} changed: {old} -> {new}");
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<34} {:<6} {:<12} {:>18} {:>18} {:>9}",
            "key", "leg", "phase", "old", "new", "delta"
        );
        for row in &self.rows {
            let fmt = |v: Option<f64>| match v {
                Some(v) => format_value(v),
                None => "-".to_string(),
            };
            let delta = match row.delta_pct() {
                Some(d) => format!("{d:>+8.1}%"),
                None => format!("{:>9}", "-"),
            };
            let _ = writeln!(
                out,
                "{:<34} {:<6} {:<12} {:>18} {:>18} {delta}{}",
                row.key,
                row.class.leg.label(),
                row.class.phase,
                fmt(row.old),
                fmt(row.new),
                if row.is_regression() { "  <-- REGRESSION" } else { "" },
            );
        }
        let regressions = self.regressions();
        let _ = writeln!(out);
        if regressions.is_empty() {
            let _ = writeln!(
                out,
                "no gating rate dropped more than {REGRESSION_THRESHOLD_PCT:.0}% ({} keys compared)",
                self.rows.len()
            );
        } else {
            for r in &regressions {
                let _ = writeln!(
                    out,
                    "WARN: {} leg ({}, {}) regressed {:.1}%",
                    r.class.leg.label(),
                    r.key,
                    r.class.phase,
                    -r.delta_pct().unwrap_or(0.0)
                );
            }
        }
        out
    }
}

/// Integers render without a fraction; rates keep three decimals.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Diffs two parsed flat records into an attribution.
pub fn diff(old: &[(String, FlatValue)], new: &[(String, FlatValue)]) -> PerfDiff {
    let find = |rec: &[(String, FlatValue)], key: &str| -> Option<FlatValue> {
        rec.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let mut rows = Vec::new();
    let mut meta_changes = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    let mut visit = |key: &str, old_v: Option<FlatValue>, new_v: Option<FlatValue>| {
        let class = classify(key);
        if class.leg == Leg::Meta {
            let text = |v: &Option<FlatValue>| match v {
                Some(FlatValue::Number(n)) => format_value(*n),
                Some(FlatValue::String(s)) => s.clone(),
                Some(FlatValue::Bool(b)) => b.to_string(),
                Some(FlatValue::Null) => "null".into(),
                None => "(absent)".into(),
            };
            let (o, n) = (text(&old_v), text(&new_v));
            if o != n {
                meta_changes.push((key.to_string(), o, n));
            }
            return;
        }
        rows.push(DiffRow {
            key: key.to_string(),
            class,
            old: old_v.as_ref().and_then(FlatValue::as_number),
            new: new_v.as_ref().and_then(FlatValue::as_number),
        });
    };
    for (key, old_v) in old {
        seen.push(key);
        visit(key, Some(old_v.clone()), find(new, key));
    }
    for (key, new_v) in new {
        if !seen.contains(&key.as_str()) {
            visit(key, None, Some(new_v.clone()));
        }
    }
    PerfDiff { rows, meta_changes }
}

/// Splits a perfdiff source spec into `(path, line_index)`. The
/// `@<signed index>` suffix selects a line of a `.jsonl` file (0-based
/// from the front, negative from the back, default `-1` = last) and is
/// only recognized when the prefix ends in `.jsonl` — a plain
/// `BENCH_sim.json` path passes through untouched even if it contains
/// an `@`.
pub fn parse_source_spec(spec: &str) -> (&str, Option<i64>) {
    if let Some(at) = spec.rfind('@') {
        let (path, idx) = (&spec[..at], &spec[at + 1..]);
        if path.ends_with(".jsonl") {
            if let Ok(i) = idx.parse::<i64>() {
                return (path, Some(i));
            }
        }
    }
    (spec, None)
}

/// Loads one perfdiff source: a flat `.json` baseline, or one line of
/// a `.jsonl` history (selected by the `@N` suffix, default the last
/// line). Returns a display label and the parsed record.
///
/// # Errors
///
/// Returns a message naming the file for unreadable paths, empty
/// histories, out-of-range indices, and malformed JSON.
pub fn load_source(spec: &str) -> Result<(String, Vec<(String, FlatValue)>), String> {
    let (path, index) = parse_source_spec(spec);
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !path.ends_with(".jsonl") {
        let record = parse_flat(&content).map_err(|e| format!("{path}: {e}"))?;
        return Ok((path.to_string(), record));
    }
    let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(format!("{path} has no records"));
    }
    let wanted = index.unwrap_or(-1);
    let resolved = if wanted < 0 {
        lines.len() as i64 + wanted
    } else {
        wanted
    };
    if resolved < 0 || resolved as usize >= lines.len() {
        return Err(format!(
            "{path} has {} record(s); index {wanted} is out of range",
            lines.len()
        ));
    }
    let record = parse_flat(lines[resolved as usize]).map_err(|e| format!("{path}@{resolved}: {e}"))?;
    Ok((format!("{path}@{resolved}"), record))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_committed_key_space() {
        let sim = classify("gru_sim_cycles_per_sec");
        assert_eq!((sim.leg, sim.phase.as_str(), sim.gating_rate), (Leg::Sim, "warm", true));
        let cold = classify("cifarnet_cold_sim_cycles_per_sec");
        assert_eq!((cold.leg, cold.phase.as_str(), cold.gating_rate), (Leg::Sim, "cold", false));
        let cold_wall = classify("gru_cold_wall_s");
        assert_eq!((cold_wall.leg, cold_wall.phase.as_str()), (Leg::Sim, "cold"));
        let memo = classify("memo_table_entries");
        assert_eq!((memo.leg, memo.gating_rate), (Leg::Sim, false));
        let fleet = classify("cost_aware_requests_per_sec");
        assert_eq!(
            (fleet.leg, fleet.phase.as_str(), fleet.gating_rate),
            (Leg::Fleet, "cost_aware", true)
        );
        let overall = classify("fleet_requests_per_sec");
        assert_eq!((overall.leg, overall.phase.as_str(), overall.gating_rate), (Leg::Fleet, "overall", true));
        let serve = classify("gru_requests_per_sec");
        assert_eq!((serve.leg, serve.phase.as_str(), serve.gating_rate), (Leg::Serve, "gru", true));
        let serve_aux = classify("cifarnet_req_per_mcycle");
        assert_eq!((serve_aux.leg, serve_aux.gating_rate), (Leg::Serve, false));
        assert_eq!(classify("preset").leg, Leg::Meta);
        assert_eq!(classify("ts_unix").leg, Leg::Meta);
    }

    #[test]
    fn regressions_gate_on_warm_rates_only() {
        let old = parse_flat(
            r#"{"preset":"bench","gru_sim_cycles_per_sec":1000.0,"gru_cold_sim_cycles_per_sec":100.0,"gru_requests_per_sec":500.0}"#,
        )
        .unwrap();
        let new = parse_flat(
            r#"{"preset":"bench","gru_sim_cycles_per_sec":700.0,"gru_cold_sim_cycles_per_sec":10.0,"gru_requests_per_sec":450.0}"#,
        )
        .unwrap();
        let d = diff(&old, &new);
        assert!(d.meta_changes.is_empty());
        let regressed: Vec<&str> = d.regressions().iter().map(|r| r.key.as_str()).collect();
        // Warm sim dropped 30% -> regression. Cold dropped 90% but is
        // informational. Serve dropped 10% -> under threshold.
        assert_eq!(regressed, ["gru_sim_cycles_per_sec"]);
        let text = d.render("a", "b");
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("WARN: sim leg"), "{text}");
    }

    #[test]
    fn clean_diff_renders_no_warnings() {
        let old = parse_flat(r#"{"gru_sim_cycles_per_sec":1000.0}"#).unwrap();
        let new = parse_flat(r#"{"gru_sim_cycles_per_sec":1100.0,"fleet_requests_per_sec":5.0}"#).unwrap();
        let d = diff(&old, &new);
        assert!(d.regressions().is_empty());
        // The new-only key appears with a missing old side.
        let fleet_row = d.rows.iter().find(|r| r.key == "fleet_requests_per_sec").unwrap();
        assert_eq!((fleet_row.old, fleet_row.new), (None, Some(5.0)));
        assert_eq!(fleet_row.delta_pct(), None);
        let text = d.render("a", "b");
        assert!(text.contains("no gating rate dropped"), "{text}");
    }

    #[test]
    fn meta_changes_are_reported_not_diffed() {
        let old = parse_flat(r#"{"preset":"bench","memo":"on","seed":"0x1"}"#).unwrap();
        let new = parse_flat(r#"{"preset":"tiny","memo":"on","seed":"0x1"}"#).unwrap();
        let d = diff(&old, &new);
        assert!(d.rows.is_empty());
        assert_eq!(d.meta_changes, vec![("preset".to_string(), "bench".to_string(), "tiny".to_string())]);
        assert!(d.render("a", "b").contains("note: preset changed: bench -> tiny"));
    }

    #[test]
    fn source_specs_parse_only_jsonl_indices() {
        assert_eq!(parse_source_spec("results/BENCH_sim.json"), ("results/BENCH_sim.json", None));
        assert_eq!(parse_source_spec("results/bench_history.jsonl"), ("results/bench_history.jsonl", None));
        assert_eq!(parse_source_spec("h.jsonl@-2"), ("h.jsonl", Some(-2)));
        assert_eq!(parse_source_spec("h.jsonl@0"), ("h.jsonl", Some(0)));
        // An @ in a non-jsonl path is part of the path.
        assert_eq!(parse_source_spec("odd@name.json"), ("odd@name.json", None));
        // A garbage index is not an index.
        assert_eq!(parse_source_spec("h.jsonl@last"), ("h.jsonl@last", None));
    }

    #[test]
    fn jsonl_sources_select_lines_from_either_end() {
        let dir = std::env::temp_dir().join("tango_perfdiff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hist.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n").unwrap();
        let p = path.to_str().unwrap();
        let val = |spec: &str| {
            let (_, rec) = load_source(spec).unwrap();
            rec[0].1.as_number().unwrap()
        };
        assert_eq!(val(p), 3.0, "default is the last line");
        assert_eq!(val(&format!("{p}@0")), 1.0);
        assert_eq!(val(&format!("{p}@-2")), 2.0);
        assert!(load_source(&format!("{p}@7")).unwrap_err().contains("out of range"));
        assert!(load_source(&format!("{p}@-4")).unwrap_err().contains("out of range"));
        std::fs::remove_file(&path).unwrap();
    }
}
