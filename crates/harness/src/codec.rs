//! Binary encoding of store records.
//!
//! The store persists two record types, both little-endian and
//! self-describing, in the style of the weight container in
//! `tango_nets::io` (magic + version + length-prefixed payload):
//!
//! ```text
//! "TNGR" | u32 version | NetworkRun     (a full simulated inference)
//! "TNGB" | u32 version | BuildStats     (build-only static facts)
//! "TNGA" | u32 version | BackendRun     (an accelerator-backend run)
//! ```
//!
//! Decoding is strict: a wrong magic, a stale version, an out-of-range
//! enum code, or a truncated payload all return `Err`, which the store
//! treats as a cache miss (the entry is re-simulated and rewritten).
//! Floats are stored by bit pattern, so a decoded record compares equal
//! (`PartialEq`) to the one that was encoded — the property the
//! round-trip tests pin.

use crate::key::{network_kind_code, network_kind_from_code, STORE_SCHEMA_VERSION};
use std::collections::BTreeMap;
use tango::{BuildStats, LayerBuildStats, NetworkRun};
use tango_backend::{BackendKind, BackendLayerStats, BackendRun, Precision};
use tango_isa::{DType, Dim3, Opcode};
use tango_nets::{InferenceReport, LayerRecord, LayerType};
use tango_sim::{CacheStats, Component, EnergyBreakdown, KernelStats, StallBreakdown, StallReason};
use tango_tensor::{Shape, Tensor};

const RUN_MAGIC: &[u8; 4] = b"TNGR";
const BUILD_MAGIC: &[u8; 4] = b"TNGB";
const BACKEND_MAGIC: &[u8; 4] = b"TNGA";

/// Why a record failed to decode. The store maps any decode error to a
/// cache miss, so this is diagnostic only.
pub type DecodeError = String;

fn layer_type_code(t: LayerType) -> u8 {
    match t {
        LayerType::Conv => 0,
        LayerType::Pool => 1,
        LayerType::Fc => 2,
        LayerType::Norm => 3,
        LayerType::FireSqueeze => 4,
        LayerType::FireExpand => 5,
        LayerType::Scale => 6,
        LayerType::Relu => 7,
        LayerType::Eltwise => 8,
        LayerType::Softmax => 9,
        LayerType::Gru => 10,
        LayerType::Lstm => 11,
    }
}

fn layer_type_from_code(code: u8) -> Option<LayerType> {
    Some(match code {
        0 => LayerType::Conv,
        1 => LayerType::Pool,
        2 => LayerType::Fc,
        3 => LayerType::Norm,
        4 => LayerType::FireSqueeze,
        5 => LayerType::FireExpand,
        6 => LayerType::Scale,
        7 => LayerType::Relu,
        8 => LayerType::Eltwise,
        9 => LayerType::Softmax,
        10 => LayerType::Gru,
        11 => LayerType::Lstm,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(magic: &[u8; 4]) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&STORE_SCHEMA_VERSION.to_le_bytes());
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn dim3(&mut self, d: Dim3) {
        self.u32(d.x);
        self.u32(d.y);
        self.u32(d.z);
    }

    fn tensor(&mut self, t: &Tensor) {
        let dims = t.shape().dims();
        self.u32(dims.len() as u32);
        for &d in dims {
            self.u64(d as u64);
        }
        let data = t.as_slice();
        self.u64(data.len() as u64);
        for &v in data {
            self.f32(v);
        }
    }

    fn cache_stats(&mut self, c: &CacheStats) {
        self.u64(c.accesses);
        self.u64(c.hits);
        self.u64(c.misses);
    }

    fn stalls(&mut self, s: &StallBreakdown) {
        for reason in StallReason::ALL {
            self.u64(s.count(reason));
        }
    }

    fn energy(&mut self, e: &EnergyBreakdown) {
        for component in Component::ALL {
            self.f64(e.get(component));
        }
    }

    fn opcode_counts(&mut self, counts: &BTreeMap<Opcode, u64>) {
        self.u32(counts.len() as u32);
        for (&op, &n) in counts {
            let idx = Opcode::ALL.iter().position(|&o| o == op).expect("opcode in ALL");
            self.u8(idx as u8);
            self.u64(n);
        }
    }

    fn dtype_counts(&mut self, counts: &BTreeMap<DType, u64>) {
        self.u32(counts.len() as u32);
        for (&dt, &n) in counts {
            let idx = DType::ALL.iter().position(|&d| d == dt).expect("dtype in ALL");
            self.u8(idx as u8);
            self.u64(n);
        }
    }

    fn kernel_stats(&mut self, k: &KernelStats) {
        self.str(&k.name);
        self.u64(k.cycles);
        self.u64(k.warp_instructions);
        self.u64(k.thread_instructions);
        self.opcode_counts(&k.op_counts);
        self.dtype_counts(&k.dtype_counts);
        self.stalls(&k.stalls);
        self.cache_stats(&k.l1d);
        self.cache_stats(&k.l2);
        self.u64(k.dram_accesses);
        self.u64(k.const_accesses);
        self.u64(k.shared_accesses);
        self.u32(k.regs_per_thread);
        self.u32(k.live_regs_per_thread);
        self.u32(k.max_resident_threads);
        self.u32(k.smem_bytes);
        self.u32(k.cmem_bytes);
        self.energy(&k.energy);
        self.f64(k.peak_power_w);
        self.f64(k.avg_power_w);
        self.f64(k.time_s);
        self.u64(k.ctas_total);
        self.u64(k.ctas_simulated);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], magic: &[u8; 4]) -> Result<Self, DecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        let got = r.take(4)?;
        if got != magic {
            return Err(format!("bad magic {got:?}"));
        }
        let version = r.u32()?;
        if version != STORE_SCHEMA_VERSION {
            return Err(format!("schema version {version} != {STORE_SCHEMA_VERSION}"));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(format!("truncated record at offset {}", self.pos));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.bytes.len() {
            return Err(format!("{} trailing bytes", self.bytes.len() - self.pos));
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_string())
    }

    fn dim3(&mut self) -> Result<Dim3, DecodeError> {
        Ok(Dim3 {
            x: self.u32()?,
            y: self.u32()?,
            z: self.u32()?,
        })
    }

    fn tensor(&mut self) -> Result<Tensor, DecodeError> {
        let rank = self.u32()? as usize;
        if rank == 0 || rank > 8 {
            return Err(format!("implausible tensor rank {rank}"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d = self.u64()? as usize;
            if d == 0 {
                return Err("zero tensor dimension".to_string());
            }
            dims.push(d);
        }
        let count = self.u64()? as usize;
        if count != dims.iter().product::<usize>() {
            return Err("tensor element count does not match shape".to_string());
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            data.push(self.f32()?);
        }
        Ok(Tensor::from_vec(Shape::new(&dims), data))
    }

    fn cache_stats(&mut self) -> Result<CacheStats, DecodeError> {
        Ok(CacheStats {
            accesses: self.u64()?,
            hits: self.u64()?,
            misses: self.u64()?,
        })
    }

    fn stalls(&mut self) -> Result<StallBreakdown, DecodeError> {
        let mut s = StallBreakdown::new();
        for reason in StallReason::ALL {
            s.record_n(reason, self.u64()?);
        }
        Ok(s)
    }

    fn energy(&mut self) -> Result<EnergyBreakdown, DecodeError> {
        let mut e = EnergyBreakdown::new();
        for component in Component::ALL {
            e.add(component, self.f64()?);
        }
        Ok(e)
    }

    fn opcode_counts(&mut self) -> Result<BTreeMap<Opcode, u64>, DecodeError> {
        let count = self.u32()? as usize;
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let idx = self.u8()? as usize;
            let op = *Opcode::ALL.get(idx).ok_or_else(|| format!("opcode code {idx} out of range"))?;
            let n = self.u64()?;
            map.insert(op, n);
        }
        Ok(map)
    }

    fn dtype_counts(&mut self) -> Result<BTreeMap<DType, u64>, DecodeError> {
        let count = self.u32()? as usize;
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let idx = self.u8()? as usize;
            let dt = *DType::ALL.get(idx).ok_or_else(|| format!("dtype code {idx} out of range"))?;
            let n = self.u64()?;
            map.insert(dt, n);
        }
        Ok(map)
    }

    fn kernel_stats(&mut self) -> Result<KernelStats, DecodeError> {
        Ok(KernelStats {
            name: self.str()?,
            cycles: self.u64()?,
            warp_instructions: self.u64()?,
            thread_instructions: self.u64()?,
            op_counts: self.opcode_counts()?,
            dtype_counts: self.dtype_counts()?,
            stalls: self.stalls()?,
            l1d: self.cache_stats()?,
            l2: self.cache_stats()?,
            dram_accesses: self.u64()?,
            const_accesses: self.u64()?,
            shared_accesses: self.u64()?,
            regs_per_thread: self.u32()?,
            live_regs_per_thread: self.u32()?,
            max_resident_threads: self.u32()?,
            smem_bytes: self.u32()?,
            cmem_bytes: self.u32()?,
            energy: self.energy()?,
            peak_power_w: self.f64()?,
            avg_power_w: self.f64()?,
            time_s: self.f64()?,
            ctas_total: self.u64()?,
            ctas_simulated: self.u64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Inspects a record header without decoding the payload: returns the
/// record kind and the schema version it was written under, or `None` if
/// the bytes do not start with a known magic. `store gc` uses this to
/// tell a stale-but-valid record (old version, delete) from foreign junk
/// (left alone).
pub(crate) fn probe_record(bytes: &[u8]) -> Option<(crate::key::RecordKind, u32)> {
    if bytes.len() < 8 {
        return None;
    }
    let kind = match &bytes[..4] {
        m if m == RUN_MAGIC => crate::key::RecordKind::Run,
        m if m == BUILD_MAGIC => crate::key::RecordKind::Build,
        m if m == BACKEND_MAGIC => crate::key::RecordKind::Backend,
        _ => return None,
    };
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    Some((kind, version))
}

/// For a current-version backend record, the backend-family code stored
/// right after the header (byte 8). `store stats` uses this to count
/// records per backend without decoding payloads.
pub(crate) fn probe_backend_code(bytes: &[u8]) -> Option<u8> {
    match probe_record(bytes) {
        Some((crate::key::RecordKind::Backend, v)) if v == STORE_SCHEMA_VERSION => bytes.get(8).copied(),
        _ => None,
    }
}

/// Encodes a full run record.
pub fn encode_run(run: &NetworkRun) -> Vec<u8> {
    let mut w = Writer::new(RUN_MAGIC);
    w.u8(network_kind_code(run.kind));
    w.u64(run.footprint_bytes);
    w.tensor(&run.report.output);
    w.u32(run.report.records.len() as u32);
    for record in &run.report.records {
        w.str(&record.name);
        w.u8(layer_type_code(record.layer_type));
        w.kernel_stats(&record.stats);
    }
    w.buf
}

/// Decodes a run record; any malformation is an error (= cache miss).
///
/// # Errors
///
/// Returns a diagnostic string on bad magic, version, enum code, or a
/// truncated/overlong payload.
pub fn decode_run(bytes: &[u8]) -> Result<NetworkRun, DecodeError> {
    let mut r = Reader::new(bytes, RUN_MAGIC)?;
    let kind_code = r.u8()?;
    let kind = network_kind_from_code(kind_code).ok_or_else(|| format!("network code {kind_code} out of range"))?;
    let footprint_bytes = r.u64()?;
    let output = r.tensor()?;
    let count = r.u32()? as usize;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.str()?;
        let type_code = r.u8()?;
        let layer_type =
            layer_type_from_code(type_code).ok_or_else(|| format!("layer-type code {type_code} out of range"))?;
        let stats = r.kernel_stats()?;
        records.push(LayerRecord {
            name,
            layer_type,
            stats,
        });
    }
    r.finish()?;
    Ok(NetworkRun {
        kind,
        report: InferenceReport { output, records },
        footprint_bytes,
    })
}

/// Encodes a build record.
pub fn encode_build(build: &BuildStats) -> Vec<u8> {
    let mut w = Writer::new(BUILD_MAGIC);
    w.u64(build.footprint_bytes);
    w.u64(build.weight_bytes);
    w.u32(build.layers.len() as u32);
    for layer in &build.layers {
        w.str(&layer.name);
        w.dim3(layer.grid);
        w.dim3(layer.block);
        w.u32(layer.regs);
        w.u32(layer.live_regs);
        w.u32(layer.smem_bytes);
        w.u32(layer.cmem_bytes);
    }
    w.buf
}

/// Decodes a build record; any malformation is an error (= cache miss).
///
/// # Errors
///
/// Returns a diagnostic string on bad magic, version, or a
/// truncated/overlong payload.
pub fn decode_build(bytes: &[u8]) -> Result<BuildStats, DecodeError> {
    let mut r = Reader::new(bytes, BUILD_MAGIC)?;
    let footprint_bytes = r.u64()?;
    let weight_bytes = r.u64()?;
    let count = r.u32()? as usize;
    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        layers.push(LayerBuildStats {
            name: r.str()?,
            grid: r.dim3()?,
            block: r.dim3()?,
            regs: r.u32()?,
            live_regs: r.u32()?,
            smem_bytes: r.u32()?,
            cmem_bytes: r.u32()?,
        });
    }
    r.finish()?;
    Ok(BuildStats {
        footprint_bytes,
        weight_bytes,
        layers,
    })
}

/// Encodes a backend-run record.
pub fn encode_backend(run: &BackendRun) -> Vec<u8> {
    let mut w = Writer::new(BACKEND_MAGIC);
    w.u8(run.backend.code());
    w.u8(network_kind_code(run.kind));
    w.u32(run.batch);
    w.u8(run.precision.code());
    w.f64(run.clock_ghz);
    w.u32(run.layers.len() as u32);
    for layer in &run.layers {
        w.str(&layer.name);
        w.str(&layer.label);
        w.u64(layer.cycles);
        w.u64(layer.macs);
        w.u64(layer.stall_cycles);
        w.f64(layer.utilization);
        w.f64(layer.energy_j);
    }
    w.buf
}

/// Decodes a backend-run record; any malformation is an error (= cache
/// miss).
///
/// # Errors
///
/// Returns a diagnostic string on bad magic, version, enum code, or a
/// truncated/overlong payload.
pub fn decode_backend(bytes: &[u8]) -> Result<BackendRun, DecodeError> {
    let mut r = Reader::new(bytes, BACKEND_MAGIC)?;
    let backend_code = r.u8()?;
    let backend =
        BackendKind::from_code(backend_code).ok_or_else(|| format!("backend code {backend_code} out of range"))?;
    let kind_code = r.u8()?;
    let kind = network_kind_from_code(kind_code).ok_or_else(|| format!("network code {kind_code} out of range"))?;
    let batch = r.u32()?;
    let precision_code = r.u8()?;
    let precision =
        Precision::from_code(precision_code).ok_or_else(|| format!("precision code {precision_code} out of range"))?;
    let clock_ghz = r.f64()?;
    let count = r.u32()? as usize;
    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        layers.push(BackendLayerStats {
            name: r.str()?,
            label: r.str()?,
            cycles: r.u64()?,
            macs: r.u64()?,
            stall_cycles: r.u64()?,
            utilization: r.f64()?,
            energy_j: r.f64()?,
        });
    }
    r.finish()?;
    Ok(BackendRun {
        backend,
        kind,
        batch,
        precision,
        clock_ghz,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango::{measure_build, simulate_run, BuildSpec, RunSpec};
    use tango_nets::{NetworkKind, Preset};
    use tango_sim::{GpuConfig, SimOptions};

    fn tiny_run() -> NetworkRun {
        simulate_run(&RunSpec {
            config: GpuConfig::gp102(),
            preset: Preset::Tiny,
            seed: 11,
            kind: NetworkKind::CifarNet,
            options: SimOptions::new(),
        })
        .unwrap()
    }

    #[test]
    fn run_record_round_trips_exactly() {
        let run = tiny_run();
        let bytes = encode_run(&run);
        let decoded = decode_run(&bytes).unwrap();
        assert_eq!(run, decoded);
    }

    #[test]
    fn build_record_round_trips_exactly() {
        let build = measure_build(&BuildSpec {
            preset: Preset::Tiny,
            seed: 11,
            kind: NetworkKind::Gru,
        })
        .unwrap();
        let bytes = encode_build(&build);
        assert_eq!(decode_build(&bytes).unwrap(), build);
    }

    #[test]
    fn corruption_is_detected_not_misread() {
        let run = tiny_run();
        let bytes = encode_run(&run);
        assert!(decode_run(&bytes[..bytes.len() - 1]).is_err(), "truncation");
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode_run(&longer).is_err(), "trailing bytes");
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_run(&wrong_magic).is_err(), "magic");
        let mut wrong_version = bytes;
        wrong_version[4] = 0xFF;
        assert!(decode_run(&wrong_version).is_err(), "version");
    }

    #[test]
    fn backend_record_round_trips_exactly() {
        use tango_backend::{run_backend, BackendJob, BackendRunSpec, BackendSpec, SystolicConfig};
        let run = run_backend(&BackendRunSpec {
            spec: BackendSpec::Systolic(SystolicConfig::edge()),
            job: BackendJob {
                kind: NetworkKind::CifarNet,
                preset: Preset::Tiny,
                seed: 11,
                batch: 2,
                precision: tango_backend::Precision::Int16,
            },
        })
        .unwrap();
        let bytes = encode_backend(&run);
        assert_eq!(decode_backend(&bytes).unwrap(), run);
        assert_eq!(probe_record(&bytes), Some((crate::key::RecordKind::Backend, STORE_SCHEMA_VERSION)));
        assert_eq!(probe_backend_code(&bytes), Some(run.backend.code()));
        let mut stale = bytes.clone();
        stale[4] = 0xFE;
        let err = decode_backend(&stale).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        assert_eq!(probe_backend_code(&stale), None, "stale versions are not probed");
    }

    #[test]
    fn layer_type_codes_round_trip() {
        for code in 0..12u8 {
            let t = layer_type_from_code(code).unwrap();
            assert_eq!(layer_type_code(t), code);
        }
        assert_eq!(layer_type_from_code(12), None);
    }
}
