//! Tango harness: the parallel suite orchestrator.
//!
//! Sitting between the core characterization API (`tango`) and the
//! reproduction binaries (`tango-bench`), this crate provides:
//!
//! * [`RunStore`] — a persistent, content-addressed cache of simulation
//!   results under `results/store/`, keyed by a stable digest
//!   ([`RunKey`]) over the complete run description. It implements
//!   `tango::RunSource`, so a `Characterizer` attached to a store serves
//!   repeated runs from cache instead of re-simulating.
//! * [`Suite`] — a deduplicating job scheduler that expands an
//!   experiment plan ([`repro_plan`] covers all 16 figures and 4 tables)
//!   and executes it across `TANGO_JOBS` worker threads
//!   ([`jobs_from_env`]) against a shared store.
//!
//! Because every simulation is deterministic, parallel execution is
//! purely a wall-clock optimization: the figures produced from a store
//! filled by N workers are bit-identical to the serial ones, and a
//! second `repro_all` invocation over a warm store performs zero
//! simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod hash;
mod key;
/// Perf-diff attribution between benchmark baselines.
pub mod perfdiff;
mod store;
mod suite;

pub use codec::{decode_backend, decode_build, decode_run, encode_backend, encode_build, encode_run, DecodeError};
pub use hash::StableHasher;
pub use key::{network_kind_code, network_kind_from_code, RecordKind, RunKey, STORE_SCHEMA_VERSION};
pub use store::{results_root, GcReport, RunStore, StoreStats};
pub use suite::{jobs_from_env, parse_worker_count, repro_plan, workers_from_env, Job, Suite, SuiteReport};
