//! Harness CLI: store maintenance and single-run tracing.
//!
//! ```text
//! harness store stats [--dir PATH]   # classify and count records
//! harness store gc    [--dir PATH]   # drop stale-schema records
//! harness trace <net>                # simulate one network, optionally traced
//! ```
//!
//! The store defaults to `results/store/` at the workspace root
//! (`TANGO_RESULTS_DIR` respected); `--dir` points at any other store
//! directory.
//!
//! `trace` simulates one inference directly (no store, so the run is
//! fully deterministic) and prints a per-layer cycle table plus an
//! output digest on stdout. With `TANGO_TRACE=<path>` set, the run is
//! recorded and the flight-recorder contents are written to `<path>` as
//! Chrome trace-event JSON (load it in Perfetto) after being validated:
//! the span tree must nest, the launch spans must sum to the reported
//! total cycles, and the JSON must parse. stdout is byte-identical
//! whether or not tracing is enabled — that is the observability
//! contract, and `ci.sh` asserts it.
//!
//! Exit code 0 on success, 1 on validation/simulation failure, 2 on
//! usage or environment errors.

use std::process::ExitCode;
use tango::{simulate_run, RunSpec};
use tango_harness::{RunStore, StableHasher, STORE_SCHEMA_VERSION};
use tango_nets::{NetworkKind, Preset};
use tango_sim::{GpuConfig, SimOptions};

/// The deterministic seed every reproduction binary uses
/// (`tango_bench::SEED`; the harness cannot depend on the bench crate).
const SEED: u64 = 0x7A16_0201_9151;

fn usage() -> ExitCode {
    eprintln!("usage: harness store <stats|gc> [--dir PATH]");
    eprintln!("       harness trace <net>");
    eprintln!(
        "nets: {}",
        NetworkKind::EXTENDED
            .iter()
            .map(|k| k.name().to_lowercase())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn open_store(mut args: std::env::Args) -> Result<RunStore, ExitCode> {
    match args.next() {
        None => Ok(RunStore::open_default()),
        Some(flag) if flag == "--dir" => match args.next() {
            Some(dir) if args.next().is_none() => Ok(RunStore::at(dir)),
            _ => Err(usage()),
        },
        Some(_) => Err(usage()),
    }
}

fn store_cmd(sub: Option<String>, args: std::env::Args) -> ExitCode {
    let store = match open_store(args) {
        Ok(store) => store,
        Err(code) => return code,
    };
    match sub.as_deref() {
        Some("stats") => match store.disk_stats() {
            Ok(s) => {
                println!("store: {}", store.root().display());
                println!("schema version: {STORE_SCHEMA_VERSION}");
                println!("run records: {}", s.run_records);
                println!("build records: {}", s.build_records);
                println!("stale records: {}", s.stale_records);
                println!("other files: {}", s.other_files);
                println!("total bytes: {}", s.total_bytes);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot scan {}: {e}", store.root().display());
                ExitCode::FAILURE
            }
        },
        Some("gc") => match store.gc() {
            Ok(r) => {
                println!(
                    "removed {} stale record(s) ({} bytes); kept {} at schema version {STORE_SCHEMA_VERSION}",
                    r.removed_records, r.removed_bytes, r.kept_records
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: gc failed in {}: {e}", store.root().display());
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

/// Case-insensitive network lookup over the extended suite.
fn parse_kind(raw: &str) -> Option<NetworkKind> {
    let want = raw.to_lowercase();
    NetworkKind::EXTENDED.into_iter().find(|k| k.name().to_lowercase() == want)
}

/// Preset selected by `TANGO_PRESET`, mirroring `tango_bench`.
fn preset_from_env() -> Preset {
    match std::env::var("TANGO_PRESET").as_deref() {
        Ok("paper") => Preset::Paper,
        Ok("tiny") => Preset::Tiny,
        _ => Preset::Bench,
    }
}

/// Order-stable digest of the network output, so two runs can be
/// compared from their printed reports alone.
fn output_digest(values: &[f32]) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(values.len() as u64);
    for v in values {
        h.write_u32(v.to_bits());
    }
    h.finish()
}

fn trace_cmd(net: &str) -> ExitCode {
    // Validate the trace environment before doing any work: a typo'd
    // TANGO_TRACE_CAP must stop the run, traced or not.
    let trace_path = match tango_obs::init_from_env() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(kind) = parse_kind(net) else {
        eprintln!("error: unknown network {net:?}");
        return usage();
    };
    let spec = RunSpec {
        config: GpuConfig::gp102(),
        preset: preset_from_env(),
        seed: SEED,
        kind,
        options: SimOptions::new(),
    };
    let run = match simulate_run(&spec) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The deterministic report: byte-identical traced or untraced.
    println!("network: {}", kind.name());
    println!("preset: {}", spec.preset.name());
    println!("device: {}", spec.config.name);
    println!("seed: {SEED:#x}");
    println!();
    println!("{:<24} {:<12} {:>14}", "layer", "type", "cycles");
    for record in &run.report.records {
        println!(
            "{:<24} {:<12} {:>14}",
            record.name,
            record.layer_type.to_string(),
            record.stats.cycles
        );
    }
    let total = run.report.total_cycles();
    println!();
    println!("total cycles: {total}");
    println!("footprint bytes: {}", run.footprint_bytes);
    println!("output digest: {:016x}", output_digest(run.report.output.as_slice()));

    let Some(path) = trace_path else {
        return ExitCode::SUCCESS;
    };
    let trace = tango_obs::drain();
    if let Err(e) = trace.check_nesting() {
        eprintln!("error: trace spans do not nest: {e}");
        return ExitCode::FAILURE;
    }
    let launch_cycles = trace.span_cycles("sim.launch");
    if launch_cycles != total {
        eprintln!("error: launch spans sum to {launch_cycles} cycles but the run reports {total}");
        return ExitCode::FAILURE;
    }
    let json = trace.chrome_json();
    if let Err(e) = tango_obs::json::validate(&json) {
        eprintln!("error: exported trace is not valid JSON: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = tango_obs::write_chrome_file(&path, &trace) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "trace: wrote {} events to {} ({} dropped); launch spans cover {launch_cycles} cycles",
        trace.len(),
        path.display(),
        trace.dropped
    );
    eprint!("{}", trace.text_summary());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    match args.next().as_deref() {
        Some("store") => {
            let sub = args.next();
            store_cmd(sub, args)
        }
        Some("trace") => match (args.next(), args.next()) {
            (Some(net), None) => trace_cmd(&net),
            _ => usage(),
        },
        _ => usage(),
    }
}
