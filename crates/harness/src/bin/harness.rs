//! Store maintenance CLI.
//!
//! ```text
//! harness store stats [--dir PATH]   # classify and count records
//! harness store gc    [--dir PATH]   # drop stale-schema records
//! ```
//!
//! The store defaults to `results/store/` at the workspace root
//! (`TANGO_RESULTS_DIR` respected); `--dir` points at any other store
//! directory. Exit code 0 on success, 2 on usage errors.

use std::process::ExitCode;
use tango_harness::{RunStore, STORE_SCHEMA_VERSION};

fn usage() -> ExitCode {
    eprintln!("usage: harness store <stats|gc> [--dir PATH]");
    ExitCode::from(2)
}

fn open_store(mut args: std::env::Args) -> Result<RunStore, ExitCode> {
    match args.next() {
        None => Ok(RunStore::open_default()),
        Some(flag) if flag == "--dir" => match args.next() {
            Some(dir) if args.next().is_none() => Ok(RunStore::at(dir)),
            _ => Err(usage()),
        },
        Some(_) => Err(usage()),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let (cmd, sub) = (args.next(), args.next());
    if cmd.as_deref() != Some("store") {
        return usage();
    }
    let store = match open_store(args) {
        Ok(store) => store,
        Err(code) => return code,
    };
    match sub.as_deref() {
        Some("stats") => match store.disk_stats() {
            Ok(s) => {
                println!("store: {}", store.root().display());
                println!("schema version: {STORE_SCHEMA_VERSION}");
                println!("run records: {}", s.run_records);
                println!("build records: {}", s.build_records);
                println!("stale records: {}", s.stale_records);
                println!("other files: {}", s.other_files);
                println!("total bytes: {}", s.total_bytes);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot scan {}: {e}", store.root().display());
                ExitCode::FAILURE
            }
        },
        Some("gc") => match store.gc() {
            Ok(r) => {
                println!(
                    "removed {} stale record(s) ({} bytes); kept {} at schema version {STORE_SCHEMA_VERSION}",
                    r.removed_records, r.removed_bytes, r.kept_records
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: gc failed in {}: {e}", store.root().display());
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
