//! The persistent, content-addressed run store.
//!
//! A [`RunStore`] memoizes simulation results at two levels: an
//! in-process map (shared across threads) and an on-disk directory of
//! records named by [`RunKey`]. A fetch checks memory, then disk, then
//! simulates and persists. Disk writes go through a temp file and an
//! atomic rename, so concurrent processes sharing one store directory
//! can only ever observe complete records; unreadable or stale records
//! are treated as misses and rewritten.
//!
//! The store implements [`RunSource`], so plugging it into a
//! `Characterizer` (`ch.with_source(store)`) makes every figure and
//! table producer cache-aware without further changes.

use crate::codec::{
    decode_backend, decode_build, decode_run, encode_backend, encode_build, encode_run, probe_backend_code,
    probe_record,
};
use crate::key::{RecordKind, RunKey, STORE_SCHEMA_VERSION};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tango::{measure_build, simulate_run, BuildSpec, BuildStats, NetworkRun, Result, RunSource, RunSpec};
use tango_backend::{
    lower::LoweredNet, run_backend, BackendError, BackendKind, BackendRun, BackendRunSpec, BackendSpec, Precision,
};
use tango_sim::SimOptions;

/// The workspace-level `results/` directory: `TANGO_RESULTS_DIR` when
/// set, otherwise `<workspace root>/results` (resolved at compile time
/// from this crate's manifest location, so it does not depend on the
/// process working directory).
pub fn results_root() -> PathBuf {
    if let Some(dir) = std::env::var_os("TANGO_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the workspace root")
        .join("results")
}

/// A persistent, content-addressed cache of simulation results.
pub struct RunStore {
    root: PathBuf,
    runs: Mutex<HashMap<u64, NetworkRun>>,
    builds: Mutex<HashMap<u64, BuildStats>>,
    backends: Mutex<HashMap<u64, BackendRun>>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
}

impl std::fmt::Debug for RunStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStore")
            .field("root", &self.root)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("writes", &self.writes())
            .finish()
    }
}

impl RunStore {
    /// A store rooted at `root` (created on first write).
    pub fn at(root: impl Into<PathBuf>) -> Self {
        RunStore {
            root: root.into(),
            runs: Mutex::new(HashMap::new()),
            builds: Mutex::new(HashMap::new()),
            backends: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The default on-disk location, `results/store/` at the workspace
    /// root (see [`results_root`]).
    pub fn open_default() -> Self {
        RunStore::at(results_root().join("store"))
    }

    /// The store's directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Fetches served without simulating (memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fetches that had to simulate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records persisted to disk (one per successfully written miss).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Resets the hit/miss/write counters (e.g. between a warm-up pass
    /// and a measured pass).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Bumps `counter` and surfaces the new running total as a
    /// host-clock trace counter.
    fn count(&self, counter: &AtomicU64, name: &'static str) {
        let total = counter.fetch_add(1, Ordering::Relaxed) + 1;
        tango_obs::hcounter("harness.store", name, total as i64);
    }

    fn path_for(&self, key: &RunKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    /// Best-effort persist: a cache that cannot write is slow, not
    /// broken, so I/O failures are swallowed.
    fn persist(&self, key: &RunKey, bytes: &[u8]) {
        if fs::create_dir_all(&self.root).is_err() {
            return;
        }
        let tmp = self.root.join(format!(".{}.tmp.{}", key.file_name(), std::process::id()));
        if fs::write(&tmp, bytes).is_ok() {
            if fs::rename(&tmp, self.path_for(key)).is_ok() {
                self.count(&self.writes, "writes");
            } else {
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    fn load(&self, key: &RunKey) -> Option<Vec<u8>> {
        fs::read(self.path_for(key)).ok()
    }

    /// Fetches (or simulates and caches) the run for `spec`. The flag is
    /// `true` when the result came from the cache.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; cache I/O never fails a fetch.
    pub fn fetch_run(&self, spec: &RunSpec) -> Result<(NetworkRun, bool)> {
        let key = RunKey::for_run(spec);
        debug_assert_eq!(key.record, RecordKind::Run);
        if let Some(run) = self.runs.lock().expect("store lock").get(&key.digest) {
            self.count(&self.hits, "hits");
            return Ok((run.clone(), true));
        }
        if let Some(run) = self.load(&key).and_then(|bytes| decode_run(&bytes).ok()) {
            self.count(&self.hits, "hits");
            self.runs.lock().expect("store lock").insert(key.digest, run.clone());
            return Ok((run, true));
        }
        self.count(&self.misses, "misses");
        let run = simulate_run(spec)?;
        self.persist(&key, &encode_run(&run));
        self.runs.lock().expect("store lock").insert(key.digest, run.clone());
        Ok((run, false))
    }

    /// Fetches (or measures and caches) the build stats for `spec`. The
    /// flag is `true` when the result came from the cache.
    ///
    /// # Errors
    ///
    /// Propagates network-construction failures; cache I/O never fails a
    /// fetch.
    pub fn fetch_build(&self, spec: &BuildSpec) -> Result<(BuildStats, bool)> {
        let key = RunKey::for_build(spec);
        debug_assert_eq!(key.record, RecordKind::Build);
        if let Some(build) = self.builds.lock().expect("store lock").get(&key.digest) {
            self.count(&self.hits, "hits");
            return Ok((build.clone(), true));
        }
        if let Some(build) = self.load(&key).and_then(|bytes| decode_build(&bytes).ok()) {
            self.count(&self.hits, "hits");
            self.builds.lock().expect("store lock").insert(key.digest, build.clone());
            return Ok((build, true));
        }
        self.count(&self.misses, "misses");
        let build = measure_build(spec)?;
        self.persist(&key, &encode_build(&build));
        self.builds.lock().expect("store lock").insert(key.digest, build.clone());
        Ok((build, false))
    }

    /// Fetches (or executes and caches) the backend run for `spec`. The
    /// flag is `true` when the result came from the cache.
    ///
    /// GPU-backend requests are special-cased: the heavy payload is the
    /// simulator's `NetworkRun`, which [`fetch_run`](Self::fetch_run)
    /// already caches as a `.run` record, so the GPU path converts from
    /// that cache instead of persisting a second on-disk copy. Systolic
    /// and FPGA runs persist native `.acc` records.
    ///
    /// # Errors
    ///
    /// Propagates backend execution failures (unsupported precision,
    /// simulation errors); cache I/O never fails a fetch.
    pub fn fetch_backend(&self, spec: &BackendRunSpec) -> std::result::Result<(BackendRun, bool), BackendError> {
        let key = RunKey::for_backend(spec);
        debug_assert_eq!(key.record, RecordKind::Backend);
        if let Some(run) = self.backends.lock().expect("store lock").get(&key.digest) {
            self.count(&self.hits, "hits");
            return Ok((run.clone(), true));
        }
        if let BackendSpec::Gpu(config) = &spec.spec {
            if spec.job.precision != Precision::Fp32 {
                return Err(BackendError::Unsupported {
                    backend: BackendKind::Gpu,
                    reason: format!("{} weights (the SIMT kernel pipeline is fp32-only)", spec.job.precision),
                });
            }
            let run_spec = RunSpec {
                config: config.clone(),
                preset: spec.job.preset,
                seed: spec.job.seed,
                kind: spec.job.kind,
                options: SimOptions::new().with_batch(spec.job.batch.max(1)),
            };
            // fetch_run does its own hit/miss accounting and `.run`
            // persistence; the conversion below is deterministic, so the
            // derived BackendRun inherits the cache's replayability.
            let (net_run, was_hit) = self.fetch_run(&run_spec).map_err(BackendError::Tango)?;
            let lowered = LoweredNet::build(spec.job.kind, spec.job.preset, spec.job.seed)?;
            let run = tango_backend::convert_gpu_run(&net_run, config, &lowered, spec.job.batch);
            self.backends.lock().expect("store lock").insert(key.digest, run.clone());
            return Ok((run, was_hit));
        }
        if let Some(run) = self.load(&key).and_then(|bytes| decode_backend(&bytes).ok()) {
            self.count(&self.hits, "hits");
            self.backends.lock().expect("store lock").insert(key.digest, run.clone());
            return Ok((run, true));
        }
        self.count(&self.misses, "misses");
        let run = run_backend(spec)?;
        self.persist(&key, &encode_backend(&run));
        self.backends.lock().expect("store lock").insert(key.digest, run.clone());
        Ok((run, false))
    }
}

/// What `RunStore::disk_stats` found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Run records at the current schema version.
    pub run_records: u64,
    /// Build records at the current schema version.
    pub build_records: u64,
    /// Backend (`.acc`) records at the current schema version, counted
    /// per backend family and indexed by `BackendKind::code()`.
    pub backend_records: [u64; 3],
    /// Records written under an older (or newer) schema version, or
    /// current-version backend records with an unknown family code.
    pub stale_records: u64,
    /// Files in the store directory that are not Tango records (foreign
    /// files, leftover temp files).
    pub other_files: u64,
    /// Total bytes across all of the above.
    pub total_bytes: u64,
}

impl StoreStats {
    /// Records at the current schema version.
    pub fn live_records(&self) -> u64 {
        self.run_records + self.build_records + self.backend_records.iter().sum::<u64>()
    }

    /// Backend records for one family.
    pub fn backend_records_for(&self, kind: BackendKind) -> u64 {
        self.backend_records[usize::from(kind.code())]
    }
}

/// What `RunStore::gc` deleted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Stale-version records deleted.
    pub removed_records: u64,
    /// Bytes those records occupied.
    pub removed_bytes: u64,
    /// Records kept (current schema version).
    pub kept_records: u64,
}

impl RunStore {
    /// Scans the store directory and classifies every file by its record
    /// header (see `probe_record`). A missing directory is an empty
    /// store, not an error.
    ///
    /// # Errors
    ///
    /// Returns any I/O error other than the directory not existing.
    pub fn disk_stats(&self) -> std::io::Result<StoreStats> {
        let mut stats = StoreStats::default();
        let entries = match fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(stats),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let bytes = fs::read(entry.path())?;
            stats.total_bytes += bytes.len() as u64;
            match probe_record(&bytes) {
                Some((RecordKind::Run, STORE_SCHEMA_VERSION)) => stats.run_records += 1,
                Some((RecordKind::Build, STORE_SCHEMA_VERSION)) => stats.build_records += 1,
                Some((RecordKind::Backend, STORE_SCHEMA_VERSION)) => {
                    match probe_backend_code(&bytes).and_then(BackendKind::from_code) {
                        Some(kind) => stats.backend_records[usize::from(kind.code())] += 1,
                        // A current-version record claiming an unknown
                        // family can never decode: treat it as stale.
                        None => stats.stale_records += 1,
                    }
                }
                Some(_) => stats.stale_records += 1,
                None => stats.other_files += 1,
            }
        }
        Ok(stats)
    }

    /// Deletes records written under a schema version other than
    /// [`STORE_SCHEMA_VERSION`]. They can never be looked up again (the
    /// version is part of the key digest), so they are pure dead weight.
    /// Files that are not Tango records are left untouched.
    ///
    /// # Errors
    ///
    /// Returns any I/O error other than the directory not existing.
    pub fn gc(&self) -> std::io::Result<GcReport> {
        let mut report = GcReport::default();
        let entries = match fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let bytes = fs::read(entry.path())?;
            match probe_record(&bytes) {
                Some((_, STORE_SCHEMA_VERSION)) => report.kept_records += 1,
                Some(_) => {
                    fs::remove_file(entry.path())?;
                    report.removed_records += 1;
                    report.removed_bytes += bytes.len() as u64;
                }
                None => {}
            }
        }
        Ok(report)
    }
}

impl RunSource for RunStore {
    fn network_run(&self, spec: &RunSpec) -> Result<NetworkRun> {
        self.fetch_run(spec).map(|(run, _)| run)
    }

    fn build_stats(&self, spec: &BuildSpec) -> Result<BuildStats> {
        self.fetch_build(spec).map(|(build, _)| build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_nets::{NetworkKind, Preset};
    use tango_sim::{GpuConfig, SimOptions};

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tango-store-{tag}-{}", std::process::id()))
    }

    fn spec() -> RunSpec {
        RunSpec {
            config: GpuConfig::gp102(),
            preset: Preset::Tiny,
            seed: 21,
            kind: NetworkKind::Gru,
            options: SimOptions::new(),
        }
    }

    #[test]
    fn memory_then_disk_then_simulate() {
        let root = scratch("mem-disk");
        let _ = fs::remove_dir_all(&root);
        let store = RunStore::at(&root);
        let (cold, was_hit) = store.fetch_run(&spec()).unwrap();
        assert!(!was_hit);
        assert_eq!((store.hits(), store.misses()), (0, 1));

        let (warm, was_hit) = store.fetch_run(&spec()).unwrap();
        assert!(was_hit, "second fetch must hit memory");
        assert_eq!(warm, cold);

        // A fresh store over the same directory must hit disk.
        let reopened = RunStore::at(&root);
        let (from_disk, was_hit) = reopened.fetch_run(&spec()).unwrap();
        assert!(was_hit, "fresh store must hit the persisted record");
        assert_eq!(from_disk, cold);
        assert_eq!((reopened.hits(), reopened.misses()), (1, 0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_records_fall_back_to_simulation() {
        let root = scratch("corrupt");
        let _ = fs::remove_dir_all(&root);
        let store = RunStore::at(&root);
        let (good, _) = store.fetch_run(&spec()).unwrap();
        let path = store.path_for(&RunKey::for_run(&spec()));
        fs::write(&path, b"TNGRgarbage").unwrap();

        let reopened = RunStore::at(&root);
        let (recovered, was_hit) = reopened.fetch_run(&spec()).unwrap();
        assert!(!was_hit, "corrupt record must count as a miss");
        assert_eq!(recovered, good);
        // The bad record was rewritten with a valid one.
        let (again, was_hit) = RunStore::at(&root).fetch_run(&spec()).unwrap();
        assert!(was_hit);
        assert_eq!(again, good);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_stats_and_gc_classify_records() {
        let root = scratch("stats-gc");
        let _ = fs::remove_dir_all(&root);
        let store = RunStore::at(&root);
        // Empty (missing) directory: all zeros, no error.
        assert_eq!(store.disk_stats().unwrap(), StoreStats::default());
        assert_eq!(store.gc().unwrap(), GcReport::default());

        store.fetch_run(&spec()).unwrap();
        store
            .fetch_build(&BuildSpec {
                preset: Preset::Tiny,
                seed: 21,
                kind: NetworkKind::Gru,
            })
            .unwrap();
        // A record from a previous schema version, and a foreign file.
        let mut stale = b"TNGR".to_vec();
        stale.extend_from_slice(&1u32.to_le_bytes());
        stale.extend_from_slice(b"old payload");
        fs::write(root.join("gru-00000000deadbeef.run"), &stale).unwrap();
        fs::write(root.join("README.txt"), b"not a record").unwrap();

        let stats = store.disk_stats().unwrap();
        assert_eq!(stats.run_records, 1);
        assert_eq!(stats.build_records, 1);
        assert_eq!(stats.stale_records, 1);
        assert_eq!(stats.other_files, 1);
        assert!(stats.total_bytes > stale.len() as u64);
        assert_eq!(stats.live_records(), 2);

        let report = store.gc().unwrap();
        assert_eq!(report.removed_records, 1);
        assert_eq!(report.removed_bytes, stale.len() as u64);
        assert_eq!(report.kept_records, 2);
        // Live records and foreign files survive; the stale record is gone.
        let after = store.disk_stats().unwrap();
        assert_eq!(after.stale_records, 0);
        assert_eq!(after.live_records(), 2);
        assert_eq!(after.other_files, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn backend_runs_are_cached_and_replayable() {
        use tango_backend::{BackendJob, SystolicConfig};
        let root = scratch("backend");
        let _ = fs::remove_dir_all(&root);
        let store = RunStore::at(&root);
        let bspec = BackendRunSpec {
            spec: BackendSpec::Systolic(SystolicConfig::edge()),
            job: BackendJob {
                kind: NetworkKind::Gru,
                preset: Preset::Tiny,
                seed: 21,
                batch: 1,
                precision: Precision::Int8,
            },
        };
        let (cold, was_hit) = store.fetch_backend(&bspec).unwrap();
        assert!(!was_hit);
        let (warm, was_hit) = store.fetch_backend(&bspec).unwrap();
        assert!(was_hit, "second fetch must hit memory");
        assert_eq!(warm, cold);
        // A fresh store over the same directory replays from the `.acc`
        // record without re-running the model.
        let reopened = RunStore::at(&root);
        let (from_disk, was_hit) = reopened.fetch_backend(&bspec).unwrap();
        assert!(was_hit, "fresh store must hit the persisted record");
        assert_eq!(from_disk, cold);
        assert_eq!((reopened.hits(), reopened.misses()), (1, 0));

        // GPU-backend fetches ride the `.run` cache: a warm rerun in a
        // fresh store is a hit even though no `.acc` file exists.
        let gspec = BackendRunSpec {
            spec: BackendSpec::Gpu(tango_sim::GpuConfig::gp102()),
            job: BackendJob {
                kind: NetworkKind::Gru,
                preset: Preset::Tiny,
                seed: 21,
                batch: 1,
                precision: Precision::Fp32,
            },
        };
        let (gcold, was_hit) = store.fetch_backend(&gspec).unwrap();
        assert!(!was_hit);
        let (gwarm, was_hit) = RunStore::at(&root).fetch_backend(&gspec).unwrap();
        assert!(was_hit, "GPU backend must replay from the .run record");
        assert_eq!(gwarm, gcold);

        let stats = store.disk_stats().unwrap();
        assert_eq!(stats.backend_records_for(BackendKind::Systolic), 1);
        assert_eq!(stats.backend_records_for(BackendKind::Gpu), 0, "GPU backend persists no .acc");
        assert_eq!(stats.run_records, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn builds_are_cached_separately() {
        let root = scratch("builds");
        let _ = fs::remove_dir_all(&root);
        let store = RunStore::at(&root);
        let bspec = BuildSpec {
            preset: Preset::Tiny,
            seed: 21,
            kind: NetworkKind::Gru,
        };
        let (cold, was_hit) = store.fetch_build(&bspec).unwrap();
        assert!(!was_hit);
        let (warm, was_hit) = store.fetch_build(&bspec).unwrap();
        assert!(was_hit);
        assert_eq!(warm, cold);
        let (from_disk, was_hit) = RunStore::at(&root).fetch_build(&bspec).unwrap();
        assert!(was_hit);
        assert_eq!(from_disk, cold);
        let _ = fs::remove_dir_all(&root);
    }
}
