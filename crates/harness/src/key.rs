//! Content-addressed store keys.
//!
//! A [`RunKey`] digests *everything* that determines a run's outcome —
//! network kind, the full `GpuConfig` (including power constants), the
//! complete `SimOptions`, preset, seed — plus the store schema version
//! and a record-type tag. Any field change, or any change to the on-disk
//! record layout (bump [`STORE_SCHEMA_VERSION`]), produces a different
//! key, so stale cache entries can never be returned for a new
//! configuration.

use crate::hash::StableHasher;
use tango::{BuildSpec, RunSpec};
use tango_backend::{BackendRunSpec, BackendSpec, SystolicConfig};
use tango_fpga::PynqConfig;
use tango_nets::{NetworkKind, Preset};
use tango_sim::{CacheGeometry, GpuConfig, PowerConstants, SchedulerPolicy, SimOptions};

/// Version of the store's key derivation *and* record encoding. Bump on
/// any change to either; old entries are then simply never looked up
/// again (and unreadable leftovers are treated as misses — `harness store
/// gc` deletes them).
///
/// History: v1 = initial schema; v2 = `SimOptions::batch` joined the key
/// derivation; v3 = backend records (`.acc`) and the backend
/// discriminant joined the schema; v4 = single-block (ChannelLoop)
/// kernels dropped their dead `%ctaid.x` read — keys do not hash kernel
/// programs, so the emission change must retire old records here.
pub const STORE_SCHEMA_VERSION: u32 = 4;

/// Stable numeric code for a network kind (part of the on-disk schema —
/// append-only).
pub fn network_kind_code(kind: NetworkKind) -> u8 {
    match kind {
        NetworkKind::CifarNet => 0,
        NetworkKind::AlexNet => 1,
        NetworkKind::SqueezeNet => 2,
        NetworkKind::ResNet50 => 3,
        NetworkKind::VggNet16 => 4,
        NetworkKind::Gru => 5,
        NetworkKind::Lstm => 6,
        NetworkKind::MobileNet => 7,
    }
}

/// Inverse of [`network_kind_code`].
pub fn network_kind_from_code(code: u8) -> Option<NetworkKind> {
    Some(match code {
        0 => NetworkKind::CifarNet,
        1 => NetworkKind::AlexNet,
        2 => NetworkKind::SqueezeNet,
        3 => NetworkKind::ResNet50,
        4 => NetworkKind::VggNet16,
        5 => NetworkKind::Gru,
        6 => NetworkKind::Lstm,
        7 => NetworkKind::MobileNet,
        _ => return None,
    })
}

/// Stable numeric code for a preset.
pub fn preset_code(preset: Preset) -> u8 {
    match preset {
        Preset::Paper => 0,
        Preset::Bench => 1,
        Preset::Tiny => 2,
    }
}

/// Stable numeric code for a scheduler policy.
pub fn scheduler_code(policy: SchedulerPolicy) -> u8 {
    match policy {
        SchedulerPolicy::Gto => 0,
        SchedulerPolicy::Lrr => 1,
        SchedulerPolicy::Tlv => 2,
    }
}

fn hash_cache_geometry(h: &mut StableHasher, g: &CacheGeometry) {
    h.write_u32(g.size_bytes);
    h.write_u32(g.line_bytes);
    h.write_u32(g.assoc);
}

fn hash_power_constants(h: &mut StableHasher, p: &PowerConstants) {
    for v in [
        p.rf_access_nj,
        p.ibp_nj,
        p.icp_nj,
        p.sched_nj,
        p.pipe_nj,
        p.sp_nj,
        p.fpu_nj,
        p.sfu_nj,
        p.l1_nj,
        p.tex_nj,
        p.const_nj,
        p.shared_nj,
        p.l2_nj,
        p.mc_nj,
        p.noc_nj,
        p.dram_nj,
        p.idle_sm_w,
        p.active_sm_w,
        p.const_w,
    ] {
        h.write_f64(v);
    }
}

fn hash_gpu_config(h: &mut StableHasher, c: &GpuConfig) {
    h.write_str(&c.name);
    for v in [
        c.num_sms,
        c.warp_size,
        c.max_threads_per_sm,
        c.max_ctas_per_sm,
        c.registers_per_sm,
        c.shared_mem_per_sm,
        c.issue_width,
        c.sp_width,
        c.sfu_width,
        c.ldst_width,
        c.alu_latency,
        c.sfu_latency,
        c.shared_latency,
        c.const_latency,
        c.l1_latency,
        c.l2_latency,
        c.dram_latency,
        c.dram_bytes_per_cycle,
        c.mshrs_per_sm,
        c.requeue_penalty,
        c.fetch_bubble,
    ] {
        h.write_u32(v);
    }
    match &c.l1d {
        None => h.write_u8(0),
        Some(g) => {
            h.write_u8(1);
            hash_cache_geometry(h, g);
        }
    }
    hash_cache_geometry(h, &c.l2);
    h.write_f64(c.clock_ghz);
    h.write_u8(scheduler_code(c.scheduler));
    hash_power_constants(h, &c.power);
}

fn hash_sim_options(h: &mut StableHasher, o: &SimOptions) {
    match o.scheduler {
        None => h.write_u8(0),
        Some(p) => {
            h.write_u8(1);
            h.write_u8(scheduler_code(p));
        }
    }
    h.write_opt_u32(o.l1d_bytes);
    h.write_opt_u64(o.cta_sample_limit);
    h.write_u64(o.power_window);
    h.write_u32(o.batch);
}

fn hash_systolic_config(h: &mut StableHasher, c: &SystolicConfig) {
    h.write_str(&c.name);
    for v in [
        c.rows,
        c.cols,
        c.acc_depth,
        c.weight_bytes_per_cycle,
        c.ub_bytes_per_cycle,
        c.vector_lanes,
    ] {
        h.write_u32(v);
    }
    h.write_u64(c.unified_buffer_bytes);
    h.write_u64(c.vector_overhead_cycles);
    for v in [
        c.clock_ghz,
        c.mac_fp32_pj,
        c.mac_int16_pj,
        c.mac_int8_pj,
        c.ub_pj_per_byte,
        c.dram_pj_per_byte,
        c.static_w,
    ] {
        h.write_f64(v);
    }
}

fn hash_pynq_config(h: &mut StableHasher, c: &PynqConfig) {
    h.write_u32(c.mac_units);
    h.write_u64(c.bram_bytes);
    for v in [
        c.fabric_mhz,
        c.ddr_bytes_per_s,
        c.partition_overhead_s,
        c.active_power_w,
        c.idle_power_w,
    ] {
        h.write_f64(v);
    }
}

/// Record-type tag mixed into the digest so a build record can never
/// alias a run record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// A full simulated inference (`NetworkRun`).
    Run,
    /// Build-only static stats (`BuildStats`).
    Build,
    /// A backend execution (`BackendRun`) — any accelerator family.
    Backend,
}

impl RecordKind {
    fn code(self) -> u8 {
        match self {
            RecordKind::Run => 0,
            RecordKind::Build => 1,
            RecordKind::Backend => 2,
        }
    }

    /// File extension for this record kind.
    pub fn extension(self) -> &'static str {
        match self {
            RecordKind::Run => "run",
            RecordKind::Build => "build",
            RecordKind::Backend => "acc",
        }
    }
}

/// A content-addressed store key: the digest plus enough metadata to
/// name the entry's file readably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Stable digest over the full spec + schema version.
    pub digest: u64,
    /// The network the entry describes (file-name prefix only).
    pub kind: NetworkKind,
    /// Whether the entry is a simulated run or build-only stats.
    pub record: RecordKind,
}

impl RunKey {
    /// Key for a full simulated run.
    pub fn for_run(spec: &RunSpec) -> RunKey {
        let mut h = StableHasher::new();
        h.write_u32(STORE_SCHEMA_VERSION);
        h.write_u8(RecordKind::Run.code());
        h.write_u8(network_kind_code(spec.kind));
        h.write_u8(preset_code(spec.preset));
        h.write_u64(spec.seed);
        hash_gpu_config(&mut h, &spec.config);
        hash_sim_options(&mut h, &spec.options);
        RunKey {
            digest: h.finish(),
            kind: spec.kind,
            record: RecordKind::Run,
        }
    }

    /// Key for build-only stats.
    pub fn for_build(spec: &BuildSpec) -> RunKey {
        let mut h = StableHasher::new();
        h.write_u32(STORE_SCHEMA_VERSION);
        h.write_u8(RecordKind::Build.code());
        h.write_u8(network_kind_code(spec.kind));
        h.write_u8(preset_code(spec.preset));
        h.write_u64(spec.seed);
        RunKey {
            digest: h.finish(),
            kind: spec.kind,
            record: RecordKind::Build,
        }
    }

    /// Key for a backend execution. Hashes the backend discriminant, the
    /// full workload (kind/preset/seed/batch/precision), and every field
    /// of the hardware description, so two accelerator configs can never
    /// share a record.
    pub fn for_backend(spec: &BackendRunSpec) -> RunKey {
        let mut h = StableHasher::new();
        h.write_u32(STORE_SCHEMA_VERSION);
        h.write_u8(RecordKind::Backend.code());
        h.write_u8(spec.spec.kind().code());
        h.write_u8(network_kind_code(spec.job.kind));
        h.write_u8(preset_code(spec.job.preset));
        h.write_u64(spec.job.seed);
        h.write_u32(spec.job.batch);
        h.write_u8(spec.job.precision.code());
        match &spec.spec {
            BackendSpec::Gpu(c) => hash_gpu_config(&mut h, c),
            BackendSpec::Systolic(c) => hash_systolic_config(&mut h, c),
            BackendSpec::Fpga(c) => hash_pynq_config(&mut h, c),
        }
        RunKey {
            digest: h.finish(),
            kind: spec.job.kind,
            record: RecordKind::Backend,
        }
    }

    /// The entry's file name under the store root, e.g.
    /// `alexnet-9f2c41d07be3a815.run`.
    pub fn file_name(&self) -> String {
        format!(
            "{}-{:016x}.{}",
            self.kind.name().to_lowercase(),
            self.digest,
            self.record.extension()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_sim::GpuConfig;

    fn spec() -> RunSpec {
        RunSpec {
            config: GpuConfig::gp102(),
            preset: Preset::Tiny,
            seed: 7,
            kind: NetworkKind::CifarNet,
            options: SimOptions::new(),
        }
    }

    #[test]
    fn same_spec_same_key() {
        assert_eq!(RunKey::for_run(&spec()).digest, RunKey::for_run(&spec()).digest);
    }

    #[test]
    fn every_field_discriminates() {
        let base = RunKey::for_run(&spec()).digest;
        let mut s = spec();
        s.kind = NetworkKind::Gru;
        assert_ne!(base, RunKey::for_run(&s).digest);
        let mut s = spec();
        s.preset = Preset::Bench;
        assert_ne!(base, RunKey::for_run(&s).digest);
        let mut s = spec();
        s.seed = 8;
        assert_ne!(base, RunKey::for_run(&s).digest);
        let mut s = spec();
        s.config = GpuConfig::gk210();
        assert_ne!(base, RunKey::for_run(&s).digest);
        let mut s = spec();
        s.config.mshrs_per_sm += 1;
        assert_ne!(base, RunKey::for_run(&s).digest);
        let mut s = spec();
        s.options = SimOptions::new().with_l1d_bytes(0);
        assert_ne!(base, RunKey::for_run(&s).digest);
        let mut s = spec();
        s.options = SimOptions::new().with_scheduler(SchedulerPolicy::Gto);
        assert_ne!(base, RunKey::for_run(&s).digest, "Some(default) must differ from None");
        let mut s = spec();
        s.options = SimOptions::new().with_batch(2);
        assert_ne!(base, RunKey::for_run(&s).digest, "batch factor must discriminate");
    }

    #[test]
    fn run_and_build_records_never_alias() {
        let r = RunKey::for_run(&spec());
        let b = RunKey::for_build(&BuildSpec {
            preset: Preset::Tiny,
            seed: 7,
            kind: NetworkKind::CifarNet,
        });
        assert_ne!(r.digest, b.digest);
        assert_ne!(r.file_name(), b.file_name());
    }

    #[test]
    fn backend_keys_discriminate_hardware_and_precision() {
        use tango_backend::{BackendJob, Precision};
        let job = BackendJob {
            kind: NetworkKind::CifarNet,
            preset: Preset::Tiny,
            seed: 7,
            batch: 1,
            precision: Precision::Fp32,
        };
        let sys = BackendRunSpec {
            spec: BackendSpec::Systolic(SystolicConfig::edge()),
            job,
        };
        let base = RunKey::for_backend(&sys).digest;
        assert_eq!(base, RunKey::for_backend(&sys).digest);

        let gpu = BackendRunSpec {
            spec: BackendSpec::Gpu(GpuConfig::gp102()),
            job,
        };
        let fpga = BackendRunSpec {
            spec: BackendSpec::Fpga(PynqConfig::pynq_z1()),
            job,
        };
        assert_ne!(base, RunKey::for_backend(&gpu).digest);
        assert_ne!(base, RunKey::for_backend(&fpga).digest);
        assert_ne!(RunKey::for_backend(&gpu).digest, RunKey::for_backend(&fpga).digest);

        let mut s = sys.clone();
        s.job.precision = Precision::Int8;
        assert_ne!(base, RunKey::for_backend(&s).digest);
        let mut s = sys.clone();
        s.job.batch = 2;
        assert_ne!(base, RunKey::for_backend(&s).digest);
        let mut s = sys.clone();
        if let BackendSpec::Systolic(c) = &mut s.spec {
            c.rows *= 2;
        }
        assert_ne!(base, RunKey::for_backend(&s).digest);

        // A backend GPU record must never alias the plain run record for
        // the same spec (different RecordKind code).
        let run = RunKey::for_run(&spec());
        assert_ne!(run.digest, RunKey::for_backend(&gpu).digest);
        assert!(RunKey::for_backend(&sys).file_name().ends_with(".acc"));
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in NetworkKind::EXTENDED {
            assert_eq!(network_kind_from_code(network_kind_code(kind)), Some(kind));
        }
        assert_eq!(network_kind_from_code(200), None);
    }
}
