use tango::Characterizer;
use tango_nets::{NetworkKind, Preset};
use tango_sim::GpuConfig;
use std::time::Instant;

fn main() {
    let ch = Characterizer::new(GpuConfig::tx1(), Preset::Paper, 1);
    for kind in [NetworkKind::CifarNet, NetworkKind::SqueezeNet] {
        let t = Instant::now();
        let run = ch.run_network(kind, &ch.default_options()).unwrap();
        println!(
            "{} paper on TX1: wall {:.1}s, sim time {:.4}s, peak {:.1} W",
            kind.name(), t.elapsed().as_secs_f64(),
            run.report.total_time_s(), run.report.peak_power_w()
        );
    }
}
