use std::error::Error;
use std::fmt;
use tango_nets::NetError;

/// Error produced by the characterization API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TangoError {
    /// Building or running a network failed.
    Net(NetError),
    /// An accelerator backend rejected or failed the request (e.g. an
    /// unsupported precision); the message names the backend.
    Backend(String),
}

impl fmt::Display for TangoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TangoError::Net(e) => write!(f, "network error: {e}"),
            TangoError::Backend(msg) => write!(f, "backend error: {msg}"),
        }
    }
}

impl Error for TangoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TangoError::Net(e) => Some(e),
            TangoError::Backend(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<NetError> for TangoError {
    fn from(e: NetError) -> Self {
        TangoError::Net(e)
    }
}
