//! Table producers: the paper's Tables I-IV as printable text.

use crate::{Characterizer, Result};
use std::fmt::Write as _;
use tango_fpga::PynqConfig;
use tango_nets::{model_info, NetworkKind, Preset};
use tango_sim::GpuConfig;

/// Table I: input data, pre-trained models (and this reproduction's
/// substitutions), and outputs per network.
pub fn table1_models() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table I: Input/Output and Pre-trained Models used by networks");
    for kind in NetworkKind::ALL {
        let info = model_info(kind);
        let _ = writeln!(out, "{}", info.kind.name());
        let _ = writeln!(out, "  input      : {}", info.input);
        let _ = writeln!(out, "  paper model: {}", info.paper_model);
        let _ = writeln!(out, "  substitute : {}", info.substitute);
        let _ = writeln!(out, "  output     : {}", info.output);
    }
    out
}

fn describe_gpu(cfg: &GpuConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", cfg.name);
    let _ = writeln!(out, "  SMs x warp size       : {} x {}", cfg.num_sms, cfg.warp_size);
    let _ = writeln!(out, "  registers per SM      : {}", cfg.registers_per_sm);
    let _ = writeln!(out, "  shared memory per SM  : {} KB", cfg.shared_mem_per_sm / 1024);
    let _ = match cfg.l1d {
        Some(g) => writeln!(
            out,
            "  L1D                   : {} KB, {}-way, {} B lines",
            g.size_bytes / 1024,
            g.assoc,
            g.line_bytes
        ),
        None => writeln!(out, "  L1D                   : disabled"),
    };
    let _ = writeln!(out, "  L2                    : {} KB", cfg.l2.size_bytes / 1024);
    let _ = writeln!(out, "  clock                 : {:.3} GHz", cfg.clock_ghz);
    let _ = writeln!(out, "  warp scheduler        : {} (default; lrr, tlv selectable)", cfg.scheduler);
    out
}

/// Table II: the GPU architectures used for evaluation.
pub fn table2_gpus() -> String {
    let mut out = String::from("# Table II: GPU architectures used for evaluation\n");
    for cfg in [GpuConfig::gk210(), GpuConfig::tx1(), GpuConfig::gp102()] {
        out.push_str(&describe_gpu(&cfg));
    }
    out
}

/// Table III: per-layer kernel configuration (gridDim, blockDim, regs,
/// smem, cmem) for one network at full published size, pulled through
/// `ch`'s run source.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn table3_network(ch: &Characterizer, kind: NetworkKind) -> Result<String> {
    let build = ch.build_stats(kind, Preset::Paper)?;
    let mut out = String::new();
    let _ = writeln!(out, "# Table III ({}): Network Configuration and SRAM Usage", kind.name());
    let _ = writeln!(
        out,
        "{:<24} {:>16} {:>14} {:>5} {:>6} {:>6}",
        "Layer", "gridDim", "blockDim", "regs", "smem", "cmem"
    );
    for layer in &build.layers {
        let _ = writeln!(
            out,
            "{:<24} {:>16} {:>14} {:>5} {:>6} {:>6}",
            layer.name,
            layer.grid.to_string(),
            layer.block.to_string(),
            layer.regs,
            layer.smem_bytes,
            layer.cmem_bytes
        );
    }
    Ok(out)
}

/// Table III for every network, concatenated.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn table3_all(ch: &Characterizer) -> Result<String> {
    let mut out = String::new();
    for kind in NetworkKind::ALL {
        out.push_str(&table3_network(ch, kind)?);
        out.push('\n');
    }
    Ok(out)
}

/// Table IV: the FPGA platform used for evaluation.
pub fn table4_fpga() -> String {
    let cfg = PynqConfig::pynq_z1();
    let mut out = String::from("# Table IV: FPGA platform used for evaluation\n");
    let _ = writeln!(out, "Xilinx PynQ-Z1 (Zynq Z7020)");
    let _ = writeln!(out, "  processor          : Dual-core ARM Cortex-A9 @ 650 MHz");
    let _ = writeln!(
        out,
        "  memory             : 512 MB DDR3 ({:.2} GB/s effective)",
        cfg.ddr_bytes_per_s / 1e9
    );
    let _ = writeln!(out, "  BRAM               : {} KB", cfg.bram_bytes / 1024);
    let _ = writeln!(out, "  fabric clock       : {} MHz", cfg.fabric_mhz);
    let _ = writeln!(out, "  fp32 MAC units     : {}", cfg.mac_units);
    let _ = writeln!(
        out,
        "  board power        : {:.1} W active / {:.1} W idle",
        cfg.active_power_w, cfg.idle_power_w
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_networks() {
        let t = table1_models();
        for kind in NetworkKind::ALL {
            assert!(t.contains(kind.name()), "{} missing", kind.name());
        }
        assert!(t.contains("bitcoin-price-prediction"));
    }

    #[test]
    fn table2_lists_three_gpus() {
        let t = table2_gpus();
        assert!(t.contains("GK210"));
        assert!(t.contains("Tegra X1"));
        assert!(t.contains("GP102"));
    }

    #[test]
    fn table3_cifarnet_matches_paper_geometry() {
        let ch = Characterizer::new(GpuConfig::gp102(), Preset::Paper, 3);
        let t = table3_network(&ch, NetworkKind::CifarNet).unwrap();
        // The paper's CifarNet conv kernels: (1,1,1) grids of (32,32,1).
        assert!(t.contains("conv1"), "{t}");
        assert!(t.contains("(1, 1, 1)"));
        assert!(t.contains("(32, 32, 1)"));
    }

    #[test]
    fn table4_mentions_the_board() {
        let t = table4_fpga();
        assert!(t.contains("PynQ-Z1"));
        assert!(t.contains("630 KB"));
    }
}
