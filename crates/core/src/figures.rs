//! Per-figure data producers — one function per figure of the paper's
//! evaluation section (Figures 1-16), each returning a [`Matrix`] (or a
//! small struct of them) that the `tango-bench` binaries print and the
//! integration tests assert shape properties on.
//!
//! Simulated figures take either a [`Characterizer`] (when they need
//! special run configurations) or previously-collected [`NetworkRun`]s
//! (when several figures share the same default runs — see
//! [`run_default_suite`]).

use crate::characterize::{Characterizer, NetworkRun};
use crate::report::{Matrix, Unit};
use crate::Result;
use std::collections::BTreeMap;
use tango_fpga::PynqZ1;
use tango_isa::{DType, Opcode};
use tango_nets::{build_network, LayerType, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig, SchedulerPolicy, StallReason};

/// Runs all seven networks once with default options (the shared input of
/// Figures 1, 3, 4, 5, 8, 9, 10).
///
/// # Errors
///
/// Propagates the first network failure.
pub fn run_default_suite(ch: &Characterizer) -> Result<Vec<NetworkRun>> {
    NetworkKind::ALL
        .iter()
        .map(|&k| ch.run_network(k, &ch.default_options()))
        .collect()
}

fn find(runs: &[NetworkRun], kind: NetworkKind) -> Option<&NetworkRun> {
    runs.iter().find(|r| r.kind == kind)
}

fn layer_type_columns(runs: &[&NetworkRun]) -> Vec<&'static str> {
    let mut cols: Vec<&'static str> = Vec::new();
    for run in runs {
        for rec in &run.report.records {
            let label = rec.layer_type.label();
            if !cols.contains(&label) {
                cols.push(label);
            }
        }
    }
    cols
}

/// Figure 1: execution-time breakdown w.r.t. layer type for the four CNNs
/// the paper plots.
pub fn fig1_time_breakdown(runs: &[NetworkRun]) -> Matrix {
    let cnns: Vec<&NetworkRun> = NetworkKind::FIGURE_CNNS
        .iter()
        .filter_map(|&k| find(runs, k))
        .collect();
    let cols = layer_type_columns(&cnns);
    let mut m = Matrix::new(
        "Fig 1: Execution Time Breakdown w.r.t. Layer Type",
        "Network",
        cols.iter().map(|c| c.to_string()).collect(),
        Unit::Percent,
    );
    for run in cnns {
        let total: u64 = run.report.total_cycles().max(1);
        let mut by: BTreeMap<&str, u64> = BTreeMap::new();
        for rec in &run.report.records {
            *by.entry(rec.layer_type.label()).or_insert(0) += rec.stats.cycles;
        }
        let values = cols
            .iter()
            .map(|c| *by.get(*c).unwrap_or(&0) as f64 / total as f64)
            .collect();
        m.push_row(run.kind.name(), values);
    }
    m
}

/// Figure 2: normalized execution time under L1D sizes
/// {bypassed, 64 KB, 128 KB, 256 KB}, normalized to the bypassed run.
///
/// # Errors
///
/// Propagates network failures.
pub fn fig2_l1d_sensitivity(ch: &Characterizer) -> Result<Matrix> {
    let sizes: [(&str, u32); 4] = [("No L1", 0), ("L1", 64 << 10), ("2xL1", 128 << 10), ("4xL1", 256 << 10)];
    let mut m = Matrix::new(
        "Fig 2: Normalized Execution Time with Various L1D Sizes",
        "Network",
        sizes.iter().map(|(n, _)| n.to_string()).collect(),
        Unit::Ratio,
    );
    for kind in NetworkKind::ALL {
        let mut row = Vec::new();
        let mut base = 0u64;
        for (_, bytes) in sizes {
            let run = ch.run_network(kind, &ch.default_options().with_l1d_bytes(bytes))?;
            let cycles = run.report.total_cycles().max(1);
            if base == 0 {
                base = cycles;
            }
            row.push(cycles as f64 / base as f64);
        }
        m.push_row(kind.name(), row);
    }
    Ok(m)
}

/// Figure 3: peak power across layers per network, in watts.
pub fn fig3_peak_power(runs: &[NetworkRun]) -> Matrix {
    let mut m = Matrix::new(
        "Fig 3: Peak Power Consumption Across Layers (W)",
        "Network",
        vec!["Peak Power".into()],
        Unit::Watts,
    );
    for run in runs {
        m.push_row(run.kind.name(), vec![run.report.peak_power_w()]);
    }
    m
}

/// Figure 4: average power per layer type for the four CNNs, as shares of
/// the network's energy (the paper's stacked per-type power plot).
pub fn fig4_power_per_layer_type(runs: &[NetworkRun]) -> Matrix {
    let cnns: Vec<&NetworkRun> = NetworkKind::FIGURE_CNNS
        .iter()
        .filter_map(|&k| find(runs, k))
        .collect();
    // Figure 4 merges fire squeeze/expand into "Fire".
    let mut cols: Vec<&'static str> = Vec::new();
    for run in &cnns {
        for rec in &run.report.records {
            let label = rec.layer_type.coarse_label();
            if !cols.contains(&label) {
                cols.push(label);
            }
        }
    }
    let mut m = Matrix::new(
        "Fig 4: Average Power Consumption per Layer Type",
        "Network",
        cols.iter().map(|c| c.to_string()).collect(),
        Unit::Percent,
    );
    for run in cnns {
        let mut by: BTreeMap<&str, f64> = BTreeMap::new();
        let mut total = 0.0;
        for rec in &run.report.records {
            // Energy shares reproduce the relative heights of the paper's
            // stacked per-type power bars.
            let e = rec.stats.energy.total();
            *by.entry(rec.layer_type.coarse_label()).or_insert(0.0) += e;
            total += e;
        }
        let values = cols
            .iter()
            .map(|c| by.get(*c).copied().unwrap_or(0.0) / total.max(f64::MIN_POSITIVE))
            .collect();
        m.push_row(run.kind.name(), values);
    }
    m
}

/// Figure 5: power breakdown w.r.t. hardware components per network.
pub fn fig5_power_components(runs: &[NetworkRun]) -> Matrix {
    use tango_sim::Component;
    let mut m = Matrix::new(
        "Fig 5: Breakdown of Average Power Consumption",
        "Network",
        Component::ALL.iter().map(|c| c.label().to_string()).collect(),
        Unit::Percent,
    );
    for run in runs {
        let mut energy = tango_sim::EnergyBreakdown::new();
        for rec in &run.report.records {
            energy.merge(&rec.stats.energy);
        }
        let values = Component::ALL.iter().map(|&c| energy.fraction(c)).collect();
        m.push_row(run.kind.name(), values);
    }
    m
}

/// Figure 6 result set: TX1-vs-PynQ comparison for CifarNet and
/// SqueezeNet.
#[derive(Debug, Clone)]
pub struct Fig6Report {
    /// Normalized energy (PynQ = 1.0), the paper's headline plot.
    pub normalized_energy: Matrix,
    /// Raw execution times.
    pub time_s: Matrix,
    /// Raw peak powers.
    pub peak_power_w: Matrix,
}

/// Figure 6: energy on the embedded GPU (TX1) vs the embedded FPGA
/// (PynQ), energy computed as peak power x execution time exactly as the
/// paper does. The TX1 runs route through `ch`'s run source (keeping its
/// seed), so a warm store skips the expensive full-size simulations.
///
/// # Errors
///
/// Propagates network failures.
pub fn fig6_tx1_vs_pynq(ch: &Characterizer, preset: Preset) -> Result<Fig6Report> {
    let seed = ch.seed();
    let ch = ch.with_config(GpuConfig::tx1()).with_preset(preset);
    // The embedded comparison is meaningful at published model sizes
    // (layer-count-driven FPGA overheads do not shrink with channel
    // scaling); CTA sampling keeps the TX1 side tractable.
    let opts = ch.default_options().with_cta_sample_limit(Some(48));
    let board = PynqZ1::new();
    let cols = vec!["TX1".to_string(), "PynQ".to_string()];
    let mut energy = Matrix::new(
        "Fig 6: Energy on Embedded GPU (TX1) vs Embedded FPGA (PynQ), normalized to PynQ",
        "Network",
        cols.clone(),
        Unit::Ratio,
    );
    let mut time = Matrix::new("Fig 6 (detail): Execution Time", "Network", cols.clone(), Unit::Seconds);
    let mut power = Matrix::new("Fig 6 (detail): Peak Power", "Network", cols, Unit::Watts);
    for kind in [NetworkKind::CifarNet, NetworkKind::SqueezeNet] {
        let gpu_run = ch.run_network(kind, &opts)?;
        let gpu_time = gpu_run.report.total_time_s();
        let gpu_peak = gpu_run.report.peak_power_w();
        let gpu_energy = gpu_peak * gpu_time; // the paper's methodology

        let mut dev = Gpu::new(GpuConfig::tx1());
        let net = build_network(&mut dev, kind, preset, seed)?;
        let fpga = board.run_network(&net);

        energy.push_row(kind.name(), vec![gpu_energy / fpga.energy_j, 1.0]);
        time.push_row(kind.name(), vec![gpu_time, fpga.time_s]);
        power.push_row(kind.name(), vec![gpu_peak, fpga.peak_power_w]);
    }
    Ok(Fig6Report {
        normalized_energy: energy,
        time_s: time,
        peak_power_w: power,
    })
}

/// Figure 7: stall-cycle breakdown per layer type of each network, plus
/// the cross-network per-type summary section. Run on the GK210 preset
/// like the paper (which profiled its K80 with `nvprof`).
///
/// # Errors
///
/// Propagates network failures.
pub fn fig7_stall_breakdown(ch: &Characterizer) -> Result<Matrix> {
    let ch = ch.with_config(GpuConfig::gk210());
    let mut m = Matrix::new(
        "Fig 7: Breakdown of Stall Cycles (GK210)",
        "Network/Layer",
        StallReason::ALL.iter().map(|r| r.name().to_string()).collect(),
        Unit::Percent,
    );
    let mut summary: BTreeMap<&'static str, tango_sim::StallBreakdown> = BTreeMap::new();
    for kind in NetworkKind::ALL {
        let run = ch.run_network(kind, &ch.default_options())?;
        let mut by: BTreeMap<&'static str, tango_sim::StallBreakdown> = BTreeMap::new();
        for rec in &run.report.records {
            let label = rec.layer_type.coarse_label();
            by.entry(label).or_default().merge(&rec.stats.stalls);
            summary.entry(label).or_default().merge(&rec.stats.stalls);
        }
        for (label, stalls) in by {
            let values = StallReason::ALL.iter().map(|&r| stalls.fraction(r)).collect();
            m.push_row(format!("{} {}", kind.name(), label), values);
        }
    }
    for (label, stalls) in summary {
        let values = StallReason::ALL.iter().map(|&r| stalls.fraction(r)).collect();
        m.push_row(format!("Summary {label}"), values);
    }
    Ok(m)
}

fn op_totals(run: &NetworkRun) -> (BTreeMap<Opcode, u64>, u64) {
    let mut ops: BTreeMap<Opcode, u64> = BTreeMap::new();
    let mut total = 0;
    for rec in &run.report.records {
        for (&op, &n) in &rec.stats.op_counts {
            *ops.entry(op).or_insert(0) += n;
            total += n;
        }
    }
    (ops, total)
}

/// Figure 8: operation-type breakdown per network over all 28 opcodes.
pub fn fig8_op_breakdown(runs: &[NetworkRun]) -> Matrix {
    let mut m = Matrix::new(
        "Fig 8: Operation Type Breakdown",
        "Network",
        Opcode::ALL.iter().map(|o| o.mnemonic().to_string()).collect(),
        Unit::Percent,
    );
    for run in runs {
        let (ops, total) = op_totals(run);
        let values = Opcode::ALL
            .iter()
            .map(|o| *ops.get(o).unwrap_or(&0) as f64 / total.max(1) as f64)
            .collect();
        m.push_row(run.kind.name(), values);
    }
    m
}

/// Figure 9: the total operation mix across all networks, top 10 plus an
/// "Others" residual (the paper's pie chart).
pub fn fig9_top_ops(runs: &[NetworkRun]) -> Matrix {
    let mut ops: BTreeMap<Opcode, u64> = BTreeMap::new();
    let mut total = 0u64;
    for run in runs {
        let (o, t) = op_totals(run);
        for (op, n) in o {
            *ops.entry(op).or_insert(0) += n;
        }
        total += t;
    }
    let mut sorted: Vec<(Opcode, u64)> = ops.into_iter().collect();
    sorted.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let mut m = Matrix::new(
        "Fig 9: Total Operations Breakdown Used By All Networks",
        "Operation",
        vec!["Share".into()],
        Unit::Percent,
    );
    let mut top_sum = 0u64;
    for (op, n) in sorted.iter().take(10) {
        m.push_row(op.mnemonic(), vec![*n as f64 / total.max(1) as f64]);
        top_sum += n;
    }
    m.push_row("Others", vec![(total - top_sum) as f64 / total.max(1) as f64]);
    m
}

/// Figure 10: instruction data-type breakdown across ResNet's layers in
/// invocation order.
pub fn fig10_dtype_over_layers(runs: &[NetworkRun]) -> Matrix {
    let mut m = Matrix::new(
        "Fig 10: Instruction Type Breakdown Throughout Execution (ResNet)",
        "Layer",
        DType::ALL.iter().map(|d| d.suffix().to_string()).collect(),
        Unit::Percent,
    );
    let Some(run) = find(runs, NetworkKind::ResNet50) else {
        return m;
    };
    for rec in &run.report.records {
        let total: u64 = rec.stats.dtype_counts.values().sum();
        let values = DType::ALL
            .iter()
            .map(|d| *rec.stats.dtype_counts.get(d).unwrap_or(&0) as f64 / total.max(1) as f64)
            .collect();
        m.push_row(rec.name.clone(), values);
    }
    m
}

/// Figure 11: maximum device-memory usage per network in KB, on the
/// full-size (`Paper`) models like the paper's TX1 measurement.
/// Build-only — footprint is an allocation property, pulled through
/// `ch`'s run source.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn fig11_memory_footprint(ch: &Characterizer) -> Result<Matrix> {
    let mut m = Matrix::new(
        "Fig 11: Memory Footprint (full-size models, TX1)",
        "Network",
        vec!["Max Device Memory".into()],
        Unit::Kilobytes,
    );
    for kind in NetworkKind::ALL {
        let build = ch.build_stats(kind, Preset::Paper)?;
        m.push_row(kind.name(), vec![build.footprint_bytes as f64 / 1024.0]);
    }
    Ok(m)
}

/// Figure 12: per-SM register-file usage per network in KB — maximum
/// allocated registers (compiler allocation x peak residency) vs maximum
/// live registers (dataflow liveness x peak residency), computed
/// statically on the full-size models against the Pascal configuration.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn fig12_register_usage(ch: &Characterizer) -> Result<Matrix> {
    let config = GpuConfig::gp102();
    let mut m = Matrix::new(
        "Fig 12: Register File Usage per SM (Pascal, full-size models)",
        "Network",
        vec!["Max Allocated Registers".into(), "Max Live Registers".into()],
        Unit::Kilobytes,
    );
    for kind in NetworkKind::ALL {
        let build = ch.build_stats(kind, Preset::Paper)?;
        let mut alloc_max = 0u64;
        let mut live_max = 0u64;
        for layer in &build.layers {
            let threads = layer.block.count() as u32;
            let ctas = config
                .ctas_per_sm(threads, layer.regs, layer.smem_bytes)
                .min(layer.grid.count().min(u32::MAX as u64) as u32);
            let resident = (ctas * threads) as u64;
            alloc_max = alloc_max.max(layer.regs as u64 * resident * 4);
            live_max = live_max.max(layer.live_regs as u64 * resident * 4);
        }
        m.push_row(kind.name(), vec![alloc_max as f64 / 1024.0, live_max as f64 / 1024.0]);
    }
    Ok(m)
}

/// Shared producer for Figures 13/14: runs the four CNNs with the L1D
/// bypassed.
///
/// # Errors
///
/// Propagates network failures.
pub fn run_cnns_no_l1(ch: &Characterizer) -> Result<Vec<NetworkRun>> {
    NetworkKind::FIGURE_CNNS
        .iter()
        .map(|&k| ch.run_network(k, &ch.default_options().with_l1d_bytes(0)))
        .collect()
}

fn l2_by_type(runs: &[NetworkRun], ratio: bool, title: &str, unit: Unit) -> Matrix {
    let refs: Vec<&NetworkRun> = runs.iter().collect();
    let cols = {
        let mut cols: Vec<&'static str> = Vec::new();
        for run in &refs {
            for rec in &run.report.records {
                let label = rec.layer_type.coarse_label();
                if !cols.contains(&label) {
                    cols.push(label);
                }
            }
        }
        cols
    };
    let mut m = Matrix::new(title, "Network", cols.iter().map(|c| c.to_string()).collect(), unit);
    for run in refs {
        let mut misses: BTreeMap<&str, u64> = BTreeMap::new();
        let mut accesses: BTreeMap<&str, u64> = BTreeMap::new();
        for rec in &run.report.records {
            let label = rec.layer_type.coarse_label();
            *misses.entry(label).or_insert(0) += rec.stats.l2.misses;
            *accesses.entry(label).or_insert(0) += rec.stats.l2.accesses;
        }
        let values = cols
            .iter()
            .map(|c| {
                let miss = *misses.get(*c).unwrap_or(&0) as f64;
                if ratio {
                    miss / (*accesses.get(*c).unwrap_or(&0)).max(1) as f64
                } else {
                    miss
                }
            })
            .collect();
        m.push_row(run.kind.name(), values);
    }
    m
}

/// Figure 13: total L2 misses per layer type with the L1D bypassed.
pub fn fig13_l2_misses(no_l1_runs: &[NetworkRun]) -> Matrix {
    l2_by_type(
        no_l1_runs,
        false,
        "Fig 13: Total L2 Misses per Layer Type without L1D",
        Unit::Count,
    )
}

/// Figure 14: L2 miss ratio per layer type with the L1D bypassed.
pub fn fig14_l2_miss_ratio(no_l1_runs: &[NetworkRun]) -> Matrix {
    l2_by_type(
        no_l1_runs,
        true,
        "Fig 14: L2 Miss Ratio per Layer Type without L1D",
        Unit::Ratio,
    )
}

/// Figure 15: execution time under the GTO/LRR/TLV warp schedulers,
/// normalized to GTO.
///
/// # Errors
///
/// Propagates network failures.
pub fn fig15_scheduler_sensitivity(ch: &Characterizer) -> Result<Matrix> {
    let mut m = Matrix::new(
        "Fig 15: Warp Scheduler Sensitivity (normalized to GTO)",
        "Network",
        SchedulerPolicy::ALL.iter().map(|p| p.name().to_uppercase()).collect(),
        Unit::Ratio,
    );
    for kind in NetworkKind::ALL {
        let mut row = Vec::new();
        let mut base = 0u64;
        for policy in SchedulerPolicy::ALL {
            let run = ch.run_network(kind, &ch.default_options().with_scheduler(policy))?;
            let cycles = run.report.total_cycles().max(1);
            if policy == SchedulerPolicy::Gto {
                base = cycles;
            }
            row.push(cycles as f64 / base as f64);
        }
        m.push_row(kind.name(), row);
    }
    Ok(m)
}

/// Figure 16: per-layer scheduler sensitivity of AlexNet, normalized to
/// GTO per layer.
///
/// # Errors
///
/// Propagates network failures.
pub fn fig16_alexnet_per_layer_scheduler(ch: &Characterizer) -> Result<Matrix> {
    let mut m = Matrix::new(
        "Fig 16: Per-Layer Warp Scheduler Sensitivity of AlexNet (normalized to GTO)",
        "Layer",
        SchedulerPolicy::ALL.iter().map(|p| p.name().to_uppercase()).collect(),
        Unit::Ratio,
    );
    let runs: Vec<NetworkRun> = SchedulerPolicy::ALL
        .iter()
        .map(|&p| ch.run_network(NetworkKind::AlexNet, &ch.default_options().with_scheduler(p)))
        .collect::<Result<_>>()?;
    let layer_count = runs[0].report.records.len();
    for i in 0..layer_count {
        let base = runs[0].report.records[i].stats.cycles.max(1);
        let name = runs[0].report.records[i].name.clone();
        let values = runs
            .iter()
            .map(|r| r.report.records[i].stats.cycles as f64 / base as f64)
            .collect();
        m.push_row(name, values);
    }
    Ok(m)
}

/// Convenience: the layer type that dominates a network's time (used by
/// tests asserting the paper's Observation 1).
pub fn dominant_layer_type(run: &NetworkRun) -> (LayerType, f64) {
    let mut by: BTreeMap<LayerType, u64> = BTreeMap::new();
    for rec in &run.report.records {
        *by.entry(rec.layer_type).or_insert(0) += rec.stats.cycles;
    }
    let total: u64 = by.values().sum::<u64>().max(1);
    let (&ty, &cycles) = by.iter().max_by_key(|(_, &c)| c).expect("at least one layer");
    (ty, cycles as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ch() -> Characterizer {
        Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 11)
    }

    #[test]
    fn fig1_rows_sum_to_one() {
        let ch = tiny_ch();
        let runs = run_default_suite(&ch).unwrap();
        let m = fig1_time_breakdown(&runs);
        assert_eq!(m.rows.len(), 4);
        for (name, values) in &m.rows {
            let sum: f64 = values.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{name} sums to {sum}");
        }
    }

    #[test]
    fn fig9_includes_others_and_sums_to_one() {
        let ch = tiny_ch();
        let runs = run_default_suite(&ch).unwrap();
        let m = fig9_top_ops(&runs);
        assert_eq!(m.rows.len(), 11);
        let sum: f64 = m.rows.iter().map(|(_, v)| v[0]).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // The paper's Observation 7: top-10 ops cover ~95% of execution.
        let others = m.rows.last().unwrap().1[0];
        assert!(others < 0.10, "top-10 ops should dominate, others = {others}");
    }

    #[test]
    fn fig12_live_never_exceeds_allocated() {
        let m = fig12_register_usage(&Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 5)).unwrap();
        for (name, v) in &m.rows {
            assert!(v[1] <= v[0], "{name}: live {} > allocated {}", v[1], v[0]);
        }
    }

    #[test]
    fn dominant_type_of_cifarnet_is_conv() {
        let ch = tiny_ch();
        let run = ch.run_network(NetworkKind::CifarNet, &ch.default_options()).unwrap();
        let (ty, share) = dominant_layer_type(&run);
        assert_eq!(ty, LayerType::Conv);
        assert!(share > 0.5, "conv share {share}");
    }
}
