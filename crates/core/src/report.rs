//! Tabular report types the figure/table producers return.
//!
//! Every experiment renders to a [`Matrix`]: named rows, named columns,
//! one `f64` per cell, plus a unit that controls formatting. The bench
//! binaries print these; EXPERIMENTS.md records them.

use std::fmt;

/// How cell values should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Fractions rendered as percentages.
    Percent,
    /// Watts.
    Watts,
    /// Joules.
    Joules,
    /// Seconds.
    Seconds,
    /// Raw counts (cycles, misses, ...).
    Count,
    /// Kilobytes.
    Kilobytes,
    /// Dimensionless ratios (normalized execution time, miss ratios).
    Ratio,
}

impl Unit {
    fn format(self, v: f64) -> String {
        match self {
            Unit::Percent => format!("{:6.2}%", v * 100.0),
            Unit::Watts => format!("{v:9.2} W"),
            Unit::Joules => format!("{v:10.4} J"),
            Unit::Seconds => format!("{v:11.6} s"),
            Unit::Count => {
                if v >= 1e6 {
                    format!("{:10.3e}", v)
                } else {
                    format!("{v:10.0}")
                }
            }
            Unit::Kilobytes => format!("{v:10.1} KB"),
            Unit::Ratio => format!("{v:8.4}"),
        }
    }
}

/// A labelled numeric table — the normal form of every reproduced figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Title (usually the paper's figure caption).
    pub title: String,
    /// What the rows are ("Network", "Layer", ...).
    pub row_label: String,
    /// Column names (layer types, cache sizes, schedulers, ...).
    pub columns: Vec<String>,
    /// Row name plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Cell unit.
    pub unit: Unit,
}

impl Matrix {
    /// Creates an empty matrix with the given shape metadata.
    pub fn new(title: impl Into<String>, row_label: impl Into<String>, columns: Vec<String>, unit: Unit) -> Self {
        Matrix {
            title: title.into(),
            row_label: row_label.into(),
            columns,
            rows: Vec::new(),
            unit,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row has {} values for {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push((name.into(), values));
    }

    /// Looks up a cell by row and column name.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let ci = self.columns.iter().position(|c| c == column)?;
        let (_, values) = self.rows.iter().find(|(r, _)| r == row)?;
        values.get(ci).copied()
    }

    /// All values of a named row.
    pub fn row(&self, row: &str) -> Option<&[f64]> {
        self.rows.iter().find(|(r, _)| r == row).map(|(_, v)| v.as_slice())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.title)?;
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain([self.row_label.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        write!(f, "{:name_w$}", self.row_label)?;
        for c in &self.columns {
            write!(f, "  {c:>12}")?;
        }
        writeln!(f)?;
        for (name, values) in &self.rows {
            write!(f, "{name:name_w$}")?;
            for v in values {
                write!(f, "  {:>12}", self.unit.format(*v))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_lookup() {
        let mut m = Matrix::new("Fig X", "Network", vec!["A".into(), "B".into()], Unit::Ratio);
        m.push_row("CifarNet", vec![1.0, 0.5]);
        assert_eq!(m.get("CifarNet", "B"), Some(0.5));
        assert_eq!(m.get("CifarNet", "C"), None);
        assert_eq!(m.row("CifarNet"), Some(&[1.0, 0.5][..]));
    }

    #[test]
    fn display_contains_all_labels() {
        let mut m = Matrix::new("Fig Y", "Layer", vec!["Conv".into()], Unit::Percent);
        m.push_row("conv1", vec![0.93]);
        let text = m.to_string();
        assert!(text.contains("Fig Y"));
        assert!(text.contains("conv1"));
        assert!(text.contains("93.00%"));
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn mismatched_row_panics() {
        let mut m = Matrix::new("t", "r", vec!["a".into(), "b".into()], Unit::Count);
        m.push_row("x", vec![1.0]);
    }
}
