//! The characterization driver: builds networks, runs simulated
//! inference, and routes every run through a pluggable [`RunSource`] so
//! results can be cached instead of re-simulated.
//!
//! A bare [`Characterizer`] simulates directly (via [`simulate_run`] /
//! [`measure_build`]). Attach a source with
//! [`Characterizer::with_source`] — the `tango-harness` crate provides
//! `RunStore`, a persistent content-addressed store keyed by the full
//! run description — and repeated requests for the same
//! (network, GPU config, options, preset, seed) combination are served
//! from the store instead of re-running the cycle-level simulator.

use crate::Result;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use tango_isa::{max_live_registers, Dim3};
use tango_nets::{build_network, synthetic_input, InferenceReport, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig, SimOptions};

/// Reproducible driver for one (GPU config, preset, seed) combination.
///
/// # Example
///
/// ```
/// use tango::Characterizer;
/// use tango_nets::{NetworkKind, Preset};
/// use tango_sim::GpuConfig;
///
/// # fn main() -> Result<(), tango::TangoError> {
/// let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 42);
/// let run = ch.run_network(NetworkKind::CifarNet, &ch.default_options())?;
/// assert!(run.report.total_cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Characterizer {
    config: GpuConfig,
    preset: Preset,
    seed: u64,
    source: Option<Arc<dyn RunSource>>,
}

impl fmt::Debug for Characterizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Characterizer")
            .field("config", &self.config.name)
            .field("preset", &self.preset)
            .field("seed", &self.seed)
            .field("source", &self.source.as_ref().map(|_| "attached"))
            .finish()
    }
}

/// One network's simulated inference plus device-level observations.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkRun {
    /// Which network ran.
    pub kind: NetworkKind,
    /// Per-layer statistics and the output.
    pub report: InferenceReport,
    /// Peak device-memory usage (weights + activations), Figure 11's
    /// metric.
    pub footprint_bytes: u64,
}

/// The complete description of one simulated inference run — everything
/// that determines its outcome, and therefore everything a cache key
/// must cover.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The simulated device.
    pub config: GpuConfig,
    /// Network scale preset.
    pub preset: Preset,
    /// Weight/input seed.
    pub seed: u64,
    /// Which network to run.
    pub kind: NetworkKind,
    /// Per-launch simulation options.
    pub options: SimOptions,
}

/// The description of one network *build* (no simulation): what the
/// build-only producers (Figures 11/12, Table III) depend on.
///
/// Network construction never consults the GPU configuration — kernel
/// geometry, register allocation, and the allocator high-water mark are
/// properties of (network, preset, seed) alone — so no config field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildSpec {
    /// Network scale preset.
    pub preset: Preset,
    /// Weight seed.
    pub seed: u64,
    /// Which network to build.
    pub kind: NetworkKind,
}

/// Static per-layer kernel facts captured at build time (Table III's
/// columns plus the liveness analysis Figure 12 needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerBuildStats {
    /// Layer name (e.g. `conv2_1`).
    pub name: String,
    /// Launch grid (`gridDim`).
    pub grid: Dim3,
    /// Launch block (`blockDim`).
    pub block: Dim3,
    /// Registers per thread (compiler allocation).
    pub regs: u32,
    /// Peak live registers per thread (dataflow liveness).
    pub live_regs: u32,
    /// Declared shared memory per CTA in bytes.
    pub smem_bytes: u32,
    /// Constant-memory footprint in bytes.
    pub cmem_bytes: u32,
}

/// Everything the build-only experiments read off a constructed network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildStats {
    /// Peak device-memory usage (weights + activations) in bytes.
    pub footprint_bytes: u64,
    /// Total weight bytes.
    pub weight_bytes: u64,
    /// Per-layer kernel facts, in execution order.
    pub layers: Vec<LayerBuildStats>,
}

/// Where a [`Characterizer`] gets its runs from.
///
/// The default (no source attached) simulates every request from
/// scratch. The `tango-harness` crate implements this trait on its
/// `RunStore`, serving cached results when the key matches and falling
/// back to [`simulate_run`] / [`measure_build`] on a miss.
pub trait RunSource: Send + Sync {
    /// Produces (or retrieves) the run described by `spec`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    fn network_run(&self, spec: &RunSpec) -> Result<NetworkRun>;

    /// Produces (or retrieves) the build stats described by `spec`.
    ///
    /// # Errors
    ///
    /// Propagates network-construction failures.
    fn build_stats(&self, spec: &BuildSpec) -> Result<BuildStats>;
}

/// Builds and simulates one network end to end on a fresh device —
/// the uncached ground truth every [`RunSource`] ultimately calls.
///
/// # Errors
///
/// Propagates network-construction and input errors.
pub fn simulate_run(spec: &RunSpec) -> Result<NetworkRun> {
    let mut gpu = Gpu::new(spec.config.clone());
    let net = build_network(&mut gpu, spec.kind, spec.preset, spec.seed)?;
    let input = synthetic_input(net.input_spec(), spec.seed ^ 0x1234_5678);
    let report = net.infer(&mut gpu, &input, &spec.options)?;
    Ok(NetworkRun {
        kind: spec.kind,
        report,
        footprint_bytes: gpu.memory_footprint_bytes(),
    })
}

/// Builds one network (no simulation) and captures the static facts the
/// build-only experiments need.
///
/// # Errors
///
/// Propagates network-construction errors.
pub fn measure_build(spec: &BuildSpec) -> Result<BuildStats> {
    let mut gpu = Gpu::new(GpuConfig::gp102());
    let net = build_network(&mut gpu, spec.kind, spec.preset, spec.seed)?;
    let layers = net
        .layers()
        .iter()
        .map(|layer| {
            let k = layer.kernel();
            LayerBuildStats {
                name: layer.name().to_string(),
                grid: k.grid(),
                block: k.block(),
                regs: k.regs(),
                live_regs: max_live_registers(k.program()),
                smem_bytes: k.smem_bytes(),
                cmem_bytes: k.cmem_bytes(),
            }
        })
        .collect();
    Ok(BuildStats {
        footprint_bytes: gpu.memory_footprint_bytes(),
        weight_bytes: net.weight_bytes(),
        layers,
    })
}

impl Characterizer {
    /// Creates a driver with no run source (every request simulates).
    pub fn new(config: GpuConfig, preset: Preset, seed: u64) -> Self {
        Characterizer {
            config,
            preset,
            seed,
            source: None,
        }
    }

    /// The configuration the paper's detailed statistics use: the Pascal
    /// GP102 simulator config at bench scale, with a fixed suite seed.
    pub fn bench_default() -> Self {
        Characterizer::new(GpuConfig::gp102(), Preset::Bench, SEED)
    }

    /// Attaches a run source (e.g. `tango-harness`'s `RunStore`); all
    /// subsequent [`run_network`](Self::run_network) /
    /// [`build_stats`](Self::build_stats) calls route through it.
    pub fn with_source(mut self, source: Arc<dyn RunSource>) -> Self {
        self.source = Some(source);
        self
    }

    /// The attached run source, if any.
    pub fn source(&self) -> Option<&Arc<dyn RunSource>> {
        self.source.as_ref()
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The network preset.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// The weight/input seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns a copy with a different GPU configuration (keeping the
    /// run source).
    pub fn with_config(&self, config: GpuConfig) -> Self {
        Characterizer {
            config,
            preset: self.preset,
            seed: self.seed,
            source: self.source.clone(),
        }
    }

    /// Returns a copy with a different preset (keeping the run source).
    pub fn with_preset(&self, preset: Preset) -> Self {
        Characterizer {
            config: self.config.clone(),
            preset,
            seed: self.seed,
            source: self.source.clone(),
        }
    }

    /// Default simulation options for this driver.
    pub fn default_options(&self) -> SimOptions {
        SimOptions::new()
    }

    /// The full run description for `kind` under `opts`.
    pub fn run_spec(&self, kind: NetworkKind, opts: &SimOptions) -> RunSpec {
        RunSpec {
            config: self.config.clone(),
            preset: self.preset,
            seed: self.seed,
            kind,
            options: opts.clone(),
        }
    }

    /// Builds and runs one network end to end, through the attached
    /// source when present.
    ///
    /// # Errors
    ///
    /// Propagates network-construction and input errors.
    pub fn run_network(&self, kind: NetworkKind, opts: &SimOptions) -> Result<NetworkRun> {
        let spec = self.run_spec(kind, opts);
        match &self.source {
            Some(src) => src.network_run(&spec),
            None => simulate_run(&spec),
        }
    }

    /// Builds one network at `preset` (no simulation) and returns its
    /// static stats, through the attached source when present.
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors.
    pub fn build_stats(&self, kind: NetworkKind, preset: Preset) -> Result<BuildStats> {
        let spec = BuildSpec {
            preset,
            seed: self.seed,
            kind,
        };
        match &self.source {
            Some(src) => src.build_stats(&spec),
            None => measure_build(&spec),
        }
    }

    /// Runs every network in `kinds` and returns the results keyed by
    /// network (ordering follows `NetworkKind::ALL`).
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn run_many(&self, kinds: &[NetworkKind], opts: &SimOptions) -> Result<BTreeMap<&'static str, NetworkRun>> {
        let mut out = BTreeMap::new();
        for &kind in kinds {
            out.insert(kind.name(), self.run_network(kind, opts)?);
        }
        Ok(out)
    }
}

/// Deterministic suite seed, stable across releases.
const SEED: u64 = 0x7A16_0201_9151;

impl Default for Characterizer {
    fn default() -> Self {
        Characterizer::bench_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn tiny_characterization_round_trip() {
        let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 3);
        let run = ch.run_network(NetworkKind::Gru, &ch.default_options()).unwrap();
        assert_eq!(run.kind, NetworkKind::Gru);
        assert!(run.footprint_bytes > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 4);
        let a = ch.run_network(NetworkKind::CifarNet, &ch.default_options()).unwrap();
        let b = ch.run_network(NetworkKind::CifarNet, &ch.default_options()).unwrap();
        assert_eq!(a.report.output, b.report.output);
        assert_eq!(a.report.total_cycles(), b.report.total_cycles());
    }

    #[test]
    fn build_stats_capture_table3_facts() {
        let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 5);
        let b = ch.build_stats(NetworkKind::CifarNet, Preset::Tiny).unwrap();
        assert!(b.footprint_bytes > 0);
        assert!(!b.layers.is_empty());
        for layer in &b.layers {
            assert!(layer.regs >= layer.live_regs, "{}: live > allocated", layer.name);
        }
    }

    struct CountingSource(AtomicUsize);

    impl RunSource for CountingSource {
        fn network_run(&self, spec: &RunSpec) -> Result<NetworkRun> {
            self.0.fetch_add(1, Ordering::Relaxed);
            simulate_run(spec)
        }
        fn build_stats(&self, spec: &BuildSpec) -> Result<BuildStats> {
            self.0.fetch_add(1, Ordering::Relaxed);
            measure_build(spec)
        }
    }

    #[test]
    fn attached_source_intercepts_requests() {
        let src = Arc::new(CountingSource(AtomicUsize::new(0)));
        let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 6).with_source(src.clone());
        ch.run_network(NetworkKind::Gru, &ch.default_options()).unwrap();
        ch.build_stats(NetworkKind::Gru, Preset::Tiny).unwrap();
        assert_eq!(src.0.load(Ordering::Relaxed), 2);
        // Derived characterizers keep the source.
        let ch2 = ch.with_config(GpuConfig::tx1()).with_preset(Preset::Tiny);
        ch2.run_network(NetworkKind::Gru, &ch.default_options()).unwrap();
        assert_eq!(src.0.load(Ordering::Relaxed), 3);
    }
}
