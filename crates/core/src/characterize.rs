//! The characterization driver: builds networks, runs simulated
//! inference, and caches per-network results for the figure producers.

use crate::Result;
use std::collections::BTreeMap;
use tango_nets::{build_network, synthetic_input, InferenceReport, NetworkKind, Preset};
use tango_sim::{Gpu, GpuConfig, SimOptions};

/// Reproducible driver for one (GPU config, preset, seed) combination.
///
/// # Example
///
/// ```
/// use tango::Characterizer;
/// use tango_nets::{NetworkKind, Preset};
/// use tango_sim::GpuConfig;
///
/// # fn main() -> Result<(), tango::TangoError> {
/// let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 42);
/// let run = ch.run_network(NetworkKind::CifarNet, &ch.default_options())?;
/// assert!(run.report.total_cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Characterizer {
    config: GpuConfig,
    preset: Preset,
    seed: u64,
}

/// One network's simulated inference plus device-level observations.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// Which network ran.
    pub kind: NetworkKind,
    /// Per-layer statistics and the output.
    pub report: InferenceReport,
    /// Peak device-memory usage (weights + activations), Figure 11's
    /// metric.
    pub footprint_bytes: u64,
}

impl Characterizer {
    /// Creates a driver.
    pub fn new(config: GpuConfig, preset: Preset, seed: u64) -> Self {
        Characterizer { config, preset, seed }
    }

    /// The configuration the paper's detailed statistics use: the Pascal
    /// GP102 simulator config at bench scale, with a fixed suite seed.
    pub fn bench_default() -> Self {
        Characterizer::new(GpuConfig::gp102(), Preset::Bench, SEED)
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The network preset.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// The weight/input seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns a copy with a different GPU configuration.
    pub fn with_config(&self, config: GpuConfig) -> Self {
        Characterizer {
            config,
            preset: self.preset,
            seed: self.seed,
        }
    }

    /// Default simulation options for this driver.
    pub fn default_options(&self) -> SimOptions {
        SimOptions::new()
    }

    /// Builds and runs one network end to end on a fresh device.
    ///
    /// # Errors
    ///
    /// Propagates network-construction and input errors.
    pub fn run_network(&self, kind: NetworkKind, opts: &SimOptions) -> Result<NetworkRun> {
        let mut gpu = Gpu::new(self.config.clone());
        let net = build_network(&mut gpu, kind, self.preset, self.seed)?;
        let input = synthetic_input(net.input_spec(), self.seed ^ 0x1234_5678);
        let report = net.infer(&mut gpu, &input, opts)?;
        Ok(NetworkRun {
            kind,
            report,
            footprint_bytes: gpu.memory_footprint_bytes(),
        })
    }

    /// Runs every network in `kinds` and returns the results keyed by
    /// network (ordering follows `NetworkKind::ALL`).
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn run_many(&self, kinds: &[NetworkKind], opts: &SimOptions) -> Result<BTreeMap<&'static str, NetworkRun>> {
        let mut out = BTreeMap::new();
        for &kind in kinds {
            out.insert(kind.name(), self.run_network(kind, opts)?);
        }
        Ok(out)
    }
}

/// Deterministic suite seed, stable across releases.
const SEED: u64 = 0x7A16_0201_9151;

impl Default for Characterizer {
    fn default() -> Self {
        Characterizer::bench_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_characterization_round_trip() {
        let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 3);
        let run = ch.run_network(NetworkKind::Gru, &ch.default_options()).unwrap();
        assert_eq!(run.kind, NetworkKind::Gru);
        assert!(run.footprint_bytes > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 4);
        let a = ch.run_network(NetworkKind::CifarNet, &ch.default_options()).unwrap();
        let b = ch.run_network(NetworkKind::CifarNet, &ch.default_options()).unwrap();
        assert_eq!(a.report.output, b.report.output);
        assert_eq!(a.report.total_cycles(), b.report.total_cycles());
    }
}
