//! Tango: a deep neural network benchmark suite for simulated
//! accelerators — the facade crate.
//!
//! This crate ties the workspace together: the seven networks
//! (`tango-nets`) running on the SIMT GPU simulator (`tango-sim`) and the
//! PynQ FPGA model (`tango-fpga`), plus the characterization API that
//! regenerates every table and figure of the ISPASS 2019 paper
//! *"Tango: A Deep Neural Network Benchmark Suite for Various
//! Accelerators"*.
//!
//! # Quick start
//!
//! ```
//! use tango::Characterizer;
//! use tango_nets::{NetworkKind, Preset};
//! use tango_sim::GpuConfig;
//!
//! # fn main() -> Result<(), tango::TangoError> {
//! let ch = Characterizer::new(GpuConfig::gp102(), Preset::Tiny, 7);
//! let run = ch.run_network(NetworkKind::CifarNet, &ch.default_options())?;
//! println!(
//!     "CifarNet: {} layers, {} cycles, peak {:.1} W",
//!     run.report.records.len(),
//!     run.report.total_cycles(),
//!     run.report.peak_power_w()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! The per-experiment producers live in [`figures`] and [`tables`]; the
//! `tango-bench` crate wraps each one in a binary and an in-tree
//! microbench, and the `tango-harness` crate schedules the full
//! experiment plan against a persistent result store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characterize;
mod error;
pub mod figures;
pub mod report;
pub mod tables;

pub use characterize::{
    measure_build, simulate_run, BuildSpec, BuildStats, Characterizer, LayerBuildStats, NetworkRun, RunSource, RunSpec,
};
pub use error::TangoError;
pub use report::{Matrix, Unit};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TangoError>;
